//! Criterion bench backing experiments R1/R5/R6: end-to-end pipeline
//! throughput and its scaling in genes and samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gnet_bench::measured::{perf_config, perf_matrix};
use gnet_core::infer_network;
use gnet_mi::MiKernel;
use std::hint::black_box;

fn bench_gene_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_genes");
    group.sample_size(10);
    for &genes in &[64usize, 128, 256] {
        let matrix = perf_matrix(genes, 256);
        let cfg = perf_config(4, 1, 32, MiKernel::VectorDense);
        let pairs = (genes * (genes - 1) / 2) as u64;
        group.throughput(Throughput::Elements(pairs));
        group.bench_with_input(BenchmarkId::from_parameter(genes), &genes, |b, _| {
            b.iter(|| black_box(infer_network(black_box(&matrix), &cfg)))
        });
    }
    group.finish();
}

fn bench_sample_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_samples");
    group.sample_size(10);
    for &samples in &[128usize, 256, 512] {
        let matrix = perf_matrix(96, samples);
        let cfg = perf_config(4, 1, 32, MiKernel::VectorDense);
        group.throughput(Throughput::Elements(samples as u64));
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, _| {
            b.iter(|| black_box(infer_network(black_box(&matrix), &cfg)))
        });
    }
    group.finish();
}

fn bench_headline_slab(c: &mut Criterion) {
    // The headline per-pair shape (m = 3,137, q = 30) over a small gene
    // slab: the measured pair rate here, times 1.213e8 pairs, is the
    // host-projection row of R1.
    let mut group = c.benchmark_group("pipeline_headline_slab");
    group.sample_size(10);
    let matrix = perf_matrix(24, 3_137);
    let cfg = perf_config(30, 1, 12, MiKernel::VectorDense);
    let pairs = (24u64 * 23) / 2;
    group.throughput(Throughput::Elements(pairs));
    group.bench_function("n24_m3137_q30", |b| {
        b.iter(|| black_box(infer_network(black_box(&matrix), &cfg)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gene_scaling,
    bench_sample_scaling,
    bench_headline_slab
);
criterion_main!(benches);
