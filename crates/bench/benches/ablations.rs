//! Criterion benches for the design-choice ablations DESIGN.md calls out:
//! null-evaluation strategy (R11), DPI pruning cost, CLR cost, and the
//! simulated-cluster run across rank counts (R11b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnet_bench::measured::perf_matrix;
use gnet_cluster::infer_network_distributed;
use gnet_core::baselines::clr_network;
use gnet_core::config::NullStrategy;
use gnet_core::{infer_network, InferenceConfig};
use gnet_graph::dpi::dpi_prune;
use gnet_grnsim::{GrnConfig, SyntheticDataset};
use std::hint::black_box;

fn bench_null_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("null_strategy");
    group.sample_size(10);
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 96,
            samples: 200,
            ..GrnConfig::small()
        },
        77,
    );
    for (name, strategy) in [
        ("exact", NullStrategy::ExactFull),
        ("early_exit", NullStrategy::EarlyExit),
    ] {
        let cfg = InferenceConfig {
            permutations: 20,
            threads: Some(1),
            tile_size: Some(24),
            null_strategy: strategy,
            null_sample_pairs: 200,
            ..InferenceConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, _| {
            b.iter(|| black_box(infer_network(black_box(&ds.matrix), &cfg)))
        });
    }
    group.finish();
}

fn bench_post_processing(c: &mut Criterion) {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 120,
            samples: 250,
            ..GrnConfig::small()
        },
        5,
    );
    let cfg = InferenceConfig {
        permutations: 15,
        threads: Some(1),
        ..InferenceConfig::default()
    };
    let result = infer_network(&ds.matrix, &cfg);
    let mut group = c.benchmark_group("post_processing");
    group.bench_function("dpi_prune", |b| {
        b.iter(|| black_box(dpi_prune(black_box(&result.network), 0.05)))
    });
    group.finish();

    let matrix = perf_matrix(64, 200);
    c.bench_function("clr_network_64", |b| {
        b.iter(|| black_box(clr_network(black_box(&matrix), 10, 3, 3.0)))
    });
}

fn bench_cluster_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_ranks");
    group.sample_size(10);
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes: 64,
            samples: 150,
            ..GrnConfig::small()
        },
        11,
    );
    let cfg = InferenceConfig {
        permutations: 10,
        threads: Some(1),
        tile_size: Some(16),
        ..InferenceConfig::default()
    };
    for ranks in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &r| {
            b.iter(|| black_box(infer_network_distributed(black_box(&ds.matrix), &cfg, r)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_null_strategy,
    bench_post_processing,
    bench_cluster_ranks
);
criterion_main!(benches);
