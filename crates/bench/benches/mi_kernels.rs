//! Criterion bench backing experiment R4: scalar vs vector MI kernel, with
//! and without permutation nulls, across sample counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gnet_bspline::BsplineBasis;
use gnet_expr::synth;
use gnet_mi::{mi_with_nulls, prepare_gene, MiKernel, MiScratch};
use gnet_permute::PermutationSet;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let basis = BsplineBasis::tinge_default();
    let mut group = c.benchmark_group("mi_pair");
    group.sample_size(20);

    for &samples in &[512usize, 3_137] {
        let matrix = synth::independent_gaussian(2, samples, 42);
        let x = prepare_gene(matrix.gene(0), &basis);
        let y = prepare_gene(matrix.gene(1), &basis);
        let y_dense = y.to_dense();
        let mut scratch = MiScratch::for_basis(&basis);

        for &q in &[0usize, 30] {
            let perms = PermutationSet::generate(samples, q, 7);
            group.throughput(Throughput::Elements((q as u64 + 1) * samples as u64));

            group.bench_with_input(
                BenchmarkId::new(format!("scalar_q{q}"), samples),
                &samples,
                |b, _| {
                    b.iter(|| {
                        black_box(mi_with_nulls(
                            MiKernel::ScalarSparse,
                            black_box(&x),
                            black_box(&y),
                            None,
                            perms.as_vecs(),
                            &mut scratch,
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("vector_q{q}"), samples),
                &samples,
                |b, _| {
                    b.iter(|| {
                        black_box(mi_with_nulls(
                            MiKernel::VectorDense,
                            black_box(&x),
                            black_box(&y),
                            Some(&y_dense),
                            perms.as_vecs(),
                            &mut scratch,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
