//! Criterion micro-benches for the substrate components: B-spline weight
//! preparation, rank transform, permutation generation, slice kernels, and
//! the graph operations — the cost-model inputs of `gnet-phi`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gnet_bspline::{BsplineBasis, SparseWeights};
use gnet_expr::normalize::rank_transform_profile;
use gnet_expr::synth;
use gnet_graph::{connected_components, Edge, GeneNetwork};
use gnet_permute::PermutationSet;
use gnet_simd::slice_ops;
use std::hint::black_box;

fn bench_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepare_gene");
    let basis = BsplineBasis::tinge_default();
    for &m in &[512usize, 3_137] {
        let matrix = synth::independent_gaussian(1, m, 5);
        let raw = matrix.gene(0).to_vec();
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("rank_transform", m), &m, |b, _| {
            b.iter(|| black_box(rank_transform_profile(black_box(&raw))))
        });
        let normalized = rank_transform_profile(&raw);
        group.bench_with_input(BenchmarkId::new("spline_weights", m), &m, |b, _| {
            b.iter(|| {
                black_box(SparseWeights::from_normalized(
                    black_box(&normalized),
                    &basis,
                ))
            })
        });
    }
    group.finish();
}

fn bench_permutations(c: &mut Criterion) {
    c.bench_function("permutation_set_q30_m3137", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(PermutationSet::generate(3_137, 30, seed))
        })
    });
}

fn bench_slice_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("slice_ops");
    let x: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin().abs()).collect();
    let y: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.11).cos().abs()).collect();
    group.throughput(Throughput::Elements(4096));
    group.bench_function("dot_scalar", |b| {
        b.iter(|| black_box(slice_ops::dot_scalar(black_box(&x), black_box(&y))))
    });
    group.bench_function("dot_lanes", |b| {
        b.iter(|| black_box(slice_ops::dot(black_box(&x), black_box(&y))))
    });
    group.bench_function("xlogx_scalar", |b| {
        b.iter(|| black_box(slice_ops::xlogx_sum_scalar(black_box(&x))))
    });
    group.bench_function("xlogx_lanes", |b| {
        b.iter(|| black_box(slice_ops::xlogx_sum(black_box(&x))))
    });
    group.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    // A scale-free-ish network of 10k nodes / 30k edges.
    let n = 10_000u32;
    let edges: Vec<Edge> = (0..30_000u32)
        .map(|i| {
            let a = (i * 2_654_435_761 % n).min(n - 1);
            let hub = i % 173;
            let b = if a == hub { (a + 1) % n } else { hub };
            Edge::new(a.min(b), a.max(b).max(a.min(b) + 1), 0.5)
        })
        .collect();
    let net = GeneNetwork::from_edges(n as usize, Vec::new(), edges);
    let mut group = c.benchmark_group("graph");
    group.bench_function("connected_components_10k", |b| {
        b.iter(|| black_box(connected_components(black_box(&net))))
    });
    group.bench_function("degree_distribution_10k", |b| {
        b.iter(|| black_box(net.degree_distribution()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_preparation,
    bench_permutations,
    bench_slice_kernels,
    bench_graph_ops
);
criterion_main!(benches);
