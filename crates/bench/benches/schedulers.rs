//! Criterion bench backing experiments R2/R7: scheduling policies and
//! thread counts on the real executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnet_bench::measured::{perf_config, perf_matrix};
use gnet_core::infer_network;
use gnet_core::InferenceConfig;
use gnet_mi::MiKernel;
use gnet_parallel::SchedulerPolicy;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_policy");
    group.sample_size(10);
    let matrix = perf_matrix(128, 192);
    for policy in SchedulerPolicy::ALL {
        let cfg = InferenceConfig {
            scheduler: policy,
            ..perf_config(2, 2, 16, MiKernel::VectorDense)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, _| b.iter(|| black_box(infer_network(black_box(&matrix), &cfg))),
        );
    }
    group.finish();
}

fn bench_thread_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_count");
    group.sample_size(10);
    let matrix = perf_matrix(128, 192);
    for &threads in &[1usize, 2, 4] {
        let cfg = perf_config(2, threads, 16, MiKernel::VectorDense);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(infer_network(black_box(&matrix), &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_thread_counts);
criterion_main!(benches);
