//! Criterion bench backing experiment R8: cache-blocking tile-size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gnet_bench::measured::{perf_config, perf_matrix};
use gnet_core::infer_network;
use gnet_mi::MiKernel;
use std::hint::black_box;

fn bench_tile_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_size");
    group.sample_size(10);
    let genes = 192;
    let matrix = perf_matrix(genes, 384);
    let pairs = (genes * (genes - 1) / 2) as u64;
    for &tile in &[2usize, 8, 32, 96, 192] {
        let cfg = perf_config(4, 1, tile, MiKernel::VectorDense);
        group.throughput(Throughput::Elements(pairs));
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, _| {
            b.iter(|| black_box(infer_network(black_box(&matrix), &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tile_sizes);
criterion_main!(benches);
