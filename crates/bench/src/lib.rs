//! Shared harness utilities for the experiment reproduction.
//!
//! The `repro` binary (in `src/bin/repro.rs`) regenerates every table and
//! figure of the reconstructed evaluation plan (DESIGN.md §4); this
//! library holds the pieces it shares with the criterion benches: table
//! formatting, CSV output, and the measured (host-side) experiment
//! drivers that complement the modeled (gnet-phi) series.

#![warn(missing_docs)]

pub mod measured;
pub mod table;

pub use table::{write_csv, TableBuilder};
