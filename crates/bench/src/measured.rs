//! Host-measured experiment drivers (real kernels, real threads).
//!
//! These complement the modeled series from `gnet-phi`: everything here
//! actually executes the pipeline on this machine. Sizes are chosen so the
//! full `repro` sweep finishes in minutes on one core; the experiment ids
//! (R…) refer to DESIGN.md §4.

use gnet_core::baselines;
use gnet_core::{infer_network, infer_network_traced, InferenceConfig, RunStats};
use gnet_expr::ExpressionMatrix;
use gnet_graph::dpi::dpi_prune;
use gnet_graph::recovery_score;
use gnet_grnsim::{GrnConfig, SyntheticDataset};
use gnet_mi::MiKernel;
use gnet_parallel::SchedulerPolicy;
use gnet_phi::calibrate::{measure_kernel, KernelRate};
use gnet_phi::KernelClass;
use gnet_trace::Recorder;

/// Deterministic matrix used by the measured performance experiments
/// (contents do not affect kernel cost — only the shape does).
pub fn perf_matrix(genes: usize, samples: usize) -> ExpressionMatrix {
    gnet_expr::synth::independent_gaussian(genes, samples, 0x00BE_7C11)
}

/// Performance-measurement config: fixed explicit threshold (so edge
/// bookkeeping cost is negligible), `q` nulls, explicit threads/tile.
pub fn perf_config(q: usize, threads: usize, tile: usize, kernel: MiKernel) -> InferenceConfig {
    InferenceConfig {
        permutations: q,
        mi_threshold: Some(0.15),
        threads: Some(threads),
        tile_size: Some(tile),
        kernel,
        ..InferenceConfig::default()
    }
}

/// Run one instrumented inference on the deterministic perf matrix and
/// record into `rec` — the measured counterpart of `gnet infer --metrics`.
/// The `repro` harness uses this to emit the same metrics-JSON schema the
/// CLI produces, so CI can archive one artifact format from either path.
pub fn instrumented_inference(
    genes: usize,
    samples: usize,
    q: usize,
    threads: usize,
    rec: &Recorder,
) -> RunStats {
    let matrix = perf_matrix(genes, samples);
    let cfg = perf_config(q, threads, 16, MiKernel::VectorDense);
    infer_network_traced(&matrix, &cfg, rec).stats
}

/// R1 (host row) — measure the vector kernel at the paper's exact
/// per-pair shape (m = 3,137, q) and project the single-thread wall time
/// of the full 15,575-gene run.
pub fn host_headline_projection(q: usize) -> (KernelRate, f64) {
    let rate = measure_kernel(KernelClass::VectorDense, 3_137, q, 12, 48);
    let pairs = 15_575u64 * 15_574 / 2;
    let hours = rate.seconds_for_pairs(pairs) / 3600.0;
    (rate, hours)
}

/// R4 (host rows) — measured scalar vs vector kernel rate at the paper's
/// sample count.
pub fn host_vectorization(q: usize) -> (KernelRate, KernelRate, f64) {
    let scalar = measure_kernel(KernelClass::ScalarSparse, 3_137, q, 12, 32);
    let vector = measure_kernel(KernelClass::VectorDense, 3_137, q, 12, 32);
    let ratio = scalar.ns_per_pair / vector.ns_per_pair;
    (scalar, vector, ratio)
}

/// R5 (host rows) — measured MI-stage seconds vs gene count.
pub fn host_gene_sweep(gene_counts: &[usize], samples: usize, q: usize) -> Vec<(usize, f64)> {
    gene_counts
        .iter()
        .map(|&n| {
            let matrix = perf_matrix(n, samples);
            let cfg = perf_config(q, 1, 32, MiKernel::VectorDense);
            let r = infer_network(&matrix, &cfg);
            (n, r.stats.mi_time.as_secs_f64())
        })
        .collect()
}

/// R6 (host rows) — measured MI-stage seconds vs sample count.
pub fn host_sample_sweep(genes: usize, sample_counts: &[usize], q: usize) -> Vec<(usize, f64)> {
    sample_counts
        .iter()
        .map(|&m| {
            let matrix = perf_matrix(genes, m);
            let cfg = perf_config(q, 1, 32, MiKernel::VectorDense);
            let r = infer_network(&matrix, &cfg);
            (m, r.stats.mi_time.as_secs_f64())
        })
        .collect()
}

/// R7 (host rows) — measured scheduling policies: `(policy, mi seconds,
/// imbalance)`.
pub fn host_schedulers(
    genes: usize,
    samples: usize,
    q: usize,
    threads: usize,
) -> Vec<(String, f64, f64)> {
    let matrix = perf_matrix(genes, samples);
    SchedulerPolicy::ALL
        .into_iter()
        .map(|policy| {
            let cfg = InferenceConfig {
                scheduler: policy,
                ..perf_config(q, threads, 16, MiKernel::VectorDense)
            };
            let r = infer_network(&matrix, &cfg);
            (
                policy.name().to_string(),
                r.stats.mi_time.as_secs_f64(),
                r.stats.execution.imbalance(),
            )
        })
        .collect()
}

/// R8 (host rows) — measured MI-stage seconds per tile size.
pub fn host_tile_sweep(
    genes: usize,
    samples: usize,
    q: usize,
    tile_sizes: &[usize],
) -> Vec<(usize, f64, f64)> {
    let matrix = perf_matrix(genes, samples);
    tile_sizes
        .iter()
        .map(|&t| {
            let cfg = perf_config(q, 1, t, MiKernel::VectorDense);
            let r = infer_network(&matrix, &cfg);
            (t, r.stats.mi_time.as_secs_f64(), r.stats.pair_rate())
        })
        .collect()
}

/// One row of the R10 accuracy experiment.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Samples used.
    pub samples: usize,
    /// Edges inferred.
    pub edges: usize,
    /// Precision of the raw relevance network.
    pub precision: f64,
    /// Recall of the raw relevance network.
    pub recall: f64,
    /// F1 of the raw relevance network.
    pub f1: f64,
    /// Precision after DPI pruning (ε = 0.05).
    pub dpi_precision: f64,
    /// Recall after DPI pruning.
    pub dpi_recall: f64,
}

/// R10 — statistical recovery vs sample count on mechanistic GRN data with
/// known ground truth.
pub fn accuracy_vs_samples(genes: usize, sample_counts: &[usize], q: usize) -> Vec<AccuracyRow> {
    sample_counts
        .iter()
        .map(|&m| {
            let ds = SyntheticDataset::generate(
                GrnConfig {
                    genes,
                    samples: m,
                    ..GrnConfig::small()
                },
                1717,
            );
            let cfg = InferenceConfig {
                permutations: q,
                threads: Some(1),
                tile_size: Some(16),
                ..InferenceConfig::default()
            };
            let r = infer_network(&ds.matrix, &cfg);
            let truth = ds.truth_edges();
            let raw = recovery_score(&r.network, &truth);
            let pruned = dpi_prune(&r.network, 0.05);
            let dpi = recovery_score(&pruned, &truth);
            AccuracyRow {
                samples: m,
                edges: r.network.edge_count(),
                precision: raw.precision(),
                recall: raw.recall(),
                f1: raw.f1(),
                dpi_precision: dpi.precision(),
                dpi_recall: dpi.recall(),
            }
        })
        .collect()
}

/// R11 — early-exit ablation: run the identical inference with the exact
/// and the early-exit null strategies and report work + wall time. Rows:
/// `(strategy, joints evaluated, mi seconds, edges)`.
pub fn early_exit_ablation(
    genes: usize,
    samples: usize,
    q: usize,
) -> Vec<(String, u64, f64, usize)> {
    use gnet_core::config::NullStrategy;
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes,
            samples,
            ..GrnConfig::small()
        },
        2024,
    );
    let base = InferenceConfig {
        permutations: q,
        threads: Some(1),
        tile_size: Some(24),
        ..InferenceConfig::default()
    };
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("exact-full", NullStrategy::ExactFull),
        ("early-exit", NullStrategy::EarlyExit),
    ] {
        let cfg = InferenceConfig {
            null_strategy: strategy,
            null_sample_pairs: 200,
            ..base
        };
        let r = infer_network(&ds.matrix, &cfg);
        rows.push((
            name.to_string(),
            r.stats.joints_evaluated,
            r.stats.mi_time.as_secs_f64(),
            r.network.edge_count(),
        ));
    }
    rows
}

/// Method-comparison row for the extension experiment: MI pipeline vs
/// Pearson vs histogram on nonlinearly coupled data.
pub fn method_comparison(samples: usize) -> Vec<(String, f64, f64)> {
    let (matrix, truth) = gnet_expr::synth::coupled_pairs(
        6,
        samples,
        gnet_expr::synth::Coupling::Quadratic(0.15),
        88,
    );
    let mut rows = Vec::new();

    let cfg = InferenceConfig {
        permutations: 20,
        threads: Some(1),
        ..InferenceConfig::default()
    };
    let mi = infer_network(&matrix, &cfg);
    let s = recovery_score(&mi.network, &truth);
    rows.push(("bspline-mi".to_string(), s.precision(), s.recall()));

    let hist = baselines::histogram_network(&matrix, 10, 0.25);
    let s = recovery_score(&hist, &truth);
    rows.push(("histogram-mi".to_string(), s.precision(), s.recall()));

    let pearson = baselines::pearson_network(&matrix, 0.5);
    let s = recovery_score(&pearson, &truth);
    rows.push(("pearson".to_string(), s.precision(), s.recall()));

    let clr = baselines::clr_network(&matrix, 10, 3, 3.0);
    let s = recovery_score(&clr, &truth);
    rows.push(("clr".to_string(), s.precision(), s.recall()));

    rows
}

/// R13 — estimator bias against the bivariate-Gaussian closed form
/// `I = −½ ln(1 − ρ²)`. Rows: `(ρ, exact, bspline, histogram, ksg)`.
pub fn estimator_bias(samples: usize, rhos: &[f32]) -> Vec<(f32, f64, f64, f64, f64)> {
    use gnet_bspline::BsplineBasis;
    use gnet_expr::normalize::rank_transform_profile;
    use gnet_mi::histogram::HistogramEstimator;
    use gnet_mi::{entropy_nats, KsgEstimator};
    use rand_free_gaussian as gauss;

    let basis = BsplineBasis::tinge_default();
    let hist = HistogramEstimator::new(10);
    let ksg = KsgEstimator::default();
    rhos.iter()
        .map(|&rho| {
            let (x, y) = gauss(rho, samples, 20_26);
            let exact = -0.5 * (1.0 - (rho as f64).powi(2)).ln();

            let rx = rank_transform_profile(&x);
            let ry = rank_transform_profile(&y);
            let sx = gnet_bspline::SparseWeights::from_normalized(&rx, &basis);
            let sy = gnet_bspline::SparseWeights::from_normalized(&ry, &basis);
            let hx = entropy_nats(&sx.marginal());
            let hy = entropy_nats(&sy.marginal());
            let mut grid = vec![0.0; 100];
            let spline = gnet_mi::sparse_kernel::mi(&sx, &sy, hx, hy, &mut grid);

            let histogram = hist.mi(&rx, &ry);
            let knn = ksg.mi(&x, &y);
            (rho, exact, spline, histogram, knn)
        })
        .collect()
}

/// Correlated Gaussian pair without an RNG dependency in the signature
/// (SplitMix-based Box–Muller).
fn rand_free_gaussian(rho: f32, m: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    // cast-ok: benchmark fixtures are f32 like real expression data.
    #[allow(clippy::cast_possible_truncation)]
    let mut normal = move || {
        let u1 = next().max(f64::MIN_POSITIVE);
        let u2 = next();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    };
    let mut x = Vec::with_capacity(m);
    let mut y = Vec::with_capacity(m);
    for _ in 0..m {
        let a = normal();
        let e = normal();
        x.push(a);
        y.push(rho * a + (1.0 - rho * rho).sqrt() * e);
    }
    (x, y)
}

/// R11b — distributed run over the simulated cluster: `(ranks, pairs per
/// rank max/min, bytes shipped, edges)` plus equivalence with the shared-
/// memory result.
pub fn cluster_rows(
    genes: usize,
    samples: usize,
    q: usize,
) -> Vec<(usize, u64, u64, u64, usize, bool)> {
    let ds = SyntheticDataset::generate(
        GrnConfig {
            genes,
            samples,
            ..GrnConfig::small()
        },
        515,
    );
    let cfg = InferenceConfig {
        permutations: q,
        threads: Some(1),
        tile_size: Some(16),
        ..InferenceConfig::default()
    };
    let shared = infer_network(&ds.matrix, &cfg);
    let shared_keys: Vec<_> = shared.network.edges().iter().map(|e| e.key()).collect();
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|ranks| {
            let r = gnet_cluster::infer_network_distributed(&ds.matrix, &cfg, ranks);
            let max_pairs = r.rank_stats.iter().map(|s| s.pairs).max().unwrap_or(0);
            let min_pairs = r.rank_stats.iter().map(|s| s.pairs).min().unwrap_or(0);
            let bytes: u64 = r.rank_stats.iter().map(|s| s.bytes_sent).sum();
            let keys: Vec<_> = r.network.edges().iter().map(|e| e.key()).collect();
            (
                ranks,
                max_pairs,
                min_pairs,
                bytes,
                r.network.edge_count(),
                keys == shared_keys,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_sweep_runs_and_covers_sizes() {
        let rows = host_tile_sweep(48, 64, 2, &[4, 16, 48]);
        assert_eq!(rows.len(), 3);
        for (t, secs, rate) in rows {
            assert!(secs > 0.0, "tile {t} took {secs}");
            assert!(rate > 0.0);
        }
    }

    #[test]
    fn instrumented_inference_populates_the_recorder() {
        let rec = Recorder::enabled();
        let stats = instrumented_inference(24, 48, 2, 2, &rec);
        assert_eq!(rec.counter("mi.pairs"), Some(stats.pairs));
        assert!(rec.histogram("scheduler.tile_us").is_some());
        let json = rec.metrics_json();
        assert!(json.contains("\"format\":\"gnet-trace-metrics\""), "{json}");
        assert!(json.contains("stage.mi"), "{json}");
    }

    #[test]
    fn schedulers_cover_all_policies() {
        let rows = host_schedulers(32, 64, 2, 2);
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.0.as_str()).collect();
        assert!(names.contains(&"dynamic"));
    }

    #[test]
    fn accuracy_improves_with_samples() {
        let rows = accuracy_vs_samples(30, &[40, 320], 8);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].recall >= rows[0].recall,
            "recall must not degrade with 8× the data: {} → {}",
            rows[0].recall,
            rows[1].recall
        );
    }

    #[test]
    fn method_comparison_shows_mi_advantage_on_nonlinear_data() {
        let rows = method_comparison(500);
        let mi_recall = rows.iter().find(|r| r.0 == "bspline-mi").unwrap().2;
        let pearson_recall = rows.iter().find(|r| r.0 == "pearson").unwrap().2;
        assert!(
            mi_recall > pearson_recall,
            "MI must beat Pearson on quadratic coupling: {mi_recall} vs {pearson_recall}"
        );
    }
}
