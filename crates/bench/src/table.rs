//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Incremental builder for an aligned plain-text table that can also be
/// flushed to CSV.
#[derive(Clone, Debug, Default)]
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Start a table with a title and column header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    ///
    /// # Panics
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Append one row of preformatted strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the aligned plain-text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Write the table as CSV under `dir` with the given file stem.
    pub fn write_csv_to(&self, dir: &Path, stem: &str) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.csv"));
        let mut rows: Vec<Vec<String>> = vec![self.header.clone()];
        rows.extend(self.rows.iter().cloned());
        write_csv(&path, &rows)?;
        Ok(path)
    }
}

/// Write rows (first row = header) as a minimal CSV file. Cells containing
/// commas or quotes are quoted.
pub fn write_csv(path: &Path, rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') || c.contains('\n') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(file, "{}", line.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TableBuilder::new("demo", &["name", "value"]);
        t.row(&[&"short", &12]).row(&[&"a-much-longer-name", &3.5]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows after the title line.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "rows must align");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = TableBuilder::new("demo", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let dir = std::env::temp_dir().join("gnet_bench_test_csv");
        let mut t = TableBuilder::new("demo", &["a", "b"]);
        t.row_strings(vec!["x,y".into(), "plain".into()]);
        let path = t.write_csv_to(&dir, "demo").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("\"x,y\",plain"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
