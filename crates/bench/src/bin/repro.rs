//! `repro` — regenerate every table/figure of the reconstructed evaluation.
//!
//! ```text
//! repro --experiment r1         # one experiment
//! repro --experiment all        # everything (default)
//! repro --out results           # CSV output directory (default: results)
//! repro --quick                 # smaller measured sizes
//! repro --metrics FILE          # also run one instrumented inference and
//!                               # write its gnet-trace metrics JSON
//! ```
//!
//! Modeled series come from the calibrated machine models in `gnet-phi`
//! (this container has one CPU core and no Xeon Phi); measured series run
//! the real kernels and pipeline on the host. EXPERIMENTS.md records the
//! paper-vs-measured comparison for each experiment id.

use gnet_bench::measured;
use gnet_bench::TableBuilder;
use gnet_phi::scenarios::{self, paper_claims};
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    experiment: String,
    out: PathBuf,
    quick: bool,
    metrics: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut experiment = "all".to_string();
    let mut out = PathBuf::from("results");
    let mut quick = false;
    let mut metrics = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = args
                    .next()
                    .unwrap_or_else(|| usage("missing experiment id"));
            }
            "--out" | "-o" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("missing out dir")));
            }
            "--quick" | "-q" => quick = true,
            "--metrics" | "-m" => {
                metrics = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("missing metrics path")),
                ));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    Opts {
        experiment: experiment.to_lowercase(),
        out,
        quick,
        metrics,
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--experiment r1|r2|...|r15|all] [--out DIR] [--quick] [--metrics FILE]\n\
         Regenerates the evaluation tables (see DESIGN.md §4)."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// `--metrics FILE` — one instrumented small inference, exported in the
/// same metrics-JSON schema as `gnet infer --metrics`.
fn emit_metrics(path: &std::path::Path, quick: bool) {
    use gnet_bench::measured::instrumented_inference;
    let (n, m, q) = if quick { (64, 96, 2) } else { (128, 192, 4) };
    let rec = gnet_trace::Recorder::enabled();
    let stats = instrumented_inference(n, m, q, 2, &rec);
    match std::fs::write(path, rec.metrics_json() + "\n") {
        Ok(()) => println!(
            "metrics: instrumented n={n} m={m} q={q} run ({} pairs, {:.2}s) → {}",
            stats.pairs,
            stats.total_time().as_secs_f64(),
            path.display()
        ),
        Err(e) => eprintln!("metrics: cannot write {}: {e}", path.display()),
    }
}

fn emit(table: &TableBuilder, out: &std::path::Path, stem: &str) {
    println!("{}", table.render());
    match table.write_csv_to(out, stem) {
        Ok(path) => println!("   └─ csv: {}\n", path.display()),
        Err(e) => eprintln!("   └─ csv write failed: {e}\n"),
    }
}

fn main() {
    let opts = parse_args();
    let all = opts.experiment == "all";
    let t0 = Instant::now();
    let mut ran = 0;

    macro_rules! run {
        ($id:literal, $f:expr) => {
            if all || opts.experiment == $id {
                println!("──────── experiment {} ────────", $id.to_uppercase());
                $f;
                ran += 1;
            }
        };
    }

    run!("r1", r1_headline(&opts));
    run!("r2", r2_scaling(&opts));
    run!("r3", r3_threads_per_core(&opts));
    run!("r4", r4_vectorization(&opts));
    run!("r5", r5_gene_sweep(&opts));
    run!("r6", r6_sample_sweep(&opts));
    run!("r7", r7_schedulers(&opts));
    run!("r8", r8_tiles(&opts));
    run!("r9", r9_platforms(&opts));
    run!("r10", r10_accuracy(&opts));
    run!("r11", r11_extensions(&opts));
    run!("r12", r12_offload(&opts));
    run!("r13", r13_estimators(&opts));
    run!("r14", r14_forward(&opts));
    run!("r15", r15_energy(&opts));

    if let Some(path) = &opts.metrics {
        println!("──────── instrumented metrics ────────");
        emit_metrics(path, opts.quick);
        ran += 1;
    }

    if ran == 0 {
        usage(&format!("unknown experiment {:?}", opts.experiment));
    }
    println!(
        "done: {ran} experiment(s) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

/// R1 — headline whole-genome run: modeled platforms vs the paper's cited
/// 22 minutes, plus the measured host projection.
fn r1_headline(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R1 — whole-genome network (15,575 genes × 3,137 experiments, q=30)",
        &["platform", "threads", "minutes", "pairs/s", "source"],
    );
    for p in scenarios::headline_predictions() {
        t.row_strings(vec![
            p.platform.clone(),
            p.threads.to_string(),
            format!("{:.1}", p.minutes),
            format!("{:.0}", p.pair_rate),
            "modeled".into(),
        ]);
    }
    t.row_strings(vec![
        "Xeon Phi (paper, cited)".into(),
        "244".into(),
        format!("{:.1}", paper_claims::PHI_HEADLINE_MINUTES),
        "-".into(),
        "paper".into(),
    ]);
    let q = if opts.quick { 10 } else { 30 };
    let (rate, hours) = measured::host_headline_projection(q);
    t.row_strings(vec![
        format!("this host, 1 thread (measured @ q={q})"),
        "1".into(),
        format!("{:.0}", hours * 60.0),
        format!("{:.0}", rate.pairs_per_second()),
        "measured".into(),
    ]);
    emit(&t, &opts.out, "r1_headline");
}

/// R2 — strong scaling (modeled).
fn r2_scaling(opts: &Opts) {
    let genes = 2048;
    let mut t = TableBuilder::new(
        format!("R2 — strong scaling, n={genes}, m=3,137, q=30 (modeled)"),
        &["platform", "threads", "speedup"],
    );
    for (platform, curve) in scenarios::strong_scaling(genes) {
        for (threads, speedup) in curve {
            t.row_strings(vec![
                platform.clone(),
                threads.to_string(),
                format!("{speedup:.1}"),
            ]);
        }
    }
    emit(&t, &opts.out, "r2_scaling");
}

/// R3 — threads per core on the Phi (modeled).
fn r3_threads_per_core(opts: &Opts) {
    let series = scenarios::threads_per_core(2048);
    let base = series[0].1;
    let mut t = TableBuilder::new(
        "R3 — SMT threads/core on Xeon Phi, 61 cores (modeled)",
        &["threads/core", "wall seconds", "speedup vs 1 t/c"],
    );
    for (tpc, wall) in series {
        t.row_strings(vec![
            tpc.to_string(),
            format!("{wall:.1}"),
            format!("{:.2}", base / wall),
        ]);
    }
    emit(&t, &opts.out, "r3_threads_per_core");
}

/// R4 — vectorization speedup: modeled platforms + measured host.
fn r4_vectorization(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R4 — vectorized vs scalar MI kernel (m=3,137)",
        &[
            "platform",
            "scalar ns/pair",
            "vector ns/pair",
            "speedup",
            "source",
        ],
    );
    for (platform, speedup) in scenarios::vectorization_speedups() {
        t.row_strings(vec![
            platform,
            "-".into(),
            "-".into(),
            format!("{speedup:.1}x"),
            "modeled".into(),
        ]);
    }
    let q = if opts.quick { 0 } else { 4 };
    let (scalar, vector, ratio) = measured::host_vectorization(q);
    t.row_strings(vec![
        format!("this host (measured @ q={q})"),
        format!("{:.0}", scalar.ns_per_pair),
        format!("{:.0}", vector.ns_per_pair),
        format!("{ratio:.1}x"),
        "measured".into(),
    ]);
    emit(&t, &opts.out, "r4_vectorization");
}

/// R5 — runtime vs gene count: modeled full-scale + measured small-scale.
fn r5_gene_sweep(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R5 — runtime vs genes (m fixed)",
        &["genes", "time", "unit", "source"],
    );
    for (n, minutes) in scenarios::gene_sweep(&[1_000, 2_000, 4_000, 8_000, 15_575]) {
        t.row_strings(vec![
            n.to_string(),
            format!("{minutes:.2}"),
            "min (Phi, modeled)".into(),
            "modeled".into(),
        ]);
    }
    let (samples, q, counts): (usize, usize, &[usize]) = if opts.quick {
        (128, 2, &[64, 128, 256])
    } else {
        (256, 4, &[128, 256, 512])
    };
    for (n, secs) in measured::host_gene_sweep(counts, samples, q) {
        t.row_strings(vec![
            n.to_string(),
            format!("{secs:.2}"),
            format!("s (host, m={samples}, q={q})"),
            "measured".into(),
        ]);
    }
    emit(&t, &opts.out, "r5_gene_sweep");
}

/// R6 — runtime vs sample count: modeled + measured.
fn r6_sample_sweep(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R6 — runtime vs experiments (n fixed)",
        &["samples", "time", "unit", "source"],
    );
    for (m, minutes) in scenarios::sample_sweep(2_048, &[512, 1_024, 2_048, 3_137, 4_096]) {
        t.row_strings(vec![
            m.to_string(),
            format!("{minutes:.2}"),
            "min (Phi n=2048, modeled)".into(),
            "modeled".into(),
        ]);
    }
    let (genes, q, counts): (usize, usize, &[usize]) = if opts.quick {
        (96, 2, &[64, 128, 256])
    } else {
        (192, 4, &[128, 256, 512, 1024])
    };
    for (m, secs) in measured::host_sample_sweep(genes, counts, q) {
        t.row_strings(vec![
            m.to_string(),
            format!("{secs:.2}"),
            format!("s (host, n={genes}, q={q})"),
            "measured".into(),
        ]);
    }
    emit(&t, &opts.out, "r6_sample_sweep");
}

/// R7 — scheduling policies: modeled at 244 threads + measured on host.
fn r7_schedulers(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R7 — tile scheduling policy",
        &["policy", "wall seconds", "imbalance", "source"],
    );
    for (name, wall, imb) in scenarios::scheduler_comparison(2048) {
        t.row_strings(vec![
            name,
            format!("{wall:.2}"),
            format!("{imb:.3}"),
            "modeled (Phi, 200t)".into(),
        ]);
    }
    let (n, m, q, threads) = if opts.quick {
        (96, 128, 2, 2)
    } else {
        (192, 256, 4, 4)
    };
    for (name, secs, imb) in measured::host_schedulers(n, m, q, threads) {
        t.row_strings(vec![
            name,
            format!("{secs:.2}"),
            format!("{imb:.3}"),
            format!("measured (host, {threads}t)"),
        ]);
    }
    emit(&t, &opts.out, "r7_schedulers");
}

/// R8 — tile-size sweep (measured; cache blocking).
fn r8_tiles(opts: &Opts) {
    let (n, m, q) = if opts.quick {
        (128, 256, 2)
    } else {
        (256, 512, 4)
    };
    let tiles: &[usize] = &[2, 4, 8, 16, 32, 64, 128];
    let mut t = TableBuilder::new(
        format!("R8 — tile size sweep (host, n={n}, m={m}, q={q})"),
        &["tile", "mi seconds", "pairs/s"],
    );
    for (tile, secs, rate) in measured::host_tile_sweep(n, m, q, tiles) {
        t.row_strings(vec![
            tile.to_string(),
            format!("{secs:.2}"),
            format!("{rate:.0}"),
        ]);
    }
    emit(&t, &opts.out, "r8_tiles");
}

/// R9 — platform comparison incl. the TINGe/BG-L cluster scenario.
fn r9_platforms(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R9 — single chip vs prior-art cluster (headline workload)",
        &["platform", "minutes", "vs paper", "source"],
    );
    for p in scenarios::headline_predictions() {
        let note = if p.platform.contains("Phi") {
            format!("paper: {:.0} min", paper_claims::PHI_HEADLINE_MINUTES)
        } else if p.platform.contains("Blue Gene") {
            format!("paper: ~{:.0} min", paper_claims::BGL_1024_MINUTES)
        } else {
            "-".into()
        };
        t.row_strings(vec![
            p.platform.clone(),
            format!("{:.1}", p.minutes),
            note,
            "modeled".into(),
        ]);
    }
    emit(&t, &opts.out, "r9_platforms");
}

/// R10 — statistical recovery vs sample count (+ method comparison).
fn r10_accuracy(opts: &Opts) {
    let (genes, q, counts): (usize, usize, &[usize]) = if opts.quick {
        (40, 8, &[50, 100, 200])
    } else {
        (60, 15, &[50, 100, 200, 400, 800])
    };
    let mut t = TableBuilder::new(
        format!("R10 — recovery vs samples (grnsim, n={genes}, q={q}, α=0.01)"),
        &[
            "samples",
            "edges",
            "precision",
            "recall",
            "F1",
            "DPI prec",
            "DPI recall",
        ],
    );
    for row in measured::accuracy_vs_samples(genes, counts, q) {
        t.row_strings(vec![
            row.samples.to_string(),
            row.edges.to_string(),
            format!("{:.3}", row.precision),
            format!("{:.3}", row.recall),
            format!("{:.3}", row.f1),
            format!("{:.3}", row.dpi_precision),
            format!("{:.3}", row.dpi_recall),
        ]);
    }
    emit(&t, &opts.out, "r10_accuracy");

    let mut mc = TableBuilder::new(
        "R10b — method comparison on quadratic coupling (m=500)",
        &["method", "precision", "recall"],
    );
    for (method, p, r) in measured::method_comparison(if opts.quick { 300 } else { 500 }) {
        mc.row_strings(vec![method, format!("{p:.3}"), format!("{r:.3}")]);
    }
    emit(&mc, &opts.out, "r10b_methods");
}

/// R11 — extensions: early-exit ablation and the distributed cluster run.
fn r11_extensions(opts: &Opts) {
    let (n, m, q) = if opts.quick {
        (48, 150, 10)
    } else {
        (96, 250, 20)
    };
    let mut t = TableBuilder::new(
        format!("R11 — early-exit null strategy ablation (host, n={n}, m={m}, q={q})"),
        &["strategy", "joint evaluations", "mi seconds", "edges"],
    );
    for (name, joints, secs, edges) in measured::early_exit_ablation(n, m, q) {
        t.row_strings(vec![
            name,
            joints.to_string(),
            format!("{secs:.3}"),
            edges.to_string(),
        ]);
    }
    emit(&t, &opts.out, "r11_early_exit");

    let mut c = TableBuilder::new(
        format!("R11b — simulated-cluster distributed run (n={n}, m={m}, q={q})"),
        &[
            "ranks",
            "max pairs/rank",
            "min pairs/rank",
            "bytes shipped",
            "edges",
            "matches shared",
        ],
    );
    for (ranks, maxp, minp, bytes, edges, matches) in measured::cluster_rows(n, m, q) {
        c.row_strings(vec![
            ranks.to_string(),
            maxp.to_string(),
            minp.to_string(),
            bytes.to_string(),
            edges.to_string(),
            matches.to_string(),
        ]);
    }
    emit(&c, &opts.out, "r11b_cluster");
}

/// R12 — host + coprocessor offload split (modeled).
fn r12_offload(opts: &Opts) {
    use gnet_parallel::TileSpace;
    use gnet_phi::{OffloadModel, WorkloadModel};
    let workload = WorkloadModel {
        genes: 4_096,
        ..WorkloadModel::arabidopsis_headline()
    };
    let model = OffloadModel::paper_system();
    let tiles = TileSpace::new(
        workload.genes,
        scenarios::tile_size_for(workload.genes, 244),
    );
    let mut t = TableBuilder::new(
        "R12 — host+coprocessor split, n=4,096 (modeled)",
        &["device share", "wall seconds"],
    );
    for (share, wall) in model.split_curve(tiles.tiles(), &workload, 10) {
        t.row_strings(vec![format!("{share:.1}"), format!("{wall:.1}")]);
    }
    let (best_share, best_wall) = model.optimal_split(tiles.tiles(), &workload, 40);
    t.row_strings(vec![
        format!("optimal {best_share:.2}"),
        format!("{best_wall:.1}"),
    ]);
    emit(&t, &opts.out, "r12_offload");
}

/// R13 — estimator bias against the Gaussian closed form (measured).
fn r13_estimators(opts: &Opts) {
    let samples = if opts.quick { 500 } else { 1_500 };
    let mut t = TableBuilder::new(
        format!("R13 — estimator bias vs Gaussian closed form (m={samples})"),
        &[
            "rho",
            "exact",
            "bspline(k=3,b=10)",
            "histogram(b=10)",
            "KSG(k=4)",
        ],
    );
    for (rho, exact, spline, hist, ksg) in
        measured::estimator_bias(samples, &[0.0, 0.3, 0.5, 0.7, 0.9])
    {
        t.row_strings(vec![
            format!("{rho:.1}"),
            format!("{exact:.3}"),
            format!("{spline:.3}"),
            format!("{hist:.3}"),
            format!("{ksg:.3}"),
        ]);
    }
    emit(&t, &opts.out, "r13_estimators");
}

/// R14 — forward projection onto Knights Landing (modeled).
fn r14_forward(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R14 — forward projection: KNC → KNL, headline workload (modeled)",
        &["platform", "threads", "minutes"],
    );
    for p in scenarios::forward_projection() {
        t.row_strings(vec![
            p.platform,
            p.threads.to_string(),
            format!("{:.1}", p.minutes),
        ]);
    }
    emit(&t, &opts.out, "r14_forward");
}

/// R15 — energy-to-solution for the headline run (modeled).
fn r15_energy(opts: &Opts) {
    let mut t = TableBuilder::new(
        "R15 — energy to solution, headline workload (modeled)",
        &["platform", "minutes", "watts", "kJ"],
    );
    for row in gnet_phi::energy::headline_energy() {
        t.row_strings(vec![
            row.platform,
            format!("{:.1}", row.minutes),
            format!("{:.0}", row.watts),
            format!("{:.0}", row.kilojoules),
        ]);
    }
    emit(&t, &opts.out, "r15_energy");
}
