//! Vectorized B-spline MI kernel on the dense (lane-padded) weight layout.
//!
//! The restructuring at the heart of the paper: gene *y*'s per-sample
//! weights are expanded to a dense zero-padded row of `b_padded` floats
//! (one cache line for the TINGe default of 10 bins). The joint-grid update
//! for one sample then becomes `k` *contiguous, unit-stride* row FMAs
//!
//! ```text
//! for i in 0..k:  grid[fx + i][..] += wx[i] · y_row[..]
//! ```
//!
//! with no data-dependent store addresses inside the vector operation —
//! the only indirection left (which grid row) happens at row granularity.
//! This trades `m·k²` scattered scalar multiply-adds for `m·k` row-wide
//! FMAs the vector unit executes at full rate; with `b_padded = 16` each
//! row FMA is exactly one 512-bit instruction on the paper's hardware.
//!
//! The permuted variant reads `y`'s dense rows through a permutation index
//! — rows stay contiguous, so the vector body is unchanged; only the row
//! pointer hops.

use crate::entropy::entropy_from_counts;
use gnet_bspline::{DenseWeights, SparseWeights};
use gnet_simd::slice_ops::{axpy, joint_accumulate_w16};
use gnet_simd::F32x16;

/// Reusable joint-grid scratch for the vector kernel: `bins` rows padded to
/// the dense layout's stride.
#[derive(Clone, Debug)]
pub struct VectorGrid {
    bins: usize,
    stride: usize,
    data: Vec<f32>,
}

impl VectorGrid {
    /// Allocate a grid compatible with `dense` (same stride).
    pub fn for_dense(dense: &DenseWeights) -> Self {
        Self {
            bins: dense.bins(),
            stride: dense.stride(),
            data: vec![0.0; dense.bins() * dense.stride()],
        }
    }

    /// Number of (live) bin rows.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Padded row stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The backing slice, rows × stride. Padding columns stay zero, so
    /// entropy over the whole slice equals entropy over the live cells.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    fn reset(&mut self, dense: &DenseWeights) {
        assert_eq!(self.stride, dense.stride(), "grid/dense stride mismatch");
        assert_eq!(self.bins, dense.bins(), "grid/dense bin mismatch");
        self.data.fill(0.0);
    }

    #[inline(always)]
    fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.stride..(r + 1) * self.stride]
    }
}

/// Accumulate the unnormalized joint grid of sparse-`x` against dense-`y`.
///
/// # Panics
/// Panics on shape disagreements between `x`, `y`, and `grid`.
pub fn joint_counts(x: &SparseWeights, y: &DenseWeights, grid: &mut VectorGrid) {
    check_pair(x, y);
    grid.reset(y);
    if joint_counts_w16(x, y, None, grid) {
        return;
    }
    for s in 0..x.samples() {
        let fx = x.first_bin(s);
        let wx = x.sample_weights(s);
        let y_row = y.row(s);
        for (i, &wxi) in wx.iter().enumerate() {
            // Row-wide FMA: one padded row of y scaled by one x weight.
            axpy(wxi, y_row, grid.row_mut(fx + i));
        }
    }
}

/// Fast path for the ubiquitous one-register-row layout (`stride == 16`,
/// i.e. `b ≤ 16`, which covers the TINGe default of 10 bins): the whole
/// joint-grid update is handed to the dispatched
/// [`joint_accumulate_w16`] slice kernel, where each sample is `k`
/// contiguous row FMAs — one 512-bit `vfmadd` per row on AVX-512, two
/// 256-bit ones on AVX2, and the portable `F32x16` loop on the emulated
/// backend. Returns `false` (doing nothing) when the layout does not fit,
/// letting the caller fall back to the general row loop.
fn joint_counts_w16(
    x: &SparseWeights,
    y: &DenseWeights,
    perm: Option<&[u32]>,
    grid: &mut VectorGrid,
) -> bool {
    const W: usize = F32x16::LANES;
    if y.stride() != W || grid.stride != W || grid.bins > W {
        return false;
    }
    let k = x.order();
    if k > 8 {
        return false;
    }
    joint_accumulate_w16(
        &mut grid.data,
        x.first_bins_flat(),
        x.weights_flat(),
        k,
        y.as_slice(),
        perm,
    );
    true
}

/// As [`joint_counts`] but pairing sample `s` of `x` with sample `perm[s]`
/// of `y`.
///
/// # Panics
/// As [`joint_counts`], plus if `perm.len()` differs from the sample count.
pub fn joint_counts_permuted(
    x: &SparseWeights,
    y: &DenseWeights,
    perm: &[u32],
    grid: &mut VectorGrid,
) {
    check_pair(x, y);
    assert_eq!(perm.len(), x.samples(), "permutation length mismatch");
    grid.reset(y);
    if joint_counts_w16(x, y, Some(perm), grid) {
        return;
    }
    for (s, &p) in perm.iter().enumerate() {
        let fx = x.first_bin(s);
        let wx = x.sample_weights(s);
        let y_row = y.row(p as usize); // cast-ok: u32 to usize widens losslessly
        for (i, &wxi) in wx.iter().enumerate() {
            axpy(wxi, y_row, grid.row_mut(fx + i));
        }
    }
}

/// Mutual information (nats) via the vector kernel, given precomputed
/// marginal entropies.
pub fn mi(x: &SparseWeights, y: &DenseWeights, hx: f64, hy: f64, grid: &mut VectorGrid) -> f64 {
    joint_counts(x, y, grid);
    // cast-ok: sample counts are far below f64's 2^53 exact-integer range
    let hxy = entropy_from_counts(grid.as_slice(), x.samples() as f64);
    hx + hy - hxy
}

/// Mutual information (nats) of `x` against permuted `y` via the vector
/// kernel. `hy` is the unpermuted marginal entropy (permutation invariant).
pub fn mi_permuted(
    x: &SparseWeights,
    y: &DenseWeights,
    perm: &[u32],
    hx: f64,
    hy: f64,
    grid: &mut VectorGrid,
) -> f64 {
    joint_counts_permuted(x, y, perm, grid);
    // cast-ok: sample counts are far below f64's 2^53 exact-integer range
    let hxy = entropy_from_counts(grid.as_slice(), x.samples() as f64);
    hx + hy - hxy
}

fn check_pair(x: &SparseWeights, y: &DenseWeights) {
    assert_eq!(
        x.samples(),
        y.samples(),
        "genes must share the sample count"
    );
    assert_eq!(x.bins(), y.bins(), "genes must share the bin count");
    assert!(x.samples() > 0, "cannot compute MI over zero samples");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::entropy_nats;
    use crate::sparse_kernel;
    use gnet_bspline::BsplineBasis;
    use gnet_expr::normalize::rank_transform_profile;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep(values: &[f32], basis: &BsplineBasis) -> SparseWeights {
        SparseWeights::from_normalized(&rank_transform_profile(values), basis)
    }

    fn random_profiles(seed: u64, m: usize) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m).map(|_| rng.gen::<f32>()).collect();
        let b: Vec<f32> = (0..m).map(|_| rng.gen::<f32>()).collect();
        (a, b)
    }

    #[test]
    fn vector_kernel_matches_scalar_kernel() {
        let basis = BsplineBasis::tinge_default();
        for m in [1usize, 5, 16, 17, 100, 333] {
            let (a, b) = random_profiles(m as u64, m);
            let x = prep(&a, &basis);
            let y = prep(&b, &basis);
            let hx = entropy_nats(&x.marginal());
            let hy = entropy_nats(&y.marginal());

            let mut sgrid = vec![0.0; 100];
            let scalar = sparse_kernel::mi(&x, &y, hx, hy, &mut sgrid);

            let yd = y.to_dense();
            let mut vgrid = VectorGrid::for_dense(&yd);
            let vector = mi(&x, &yd, hx, hy, &mut vgrid);

            assert!(
                (scalar - vector).abs() < 1e-4,
                "m={m}: scalar {scalar} vs vector {vector}"
            );
        }
    }

    #[test]
    fn permuted_kernels_match_each_other() {
        let basis = BsplineBasis::new(4, 12);
        let m = 97u32; // prime
        let (a, b) = random_profiles(1234, m as usize);
        let x = prep(&a, &basis);
        let y = prep(&b, &basis);
        let hx = entropy_nats(&x.marginal());
        let hy = entropy_nats(&y.marginal());
        let perm: Vec<u32> = (0..m).map(|i| (i * 29) % m).collect();

        let mut sgrid = vec![0.0; 144];
        let scalar = sparse_kernel::mi_permuted(&x, &y, &perm, hx, hy, &mut sgrid);

        let yd = y.to_dense();
        let mut vgrid = VectorGrid::for_dense(&yd);
        let vector = mi_permuted(&x, &yd, &perm, hx, hy, &mut vgrid);

        assert!(
            (scalar - vector).abs() < 1e-4,
            "scalar {scalar} vs vector {vector}"
        );
    }

    #[test]
    fn permuted_y_equals_materialized_permuted_dense() {
        // Reading through the perm index must equal physically permuting
        // the dense rows first.
        let basis = BsplineBasis::tinge_default();
        let m = 53u32;
        let (a, b) = random_profiles(9, m as usize);
        let x = prep(&a, &basis);
        let y = prep(&b, &basis);
        let hx = entropy_nats(&x.marginal());
        let hy = entropy_nats(&y.marginal());
        let perm: Vec<u32> = (0..m).map(|i| (i * 23) % m).collect();

        let yd = y.to_dense();
        let mut g1 = VectorGrid::for_dense(&yd);
        let via_index = mi_permuted(&x, &yd, &perm, hx, hy, &mut g1);

        // Materialized: y_perm[s] = y[perm[s]] pairs x[s] with y[perm[s]].
        let yd_mat = yd.permuted(&perm);
        let mut g2 = VectorGrid::for_dense(&yd_mat);
        let via_copy = mi(&x, &yd_mat, hx, hy, &mut g2);

        assert!((via_index - via_copy).abs() < 1e-6);
    }

    #[test]
    fn grid_mass_is_sample_count() {
        let basis = BsplineBasis::tinge_default();
        let (a, b) = random_profiles(2, 41);
        let x = prep(&a, &basis);
        let yd = prep(&b, &basis).to_dense();
        let mut grid = VectorGrid::for_dense(&yd);
        joint_counts(&x, &yd, &mut grid);
        let mass: f32 = grid.as_slice().iter().sum();
        assert!((mass - 41.0).abs() < 1e-4);
    }

    #[test]
    fn padding_columns_stay_zero() {
        let basis = BsplineBasis::tinge_default();
        let (a, b) = random_profiles(5, 29);
        let x = prep(&a, &basis);
        let yd = prep(&b, &basis).to_dense();
        let mut grid = VectorGrid::for_dense(&yd);
        joint_counts(&x, &yd, &mut grid);
        for r in 0..grid.bins() {
            let row = &grid.as_slice()[r * grid.stride()..(r + 1) * grid.stride()];
            for &v in &row[grid.bins()..] {
                assert_eq!(v, 0.0, "padding must stay zero");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_pairs() {
        // Computing pair A, then pair B, must give the same result as a
        // fresh grid for B (reset correctness).
        let basis = BsplineBasis::tinge_default();
        let (a, b) = random_profiles(6, 64);
        let (c, _) = random_profiles(7, 64);
        let x = prep(&a, &basis);
        let y = prep(&b, &basis);
        let z = prep(&c, &basis);
        let hx = entropy_nats(&x.marginal());
        let hy = entropy_nats(&y.marginal());
        let hz = entropy_nats(&z.marginal());

        let yd = y.to_dense();
        let zd = z.to_dense();
        let mut reused = VectorGrid::for_dense(&yd);
        let _ = mi(&x, &yd, hx, hy, &mut reused);
        let second = mi(&x, &zd, hx, hz, &mut reused);

        let mut fresh = VectorGrid::for_dense(&zd);
        let direct = mi(&x, &zd, hx, hz, &mut fresh);
        assert_eq!(second, direct);
    }

    #[test]
    #[should_panic(expected = "share the bin count")]
    fn mismatched_bins_panic() {
        let x = prep(&[1.0, 2.0, 3.0], &BsplineBasis::new(3, 10));
        let yd = prep(&[1.0, 2.0, 3.0], &BsplineBasis::new(3, 12)).to_dense();
        let mut grid = VectorGrid::for_dense(&yd);
        joint_counts(&x, &yd, &mut grid);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_scalar_vector_equivalence(
            seed in 0u64..1000,
            m in 2usize..150,
            order in 1usize..=4,
        ) {
            let basis = BsplineBasis::new(order, 10);
            let (a, b) = random_profiles(seed, m);
            let x = prep(&a, &basis);
            let y = prep(&b, &basis);
            let hx = entropy_nats(&x.marginal());
            let hy = entropy_nats(&y.marginal());
            let mut sgrid = vec![0.0; 100];
            let scalar = sparse_kernel::mi(&x, &y, hx, hy, &mut sgrid);
            let yd = y.to_dense();
            let mut vgrid = VectorGrid::for_dense(&yd);
            let vector = mi(&x, &yd, hx, hy, &mut vgrid);
            prop_assert!((scalar - vector).abs() < 2e-4,
                "scalar {} vs vector {}", scalar, vector);
        }

        #[test]
        fn prop_grid_padding_stays_zero_after_kernel(
            seed in 0u64..500,
            m in 2usize..150,
            order in 1usize..=4,
        ) {
            // The row-FMA loop accumulates wx·y_row over *padded* rows, so
            // the grid's padding columns receive only wx·0 contributions.
            // `mi` takes entropy over the whole padded slice on that
            // premise; if padding ever went nonzero (the exact corruption
            // the dropped-padding-zeroing mutation injects) every MI value
            // would silently shift. Checked bitwise, observed and permuted
            // paths alike, across a scratch-reuse cycle.
            let basis = BsplineBasis::new(order, 10);
            let (a, b) = random_profiles(seed, m);
            let x = prep(&a, &basis);
            let y = prep(&b, &basis);
            let yd = y.to_dense();
            let mut grid = VectorGrid::for_dense(&yd);
            let perm: Vec<u32> = (0..m as u32).rev().collect();
            joint_counts(&x, &yd, &mut grid);
            joint_counts_permuted(&x, &yd, &perm, &mut grid);
            joint_counts(&x, &yd, &mut grid);
            let (bins, stride) = (grid.bins(), grid.stride());
            for (idx, &v) in grid.as_slice().iter().enumerate() {
                if idx % stride >= bins {
                    prop_assert!(
                        v.to_bits() == 0.0f32.to_bits(),
                        "padding cell {idx} holds {v} after the kernel"
                    );
                }
            }
        }

        #[test]
        fn prop_mi_nonnegative(seed in 0u64..500, m in 4usize..200) {
            let basis = BsplineBasis::tinge_default();
            let (a, b) = random_profiles(seed, m);
            let x = prep(&a, &basis);
            let yd = prep(&b, &basis).to_dense();
            let hx = entropy_nats(&x.marginal());
            let hy = entropy_nats(&yd.marginal());
            let mut grid = VectorGrid::for_dense(&yd);
            let v = mi(&x, &yd, hx, hy, &mut grid);
            // Plug-in MI with marginals equal to the joint's own marginals
            // is a KL divergence ⇒ non-negative up to float rounding.
            prop_assert!(v > -1e-3, "MI {} went negative", v);
        }
    }
}
