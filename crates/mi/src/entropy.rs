//! Plug-in entropy helpers shared by every estimator.

use gnet_simd::slice_ops;

/// Shannon entropy (nats) of a normalized distribution: `−Σ p ln p`.
///
/// Accepts small normalization error; callers that have unnormalized counts
/// should prefer [`entropy_from_counts`], which is exact under the count
/// identity and cheaper (no per-element division).
pub fn entropy_nats(p: &[f32]) -> f64 {
    -slice_ops::xlogx_sum(p) as f64
}

/// Shannon entropy (nats) from unnormalized non-negative counts with known
/// total mass: `H = ln(total) − (Σ c ln c) / total`.
///
/// This identity is what lets the joint kernels skip normalizing the grid:
/// the accumulated weight grid always has total mass `m` because every
/// sample's weights sum to one.
///
/// # Panics
/// Panics if `total` is not strictly positive.
pub fn entropy_from_counts(counts: &[f32], total: f64) -> f64 {
    assert!(total > 0.0, "total mass must be positive");
    total.ln() - slice_ops::xlogx_sum(counts) as f64 / total
}

/// Scalar-reference twin of [`entropy_from_counts`] used by the no-vec
/// baseline kernel so the baseline touches no lane code at all.
pub fn entropy_from_counts_scalar(counts: &[f32], total: f64) -> f64 {
    assert!(total > 0.0, "total mass must be positive");
    total.ln() - slice_ops::xlogx_sum_scalar(counts) as f64 / total
}

/// Convert nats to bits.
pub fn nats_to_bits(nats: f64) -> f64 {
    nats / std::f64::consts::LN_2
}

/// Convert bits to nats.
pub fn bits_to_nats(bits: f64) -> f64 {
    bits * std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_entropy() {
        let p = vec![0.25f32; 4];
        assert!((entropy_nats(&p) - 4.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn deterministic_distribution_has_zero_entropy() {
        let p = [0.0f32, 1.0, 0.0];
        assert!(entropy_nats(&p).abs() < 1e-9);
    }

    #[test]
    fn counts_identity_matches_normalized_form() {
        let counts = [3.0f32, 1.0, 4.0, 2.0];
        let total: f64 = 10.0;
        let p: Vec<f32> = counts.iter().map(|c| c / total as f32).collect();
        let h1 = entropy_from_counts(&counts, total);
        let h2 = entropy_nats(&p);
        assert!((h1 - h2).abs() < 1e-6, "{h1} vs {h2}");
        let h3 = entropy_from_counts_scalar(&counts, total);
        assert!((h1 - h3).abs() < 1e-6);
    }

    #[test]
    fn zeros_in_counts_are_ignored() {
        let h = entropy_from_counts(&[5.0, 0.0, 5.0, 0.0], 10.0);
        assert!((h - 2.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_total_panics() {
        let _ = entropy_from_counts(&[0.0], 0.0);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        let h = 1.234;
        assert!((bits_to_nats(nats_to_bits(h)) - h).abs() < 1e-12);
        assert!((nats_to_bits(std::f64::consts::LN_2) - 1.0).abs() < 1e-12);
    }
}
