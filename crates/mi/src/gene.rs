//! Per-gene preparation and the kernel-dispatch layer the pipeline uses.
//!
//! Preparation happens once per gene (B-spline weights + marginal entropy)
//! and is reused for all `n−1` pairs the gene participates in — the
//! amortization that makes whole-genome runs feasible and that the tiling
//! layer is built around. Gene contexts keep only the *sparse* weight
//! matrix; the dense expansion the vector kernel needs is materialized per
//! tile by the executor ([`PreparedGene::to_dense`]), which is exactly how
//! the paper bounds the working set to the L2 cache.

use crate::entropy::entropy_nats;
use crate::sparse_kernel;
use crate::vector_kernel::{self, VectorGrid};
use gnet_bspline::{BsplineBasis, DenseWeights, SparseWeights};
use gnet_expr::normalize::rank_transform_profile;
use gnet_expr::ExpressionMatrix;

/// Which B-spline kernel the pipeline dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum MiKernel {
    /// Scalar `k × k` scatter kernel on sparse weights (no-vec baseline).
    ScalarSparse,
    /// Row-FMA kernel on dense lane-padded weights (the paper's kernel).
    #[default]
    VectorDense,
}

/// One gene, prepared for pairwise MI: rank-transformed, B-spline weighted,
/// marginal entropy cached.
#[derive(Clone, Debug)]
pub struct PreparedGene {
    /// Sparse `m × k` weight matrix.
    pub sparse: SparseWeights,
    /// Marginal entropy `H(g)` in nats.
    pub h_marginal: f64,
}

impl PreparedGene {
    /// Prepare from a **raw** expression profile (rank transform applied
    /// internally).
    pub fn from_raw(values: &[f32], basis: &BsplineBasis) -> Self {
        Self::from_normalized(&rank_transform_profile(values), basis)
    }

    /// Prepare from an already `[0, 1]`-normalized profile.
    pub fn from_normalized(normalized: &[f32], basis: &BsplineBasis) -> Self {
        let sparse = SparseWeights::from_normalized(normalized, basis);
        let h_marginal = entropy_nats(&sparse.marginal());
        Self { sparse, h_marginal }
    }

    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.sparse.samples()
    }

    /// Expand to the dense layout the vector kernel consumes. Called once
    /// per tile column and reused across the tile's rows.
    pub fn to_dense(&self) -> DenseWeights {
        self.sparse.to_dense()
    }

    /// Approximate heap footprint in bytes (sparse form).
    pub fn heap_bytes(&self) -> usize {
        self.sparse.heap_bytes() + core::mem::size_of::<f64>()
    }
}

/// Prepare from a raw expression profile — free-function alias used by the
/// pipeline.
pub fn prepare_gene(values: &[f32], basis: &BsplineBasis) -> PreparedGene {
    PreparedGene::from_raw(values, basis)
}

/// Prepare every gene of a matrix (the pipeline's preprocessing +
/// weight-computation stages fused).
pub fn prepare_matrix(matrix: &ExpressionMatrix, basis: &BsplineBasis) -> Vec<PreparedGene> {
    (0..matrix.genes())
        .map(|g| prepare_gene(matrix.gene(g), basis))
        .collect()
}

/// Reusable per-thread scratch covering both kernels.
#[derive(Clone, Debug)]
pub struct MiScratch {
    scalar_grid: Vec<f32>,
    vector_grid: Option<VectorGrid>,
    bins: usize,
}

impl MiScratch {
    /// Scratch for genes produced with `basis`.
    pub fn for_basis(basis: &BsplineBasis) -> Self {
        let b = basis.bins();
        Self {
            scalar_grid: vec![0.0; b * b],
            vector_grid: None,
            bins: b,
        }
    }

    fn vector_grid_for(&mut self, dense: &DenseWeights) -> &mut VectorGrid {
        let needs_new = match &self.vector_grid {
            Some(g) => g.bins() != dense.bins() || g.stride() != dense.stride(),
            None => true,
        };
        if needs_new {
            self.vector_grid = Some(VectorGrid::for_dense(dense));
        }
        self.vector_grid.as_mut().expect("just ensured")
    }
}

/// MI (nats) of a prepared pair with the scalar kernel.
pub fn mi_scalar(x: &PreparedGene, y: &PreparedGene, scratch: &mut MiScratch) -> f64 {
    debug_assert_eq!(scratch.bins, x.sparse.bins());
    sparse_kernel::mi(
        &x.sparse,
        &y.sparse,
        x.h_marginal,
        y.h_marginal,
        &mut scratch.scalar_grid,
    )
}

/// MI (nats) of a prepared pair with the vector kernel. `y_dense` must be
/// the dense expansion of `y` (cached by the tile executor).
pub fn mi_vector(
    x: &PreparedGene,
    y: &PreparedGene,
    y_dense: &DenseWeights,
    scratch: &mut MiScratch,
) -> f64 {
    let grid = scratch.vector_grid_for(y_dense);
    vector_kernel::mi(&x.sparse, y_dense, x.h_marginal, y.h_marginal, grid)
}

/// Result of evaluating one pair together with its permutation null.
#[derive(Clone, Debug, PartialEq)]
pub struct PairMi {
    /// MI (nats) of the observed pair.
    pub observed: f64,
    /// MI (nats) of the pair under each null permutation, in permutation
    /// order.
    pub null: Vec<f64>,
}

impl PairMi {
    /// Number of null permutations whose MI reached or exceeded the
    /// observed value — the numerator of the empirical p-value
    /// `(exceed + 1) / (q + 1)`.
    pub fn exceed_count(&self) -> usize {
        self.null.iter().filter(|&&v| v >= self.observed).count()
    }
}

/// Evaluate a pair and its `q` permutation nulls in one batched call — the
/// unit of work the tile executor schedules. Dispatches on `kernel`; the
/// dense expansion of `y` is only touched (and required to be `Some`) for
/// the vector kernel.
///
/// # Panics
/// Panics if `kernel` is [`MiKernel::VectorDense`] and `y_dense` is `None`,
/// or if any permutation has the wrong length.
pub fn mi_with_nulls(
    kernel: MiKernel,
    x: &PreparedGene,
    y: &PreparedGene,
    y_dense: Option<&DenseWeights>,
    perms: &[Vec<u32>],
    scratch: &mut MiScratch,
) -> PairMi {
    match kernel {
        MiKernel::ScalarSparse => {
            let grid = &mut scratch.scalar_grid;
            let observed =
                sparse_kernel::mi(&x.sparse, &y.sparse, x.h_marginal, y.h_marginal, grid);
            let null = perms
                .iter()
                .map(|p| {
                    sparse_kernel::mi_permuted(
                        &x.sparse,
                        &y.sparse,
                        p,
                        x.h_marginal,
                        y.h_marginal,
                        grid,
                    )
                })
                .collect();
            PairMi { observed, null }
        }
        MiKernel::VectorDense => {
            let yd = y_dense.expect("vector kernel requires the dense expansion of y");
            let grid = scratch.vector_grid_for(yd);
            let observed = vector_kernel::mi(&x.sparse, yd, x.h_marginal, y.h_marginal, grid);
            let null = perms
                .iter()
                .map(|p| {
                    vector_kernel::mi_permuted(&x.sparse, yd, p, x.h_marginal, y.h_marginal, grid)
                })
                .collect();
            PairMi { observed, null }
        }
    }
}

/// Result of the early-exit evaluation of one pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EarlyExitMi {
    /// MI (nats) of the observed pair.
    pub observed: f64,
    /// True iff the observed value beat every null that was evaluated
    /// *and* evaluation ran to completion (i.e. the pair is a candidate).
    pub survived: bool,
    /// Joint-entropy evaluations actually performed (1 for the observed
    /// value plus however many nulls ran before the exit).
    pub joints_evaluated: u32,
}

/// Early-exit variant of [`mi_with_nulls`]: evaluation of the permutation
/// null stops at the **first** null that reaches the observed MI (the pair
/// can no longer become an edge), and is skipped entirely when the
/// observed MI does not clear `threshold` (a pair below the global
/// threshold is rejected regardless of its nulls).
///
/// This is the adaptive optimization DESIGN.md §7 lists: it changes *no
/// decision* relative to the exact test with the same threshold, only the
/// amount of work — the expected null evaluations per null pair is ≈ 2
/// instead of `q`. It does not feed a pooled-null accumulator (it never
/// sees most nulls), so the caller must obtain the global threshold
/// elsewhere (fixed, or estimated from a sampled pre-pass).
pub fn mi_with_nulls_early_exit(
    kernel: MiKernel,
    x: &PreparedGene,
    y: &PreparedGene,
    y_dense: Option<&DenseWeights>,
    perms: &[Vec<u32>],
    threshold: f64,
    scratch: &mut MiScratch,
) -> EarlyExitMi {
    // Observed MI first.
    let observed = match kernel {
        MiKernel::ScalarSparse => sparse_kernel::mi(
            &x.sparse,
            &y.sparse,
            x.h_marginal,
            y.h_marginal,
            &mut scratch.scalar_grid,
        ),
        MiKernel::VectorDense => {
            let yd = y_dense.expect("vector kernel requires the dense expansion of y");
            let grid = scratch.vector_grid_for(yd);
            vector_kernel::mi(&x.sparse, yd, x.h_marginal, y.h_marginal, grid)
        }
    };
    let mut joints = 1u32;
    if observed <= threshold {
        return EarlyExitMi {
            observed,
            survived: false,
            joints_evaluated: joints,
        };
    }
    for p in perms {
        let null = match kernel {
            MiKernel::ScalarSparse => sparse_kernel::mi_permuted(
                &x.sparse,
                &y.sparse,
                p,
                x.h_marginal,
                y.h_marginal,
                &mut scratch.scalar_grid,
            ),
            MiKernel::VectorDense => {
                let yd = y_dense.expect("vector kernel requires the dense expansion of y");
                let grid = scratch.vector_grid_for(yd);
                vector_kernel::mi_permuted(&x.sparse, yd, p, x.h_marginal, y.h_marginal, grid)
            }
        };
        joints += 1;
        if null >= observed {
            return EarlyExitMi {
                observed,
                survived: false,
                joints_evaluated: joints,
            };
        }
    }
    EarlyExitMi {
        observed,
        survived: true,
        joints_evaluated: joints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_expr::synth;

    fn basis() -> BsplineBasis {
        BsplineBasis::tinge_default()
    }

    fn prepared_pair(seed: u64, m: usize) -> (PreparedGene, PreparedGene) {
        let matrix = synth::independent_gaussian(2, m, seed);
        let b = basis();
        (
            prepare_gene(matrix.gene(0), &b),
            prepare_gene(matrix.gene(1), &b),
        )
    }

    #[test]
    fn prepare_matrix_prepares_every_gene() {
        let m = synth::independent_uniform(5, 40, 1);
        let prepared = prepare_matrix(&m, &basis());
        assert_eq!(prepared.len(), 5);
        for p in &prepared {
            assert_eq!(p.samples(), 40);
            assert!(p.h_marginal > 0.0);
        }
    }

    #[test]
    fn kernels_agree_through_dispatch_layer() {
        let (x, y) = prepared_pair(3, 128);
        let mut scratch = MiScratch::for_basis(&basis());
        let s = mi_scalar(&x, &y, &mut scratch);
        let yd = y.to_dense();
        let v = mi_vector(&x, &y, &yd, &mut scratch);
        assert!((s - v).abs() < 1e-4, "scalar {s} vector {v}");
    }

    #[test]
    fn mi_with_nulls_batches_consistently() {
        let (x, y) = prepared_pair(8, 101);
        let m = 101u32;
        let perms: Vec<Vec<u32>> = (1..4)
            .map(|mult| (0..m).map(|i| (i * (2 * mult + 1)) % m).collect())
            .collect();
        let mut scratch = MiScratch::for_basis(&basis());

        let yd = y.to_dense();
        let scalar = mi_with_nulls(MiKernel::ScalarSparse, &x, &y, None, &perms, &mut scratch);
        let vector = mi_with_nulls(
            MiKernel::VectorDense,
            &x,
            &y,
            Some(&yd),
            &perms,
            &mut scratch,
        );

        assert_eq!(scalar.null.len(), 3);
        assert!((scalar.observed - vector.observed).abs() < 1e-4);
        for (a, b) in scalar.null.iter().zip(&vector.null) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn exceed_count_counts_ties_conservatively() {
        let pair = PairMi {
            observed: 0.5,
            null: vec![0.1, 0.5, 0.9, 0.4],
        };
        // Ties count as exceedances (conservative test).
        assert_eq!(pair.exceed_count(), 2);
    }

    #[test]
    #[should_panic(expected = "requires the dense expansion")]
    fn vector_kernel_without_dense_panics() {
        let (x, y) = prepared_pair(4, 32);
        let mut scratch = MiScratch::for_basis(&basis());
        let _ = mi_with_nulls(MiKernel::VectorDense, &x, &y, None, &[], &mut scratch);
    }

    #[test]
    fn coupled_genes_beat_their_null() {
        let (matrix, truth) =
            synth::coupled_pairs(1, 600, gnet_expr::synth::Coupling::Linear(0.95), 17);
        let b = basis();
        let x = prepare_gene(matrix.gene(truth[0].0 as usize), &b);
        let y = prepare_gene(matrix.gene(truth[0].1 as usize), &b);
        let m = 600u32;
        let perms: Vec<Vec<u32>> = (0..20)
            .map(|r| (0..m).map(|i| (i * 7 + r * 13 + 1) % m).collect())
            .collect();
        let mut scratch = MiScratch::for_basis(&b);
        let yd = y.to_dense();
        let res = mi_with_nulls(
            MiKernel::VectorDense,
            &x,
            &y,
            Some(&yd),
            &perms,
            &mut scratch,
        );
        assert_eq!(
            res.exceed_count(),
            0,
            "no null should beat a 0.95-coupled pair"
        );
        assert!(res.observed > 0.3);
    }

    #[test]
    fn early_exit_agrees_with_exact_test() {
        let (matrix, _) = synth::coupled_pairs(6, 250, gnet_expr::synth::Coupling::Linear(0.7), 23);
        let b = basis();
        let prepared: Vec<_> = (0..matrix.genes())
            .map(|g| prepare_gene(matrix.gene(g), &b))
            .collect();
        let m = matrix.samples() as u32;
        let perms: Vec<Vec<u32>> = (0..12)
            .map(|r| (0..m).map(|i| (i * 7 + r * 11 + 3) % m).collect())
            .collect();
        let mut scratch = MiScratch::for_basis(&b);
        let threshold = 0.05;

        let mut exact_joints = 0u64;
        let mut early_joints = 0u64;
        for i in 0..matrix.genes() {
            for j in i + 1..matrix.genes() {
                let yd = prepared[j].to_dense();
                let exact = mi_with_nulls(
                    MiKernel::VectorDense,
                    &prepared[i],
                    &prepared[j],
                    Some(&yd),
                    &perms,
                    &mut scratch,
                );
                let exact_keeps = exact.observed > threshold && exact.exceed_count() == 0;
                exact_joints += 1 + perms.len() as u64;

                let early = mi_with_nulls_early_exit(
                    MiKernel::VectorDense,
                    &prepared[i],
                    &prepared[j],
                    Some(&yd),
                    &perms,
                    threshold,
                    &mut scratch,
                );
                early_joints += early.joints_evaluated as u64;
                assert_eq!(
                    early.survived, exact_keeps,
                    "pair ({i},{j}): early-exit decision diverged"
                );
                assert!((early.observed - exact.observed).abs() < 1e-9);
            }
        }
        assert!(
            early_joints * 2 < exact_joints,
            "early exit must at least halve the joint evaluations: {early_joints} vs {exact_joints}"
        );
    }

    #[test]
    fn early_exit_skips_nulls_below_threshold() {
        let (x, y) = prepared_pair(40, 64);
        let mut scratch = MiScratch::for_basis(&basis());
        let perms: Vec<Vec<u32>> = vec![(0..64u32).rev().collect(); 10];
        let yd = y.to_dense();
        let res = mi_with_nulls_early_exit(
            MiKernel::VectorDense,
            &x,
            &y,
            Some(&yd),
            &perms,
            f64::INFINITY,
            &mut scratch,
        );
        assert!(!res.survived);
        assert_eq!(
            res.joints_evaluated, 1,
            "below-threshold pair must not touch nulls"
        );
    }

    #[test]
    fn scratch_adapts_to_different_layouts() {
        let b10 = BsplineBasis::tinge_default();
        // Order 1 so the I(X,X) = H(X) identity is exact (hard histogram).
        let b20 = BsplineBasis::new(1, 20);
        let g = synth::independent_uniform(1, 50, 5);
        let x10 = prepare_gene(g.gene(0), &b10);
        let x20 = prepare_gene(g.gene(0), &b20);
        let mut scratch = MiScratch::for_basis(&b10);
        let d10 = x10.to_dense();
        let _ = mi_vector(&x10, &x10, &d10, &mut scratch);
        // Switching to a wider layout must transparently reallocate.
        let d20 = x20.to_dense();
        let v = vector_kernel::mi(
            &x20.sparse,
            &d20,
            x20.h_marginal,
            x20.h_marginal,
            scratch.vector_grid_for(&d20),
        );
        assert!((v - x20.h_marginal).abs() < 1e-3, "I(X,X)=H(X)");
    }
}
