//! Deliberately broken vector-kernel variants for conformance self-checks.
//!
//! A differential oracle is only trustworthy if it demonstrably *fails*
//! when the kernel is wrong. This module packages the three historical
//! vectorization bug classes the paper's restructuring is most exposed to,
//! each as a drop-in replacement for [`crate::gene::mi_vector`]:
//!
//! * [`KernelMutation::DroppedPaddingZeroing`] — the dense expansion's
//!   lane-padding columns are *not* zeroed (modeling an uninitialized
//!   allocation). The row FMAs then sweep junk into the joint grid's
//!   padding cells, and the entropy over the padded slice is wrong.
//! * [`KernelMutation::OffByOneBinIndex`] — every sample's weight window
//!   scatters one grid row too high (clamped at the top edge), the classic
//!   first-bin indexing slip when translating the scalar scatter into row
//!   arithmetic.
//! * [`KernelMutation::StaleGridScratch`] — the per-pair joint-grid
//!   scratch is not cleared between pairs, so every pair after the first
//!   accumulates on top of its predecessor's counts.
//!
//! None of these variants is reachable from the pipeline; the only caller
//! is `gnet-conformance --self-check`, which asserts that each mutation is
//! detected by the scalar-vs-vector differential oracle.

use crate::entropy::entropy_from_counts;
use crate::gene::PreparedGene;
use gnet_bspline::DenseWeights;

/// The injectable kernel defects, in the order the self-check runs them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMutation {
    /// Dense lane-padding columns keep junk instead of zeros.
    DroppedPaddingZeroing,
    /// Weight windows land one grid row too high.
    OffByOneBinIndex,
    /// Joint-grid scratch is reused across pairs without a reset.
    StaleGridScratch,
}

impl KernelMutation {
    /// Every mutation, in self-check order.
    pub const ALL: [KernelMutation; 3] = [
        Self::DroppedPaddingZeroing,
        Self::OffByOneBinIndex,
        Self::StaleGridScratch,
    ];

    /// Short stable name used in conformance reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::DroppedPaddingZeroing => "dropped-padding-zeroing",
            Self::OffByOneBinIndex => "off-by-one-bin-index",
            Self::StaleGridScratch => "stale-grid-scratch",
        }
    }
}

/// A stateful evaluator that computes vector-kernel MI *with* one injected
/// defect. State (the never-cleared grid of [`KernelMutation::StaleGridScratch`])
/// persists across calls, exactly like the scratch reuse it models.
#[derive(Clone, Debug)]
pub struct MutatedVectorKernel {
    mutation: KernelMutation,
    /// `bins × stride` joint grid; deliberately NOT reset per pair when the
    /// mutation is `StaleGridScratch`.
    grid: Vec<f32>,
    bins: usize,
    stride: usize,
}

impl MutatedVectorKernel {
    /// An evaluator injecting `mutation`.
    pub fn new(mutation: KernelMutation) -> Self {
        Self {
            mutation,
            grid: Vec::new(),
            bins: 0,
            stride: 0,
        }
    }

    /// Which mutation this evaluator injects.
    pub fn mutation(&self) -> KernelMutation {
        self.mutation
    }

    fn ensure_grid(&mut self, bins: usize, stride: usize) {
        if self.bins != bins || self.stride != stride {
            self.bins = bins;
            self.stride = stride;
            self.grid = vec![0.0; bins * stride];
        } else if self.mutation != KernelMutation::StaleGridScratch {
            // The correct reset the stale-scratch mutation omits.
            self.grid.fill(0.0);
        }
    }

    /// MI (nats) of a prepared pair through the mutated vector kernel.
    /// Mirrors [`crate::gene::mi_vector`]'s general row-FMA loop, with the
    /// defect injected.
    ///
    /// # Panics
    /// Panics on shape disagreements between `x` and `y_dense`.
    pub fn mi(&mut self, x: &PreparedGene, y: &PreparedGene, y_dense: &DenseWeights) -> f64 {
        let sx = &x.sparse;
        assert_eq!(sx.samples(), y_dense.samples(), "sample count mismatch");
        assert_eq!(sx.bins(), y_dense.bins(), "bin count mismatch");
        let bins = y_dense.bins();
        let stride = y_dense.stride();
        let k = sx.order();
        self.ensure_grid(bins, stride);

        // A poisoned copy of y's dense rows: what the expansion would hold
        // if the padding columns were never zeroed.
        let poisoned = if self.mutation == KernelMutation::DroppedPaddingZeroing {
            let mut p = y_dense.clone();
            for s in 0..p.samples() {
                let row = p.row_mut(s);
                for v in &mut row[bins..] {
                    *v = 0.25;
                }
            }
            Some(p)
        } else {
            None
        };
        let y_rows = poisoned.as_ref().unwrap_or(y_dense);

        for s in 0..sx.samples() {
            let fx = match self.mutation {
                // One row too high, clamped so the write stays in bounds —
                // the bug corrupts values, not memory.
                KernelMutation::OffByOneBinIndex => (sx.first_bin(s) + 1).min(bins - k),
                _ => sx.first_bin(s),
            };
            let wx = sx.sample_weights(s);
            let y_row = y_rows.row(s);
            for (i, &wxi) in wx.iter().enumerate() {
                let row = &mut self.grid[(fx + i) * stride..(fx + i + 1) * stride];
                for (cell, &yv) in row.iter_mut().zip(y_row) {
                    *cell += wxi * yv;
                }
            }
        }
        // cast-ok: sample counts are far below f64's 2^53 exact-integer range
        let hxy = entropy_from_counts(&self.grid, sx.samples() as f64);
        x.h_marginal + y.h_marginal - hxy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gene::{mi_vector, prepare_gene, MiScratch};
    use gnet_bspline::BsplineBasis;
    use gnet_expr::synth;

    fn prepared_pair(seed: u64, m: usize) -> (PreparedGene, PreparedGene) {
        let matrix = synth::independent_gaussian(2, m, seed);
        let b = BsplineBasis::tinge_default();
        (
            prepare_gene(matrix.gene(0), &b),
            prepare_gene(matrix.gene(1), &b),
        )
    }

    #[test]
    fn every_mutation_diverges_from_the_true_kernel() {
        let (x, y) = prepared_pair(11, 120);
        let yd = y.to_dense();
        let mut scratch = MiScratch::for_basis(&BsplineBasis::tinge_default());
        let truth = mi_vector(&x, &y, &yd, &mut scratch);
        for mutation in KernelMutation::ALL {
            let mut mutant = MutatedVectorKernel::new(mutation);
            // Stale scratch is only observable from the second pair on.
            let first = mutant.mi(&x, &y, &yd);
            let second = mutant.mi(&x, &y, &yd);
            let worst = (first - truth).abs().max((second - truth).abs());
            assert!(
                worst > 1e-3,
                "{}: mutated MI {first}/{second} vs true {truth} — not detectable",
                mutation.name()
            );
        }
    }

    #[test]
    fn unmutated_loop_matches_the_real_kernel() {
        // The mutated evaluator's baseline loop (defect aside) must be the
        // real general row loop — otherwise a detection could be an
        // artifact of the reimplementation rather than the defect.
        let (x, y) = prepared_pair(5, 77);
        let yd = y.to_dense();
        let mut scratch = MiScratch::for_basis(&BsplineBasis::tinge_default());
        let truth = mi_vector(&x, &y, &yd, &mut scratch);
        // DroppedPaddingZeroing with an already-zero padding poison would
        // be the identity; instead verify via a fresh StaleGridScratch
        // evaluator, whose FIRST call has a clean grid and no defect.
        let mut mutant = MutatedVectorKernel::new(KernelMutation::StaleGridScratch);
        let first = mutant.mi(&x, &y, &yd);
        assert!(
            (first - truth).abs() < 1e-6,
            "baseline loop diverges: {first} vs {truth}"
        );
    }
}
