//! Kraskov–Stögbauer–Grassberger (KSG) k-nearest-neighbour MI estimator.
//!
//! An independent estimator family used to cross-validate the B-spline
//! plug-in estimator: instead of binning, KSG (algorithm 1 of Kraskov et
//! al., Phys. Rev. E 2004) estimates MI from nearest-neighbour statistics
//!
//! ```text
//! I(X,Y) ≈ ψ(k) + ψ(m) − ⟨ψ(n_x + 1) + ψ(n_y + 1)⟩
//! ```
//!
//! where `ε_i` is each sample's distance (max-norm in the joint space) to
//! its `k`-th neighbour and `n_x(i)`, `n_y(i)` count marginal neighbours
//! strictly within `ε_i`. It is nearly unbiased for smooth densities,
//! which makes it the right instrument for checking the spline
//! estimator's known low bias — at `O(m²)` cost per pair, which is why it
//! is an analysis tool here and not a pipeline kernel.
//!
//! KSG assumes continuous data (no ties); a deterministic sub-resolution
//! jitter is applied to break the exact ties that microarray quantization
//! and rank transforms produce.

/// Digamma function ψ(x) for x > 0: upward recurrence onto x ≥ 12, then
/// the asymptotic series. Absolute error < 1e-10 on the domain used.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma domain is x > 0, got {x}");
    let mut acc = 0.0;
    while x < 12.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// KSG algorithm-1 estimator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsgEstimator {
    /// Neighbour order `k` (3–5 is customary).
    pub k: usize,
    /// Sub-resolution jitter amplitude for tie-breaking (scaled by each
    /// profile's value range). 1e-6 is ample for f32 expression data.
    pub jitter: f64,
}

impl Default for KsgEstimator {
    fn default() -> Self {
        Self { k: 4, jitter: 1e-6 }
    }
}

impl KsgEstimator {
    /// Estimate `I(X, Y)` in nats. `O(m²)` time, `O(m)` space.
    ///
    /// # Panics
    /// Panics unless `x.len() == y.len()` and `len > k + 1`.
    pub fn mi(&self, x: &[f32], y: &[f32]) -> f64 {
        assert_eq!(x.len(), y.len(), "ksg: length mismatch");
        let m = x.len();
        assert!(
            m > self.k + 1,
            "ksg needs more than k+1 = {} samples",
            self.k + 1
        );

        // Deterministic tie-breaking jitter derived from the index.
        let spread = |v: &[f32]| -> f64 {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &e in v {
                lo = lo.min(e as f64);
                hi = hi.max(e as f64);
            }
            (hi - lo).max(1e-12)
        };
        let jx = spread(x) * self.jitter;
        let jy = spread(y) * self.jitter;
        let hash = |i: usize, salt: u64| -> f64 {
            let mut z = (i as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 33;
            z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            z ^= z >> 33;
            (z as f64 / u64::MAX as f64) - 0.5
        };
        let xs: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v as f64 + jx * hash(i, 1))
            .collect();
        let ys: Vec<f64> = y
            .iter()
            .enumerate()
            .map(|(i, &v)| v as f64 + jy * hash(i, 2))
            .collect();

        let mut psi_nx = 0.0;
        let mut psi_ny = 0.0;
        let mut dist = vec![0.0f64; m];
        for i in 0..m {
            // Max-norm joint distances to every other point.
            for (j, d) in dist.iter_mut().enumerate() {
                *d = if i == j {
                    f64::INFINITY
                } else {
                    (xs[i] - xs[j]).abs().max((ys[i] - ys[j]).abs())
                };
            }
            // ε_i = distance to the k-th nearest neighbour.
            let eps = kth_smallest(&mut dist.clone(), self.k - 1);

            let mut nx = 0usize;
            let mut ny = 0usize;
            for j in 0..m {
                if j == i {
                    continue;
                }
                if (xs[i] - xs[j]).abs() < eps {
                    nx += 1;
                }
                if (ys[i] - ys[j]).abs() < eps {
                    ny += 1;
                }
            }
            psi_nx += digamma((nx + 1) as f64);
            psi_ny += digamma((ny + 1) as f64);
        }

        (digamma(self.k as f64) + digamma(m as f64) - (psi_nx + psi_ny) / m as f64).max(0.0)
    }
}

/// k-th smallest element (0-indexed) via quickselect.
fn kth_smallest(data: &mut [f64], k: usize) -> f64 {
    let (mut lo, mut hi) = (0usize, data.len() - 1);
    loop {
        if lo == hi {
            return data[lo];
        }
        // Median-of-three pivot.
        let mid = lo + (hi - lo) / 2;
        if data[mid] < data[lo] {
            data.swap(mid, lo);
        }
        if data[hi] < data[lo] {
            data.swap(hi, lo);
        }
        if data[hi] < data[mid] {
            data.swap(hi, mid);
        }
        let pivot = data[mid];
        let (mut i, mut j) = (lo, hi);
        while i <= j {
            while data[i] < pivot {
                i += 1;
            }
            while data[j] > pivot {
                j -= 1;
            }
            if i <= j {
                data.swap(i, j);
                i += 1;
                if j == 0 {
                    break;
                }
                j -= 1;
            }
        }
        if k <= j {
            hi = j;
        } else if k >= i {
            lo = i;
        } else {
            return data[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn normal(rng: &mut StdRng) -> f32 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    fn gaussian_pair(rho: f32, m: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(m);
        let mut y = Vec::with_capacity(m);
        for _ in 0..m {
            let a = normal(&mut rng);
            let e = normal(&mut rng);
            x.push(a);
            y.push(rho * a + (1.0 - rho * rho).sqrt() * e);
        }
        (x, y)
    }

    #[test]
    fn digamma_known_values() {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + EULER_GAMMA).abs() < 1e-10);
        assert!((digamma(2.0) - (1.0 - EULER_GAMMA)).abs() < 1e-10);
        assert!((digamma(0.5) + 2.0 * std::f64::consts::LN_2 + EULER_GAMMA).abs() < 1e-9);
        // Recurrence ψ(x+1) = ψ(x) + 1/x.
        for x in [0.3, 1.7, 4.2, 11.0] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-9,
                "x={x}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn digamma_rejects_nonpositive() {
        let _ = digamma(0.0);
    }

    #[test]
    fn kth_smallest_matches_sort() {
        let data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0];
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        for (k, &expected) in sorted.iter().enumerate() {
            let mut work = data.to_vec();
            assert_eq!(kth_smallest(&mut work, k), expected, "k={k}");
        }
    }

    #[test]
    fn ksg_matches_gaussian_closed_form() {
        let est = KsgEstimator::default();
        for rho in [0.5f32, 0.9] {
            let (x, y) = gaussian_pair(rho, 1500, 7);
            let exact = -0.5 * (1.0 - (rho as f64).powi(2)).ln();
            let got = est.mi(&x, &y);
            assert!(
                (got - exact).abs() < 0.08,
                "ρ={rho}: KSG {got:.3} vs exact {exact:.3}"
            );
        }
    }

    #[test]
    fn ksg_tracks_the_gaussian_closed_form_across_the_correlation_range() {
        // Accuracy sweep against the closed form I = −½·ln(1−ρ²), from
        // independence to strong coupling, at two disjoint seeds each.
        //
        // Tolerance: 0.05 nats at m = 2000, k = 4. The KSG-1 systematic
        // error is O(k/m) ≈ 0.002 nats — negligible here — so the budget
        // is statistical: the estimator's sampling standard deviation on
        // bivariate Gaussians is ≈ √(c/m) with c ≲ 1 for ρ ≤ 0.8, i.e.
        // σ ≲ 0.022 nats. 0.05 is a > 2σ band per draw, and with eight
        // independent (ρ, seed) draws the chance of a spurious trip stays
        // below a few percent while a bias of even 0.1 nats (one bin's
        // worth of leakage, say) fails deterministically.
        let est = KsgEstimator::default();
        let m = 2000;
        for rho in [0.0f32, 0.3, 0.6, 0.8] {
            let exact = -0.5 * (1.0 - (rho as f64).powi(2)).ln();
            for seed in [101u64, 202] {
                let (x, y) = gaussian_pair(rho, m, seed);
                let got = est.mi(&x, &y);
                assert!(
                    (got - exact).abs() < 0.05,
                    "ρ={rho} seed={seed}: KSG {got:.4} vs closed form {exact:.4}"
                );
            }
        }
    }

    #[test]
    fn ksg_near_zero_on_independent_data() {
        let est = KsgEstimator::default();
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f32> = (0..1200).map(|_| normal(&mut rng)).collect();
        let y: Vec<f32> = (0..1200).map(|_| normal(&mut rng)).collect();
        let got = est.mi(&x, &y);
        assert!(got < 0.05, "independent KSG MI {got}");
    }

    #[test]
    fn ksg_is_less_biased_than_the_spline_estimator() {
        // The property KSG exists to check: at ρ = 0.9 the order-3 spline
        // plug-in underestimates (≈ 0.63 vs 0.83); KSG should land closer.
        use crate::entropy::entropy_nats;
        use crate::sparse_kernel;
        use gnet_bspline::{BsplineBasis, SparseWeights};
        use gnet_expr::normalize::rank_transform_profile;

        let (x, y) = gaussian_pair(0.9, 1500, 11);
        let exact = -0.5f64 * (1.0 - 0.81f64).ln();

        let ksg = KsgEstimator::default().mi(&x, &y);

        let basis = BsplineBasis::tinge_default();
        let sx = SparseWeights::from_normalized(&rank_transform_profile(&x), &basis);
        let sy = SparseWeights::from_normalized(&rank_transform_profile(&y), &basis);
        let hx = entropy_nats(&sx.marginal());
        let hy = entropy_nats(&sy.marginal());
        let mut grid = vec![0.0; 100];
        let spline = sparse_kernel::mi(&sx, &sy, hx, hy, &mut grid);

        assert!(
            (ksg - exact).abs() < (spline - exact).abs(),
            "KSG ({ksg:.3}) should beat the spline plug-in ({spline:.3}) against {exact:.3}"
        );
    }

    #[test]
    fn ksg_handles_heavily_tied_data() {
        // Quantized (tied) inputs exercise the jitter path.
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<f32> = (0..600)
            .map(|_| (normal(&mut rng) * 2.0).round() / 2.0)
            .collect();
        let y: Vec<f32> = x
            .iter()
            .map(|&v| v + (normal(&mut rng) * 2.0).round() * 0.05)
            .collect();
        let got = KsgEstimator::default().mi(&x, &y);
        assert!(got.is_finite() && got > 0.5, "tied-data MI {got}");
    }

    #[test]
    fn ksg_symmetry() {
        let (x, y) = gaussian_pair(0.7, 400, 9);
        let est = KsgEstimator::default();
        let a = est.mi(&x, &y);
        let b = est.mi(&y, &x);
        assert!((a - b).abs() < 0.02, "I(X,Y)={a} vs I(Y,X)={b}");
    }

    #[test]
    #[should_panic(expected = "more than k+1")]
    fn tiny_sample_rejected() {
        let est = KsgEstimator::default();
        let _ = est.mi(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
    }
}
