//! Equal-width histogram MI estimator (the classical baseline).
//!
//! Each normalized sample is assigned to exactly one of `b` bins; marginal
//! and joint distributions are plain frequency tables. Equivalent to the
//! B-spline estimator at order 1 (asserted by a cross-crate test), but kept
//! as an independent implementation so the equivalence test is meaningful.

use crate::entropy::entropy_from_counts;

/// Equal-width histogram estimator over `[0, 1]`-normalized profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramEstimator {
    bins: usize,
}

impl HistogramEstimator {
    /// Create an estimator with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins < 2`.
    pub fn new(bins: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        Self { bins }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Bin index of a normalized value (clamped into range).
    // Truncation toward zero IS the binning operation; the clamp bounds the
    // product to [0, bins] beforehand.
    #[allow(clippy::cast_possible_truncation)]
    #[inline(always)]
    pub fn bin_of(&self, x: f32) -> usize {
        let idx = (x.clamp(0.0, 1.0) * self.bins as f32) as usize;
        idx.min(self.bins - 1)
    }

    /// Marginal entropy (nats) of one normalized profile.
    pub fn entropy(&self, x: &[f32]) -> f64 {
        assert!(!x.is_empty(), "empty profile");
        let mut counts = vec![0.0f32; self.bins];
        for &v in x {
            counts[self.bin_of(v)] += 1.0;
        }
        entropy_from_counts(&counts, x.len() as f64)
    }

    /// Mutual information (nats) of two equal-length normalized profiles.
    ///
    /// # Panics
    /// Panics if the profiles differ in length or are empty.
    pub fn mi(&self, x: &[f32], y: &[f32]) -> f64 {
        assert_eq!(x.len(), y.len(), "mi: length mismatch");
        assert!(!x.is_empty(), "mi: empty profiles");
        let b = self.bins;
        let mut joint = vec![0.0f32; b * b];
        let mut px = vec![0.0f32; b];
        let mut py = vec![0.0f32; b];
        for i in 0..x.len() {
            let u = self.bin_of(x[i]);
            let v = self.bin_of(y[i]);
            joint[u * b + v] += 1.0;
            px[u] += 1.0;
            py[v] += 1.0;
        }
        let m = x.len() as f64;
        let hx = entropy_from_counts(&px, m);
        let hy = entropy_from_counts(&py, m);
        let hxy = entropy_from_counts(&joint, m);
        hx + hy - hxy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_expr::normalize::rank_transform_profile;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn one_bin_rejected() {
        let _ = HistogramEstimator::new(1);
    }

    #[test]
    fn bin_assignment_boundaries() {
        let h = HistogramEstimator::new(4);
        assert_eq!(h.bin_of(0.0), 0);
        assert_eq!(h.bin_of(0.24), 0);
        assert_eq!(h.bin_of(0.25), 1);
        assert_eq!(h.bin_of(0.999), 3);
        assert_eq!(h.bin_of(1.0), 3, "right edge belongs to the last bin");
        assert_eq!(h.bin_of(-5.0), 0);
        assert_eq!(h.bin_of(7.0), 3);
    }

    #[test]
    fn entropy_of_uniform_grid_is_log_bins() {
        let h = HistogramEstimator::new(8);
        // 800 evenly spread points → exactly 100 per bin.
        let x: Vec<f32> = (0..800).map(|i| (i as f32 + 0.5) / 800.0).collect();
        assert!((h.entropy(&x) - 8.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn self_mi_equals_marginal_entropy() {
        let h = HistogramEstimator::new(10);
        let x: Vec<f32> = (0..500).map(|i| ((i * 37) % 500) as f32 / 499.0).collect();
        let hx = h.entropy(&x);
        let mi = h.mi(&x, &x);
        assert!((mi - hx).abs() < 1e-9, "I(X,X)={mi} should equal H(X)={hx}");
    }

    #[test]
    fn independent_profiles_have_small_mi() {
        let mut rng = StdRng::seed_from_u64(99);
        let m = 5000;
        let x: Vec<f32> = (0..m).map(|_| rng.gen()).collect();
        let y: Vec<f32> = (0..m).map(|_| rng.gen()).collect();
        let h = HistogramEstimator::new(10);
        let mi = h.mi(&x, &y);
        // Plug-in bias is ≈ (b−1)²/(2m) ≈ 0.008 nats here.
        assert!(mi < 0.03, "independent MI should be near zero, got {mi}");
        assert!(mi >= 0.0, "plug-in MI is non-negative");
    }

    #[test]
    fn mi_detects_rank_coupled_profiles() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = 2000;
        let raw: Vec<f32> = (0..m).map(|_| rng.gen::<f32>()).collect();
        let noisy: Vec<f32> = raw.iter().map(|&v| v + 0.05 * rng.gen::<f32>()).collect();
        let x = rank_transform_profile(&raw);
        let y = rank_transform_profile(&noisy);
        let h = HistogramEstimator::new(10);
        let coupled = h.mi(&x, &y);
        let shuffled: Vec<f32> = y.iter().rev().cloned().collect();
        let null = h.mi(&x, &shuffled);
        assert!(
            coupled > 1.0,
            "tight coupling should carry > 1 nat, got {coupled}"
        );
        assert!(
            coupled > 10.0 * null.max(1e-3),
            "coupled {coupled} vs null {null}"
        );
    }

    #[test]
    fn mi_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(21);
        let x: Vec<f32> = (0..300).map(|_| rng.gen()).collect();
        let y: Vec<f32> = (0..300).map(|_| rng.gen()).collect();
        let h = HistogramEstimator::new(6);
        // mi(y, x) walks the transposed joint table, so xlogx_sum adds the
        // same f32 terms in a different order; the mismatch is bounded by
        // f32 rounding of the joint sum, not f64 precision.
        assert!((h.mi(&x, &y) - h.mi(&y, &x)).abs() < 1e-6);
    }
}
