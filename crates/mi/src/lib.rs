//! Mutual-information estimation kernels.
//!
//! This crate implements the computational core of the reproduction: the
//! B-spline mutual-information estimator of Daub et al. in the two forms
//! the IPDPS 2014 paper contrasts, plus the naive histogram baseline.
//!
//! * [`sparse_kernel`] — the **scalar** form. Each sample scatters a
//!   `k × k` block of weight products into the joint grid. Minimal flops
//!   (`m·k²`) but the scattered, data-dependent addressing defeats vector
//!   units; this is the paper's "vectorization disabled" baseline.
//! * [`vector_kernel`] — the **vectorized** form. Gene *y*'s weights are
//!   expanded to dense zero-padded rows; each sample then issues `k`
//!   contiguous row-wide FMAs (`grid[bx+i] += wx_i · y_row`). More flops
//!   (`m·k·b_padded`) but a branch-free unit-stride FMA stream — exactly
//!   the restructuring that lets the Phi's 512-bit unit (and any modern
//!   SIMD unit, via auto-vectorization of `gnet-simd` lanes) run at rate.
//! * [`histogram`] — classic equal-width-bin plug-in estimator, kept as the
//!   estimator-quality baseline.
//!
//! Both B-spline kernels accept a sample permutation of gene *y*, which is
//! how the permutation-testing null reuses the per-gene weight matrices
//! without recomputing splines (the marginal — and hence `H(y)` — is
//! permutation invariant, so only the joint entropy is recomputed).
//!
//! All entropies are in **nats**; convert with [`entropy::nats_to_bits`].

// cast-ok (crate-wide): weights and expression values are f32 and sample
// indices u32 by design; entropies accumulate in f64 and narrow only where
// the f32 storage layout requires it. The `kernel-cast` lint in
// `gnet-analysis` still audits every `as` cast in the kernel files.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod entropy;
pub mod gene;
pub mod histogram;
pub mod ksg;
pub mod mutation;
pub mod sparse_kernel;
pub mod vector_kernel;

pub use entropy::{entropy_nats, nats_to_bits};
pub use gene::{
    mi_scalar, mi_vector, mi_with_nulls, mi_with_nulls_early_exit, prepare_gene, prepare_matrix,
    EarlyExitMi, MiKernel, MiScratch, PairMi, PreparedGene,
};
pub use ksg::KsgEstimator;
