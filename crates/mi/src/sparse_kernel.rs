//! Scalar B-spline MI kernel on the sparse weight layout.
//!
//! This is the paper's "vectorization disabled" baseline: per sample, a
//! `k × k` block of weight products is scattered into the joint grid at a
//! data-dependent offset. It performs the *fewest* floating-point
//! operations of any kernel in this crate (`m·k²` multiply-adds), yet loses
//! on wide-vector machines because every store address depends on the
//! sample's bin indices — there is nothing for the vector unit to do.
//! Keeping it separate (and free of any `gnet-simd` lane code) is what
//! makes the R4 vectorization-speedup experiment a fair comparison.

use crate::entropy::entropy_from_counts_scalar;
use gnet_bspline::SparseWeights;

/// Accumulate the unnormalized joint weight grid of `(x, y)` into `grid`
/// (row-major `b × b`, zeroed first). Total accumulated mass equals the
/// sample count because every sample's weights sum to one in each gene.
///
/// # Panics
/// Panics if the genes disagree on sample count, bins, or order, or if
/// `grid.len() != bins²`.
pub fn joint_counts(x: &SparseWeights, y: &SparseWeights, grid: &mut [f32]) {
    check_pair(x, y);
    let b = x.bins();
    assert_eq!(grid.len(), b * b, "grid must be bins² long");
    grid.fill(0.0);
    let k = x.order();
    for s in 0..x.samples() {
        let fx = x.first_bin(s);
        let fy = y.first_bin(s);
        let wx = x.sample_weights(s);
        let wy = y.sample_weights(s);
        for (i, &wxi) in wx.iter().enumerate() {
            let row = (fx + i) * b + fy;
            for j in 0..k {
                grid[row + j] += wxi * wy[j];
            }
        }
    }
}

/// Joint weight grid of `x` against a sample-permuted `y`: sample `s` of
/// `x` is paired with sample `perm[s]` of `y`. This is the gather access
/// pattern the permutation-testing null uses to avoid materializing
/// permuted weight matrices.
///
/// # Panics
/// As [`joint_counts`], plus if `perm.len()` differs from the sample count.
pub fn joint_counts_permuted(x: &SparseWeights, y: &SparseWeights, perm: &[u32], grid: &mut [f32]) {
    check_pair(x, y);
    assert_eq!(perm.len(), x.samples(), "permutation length mismatch");
    let b = x.bins();
    assert_eq!(grid.len(), b * b, "grid must be bins² long");
    grid.fill(0.0);
    let k = x.order();
    for (s, &p) in perm.iter().enumerate() {
        let sy = p as usize; // cast-ok: u32 to usize widens losslessly
        let fx = x.first_bin(s);
        let fy = y.first_bin(sy);
        let wx = x.sample_weights(s);
        let wy = y.sample_weights(sy);
        for (i, &wxi) in wx.iter().enumerate() {
            let row = (fx + i) * b + fy;
            for j in 0..k {
                grid[row + j] += wxi * wy[j];
            }
        }
    }
}

/// Mutual information (nats) of a pair given precomputed marginal
/// entropies. `grid` is caller-provided scratch of length `bins²`.
pub fn mi(x: &SparseWeights, y: &SparseWeights, hx: f64, hy: f64, grid: &mut [f32]) -> f64 {
    joint_counts(x, y, grid);
    // cast-ok: sample counts are far below f64's 2^53 exact-integer range
    let hxy = entropy_from_counts_scalar(grid, x.samples() as f64);
    hx + hy - hxy
}

/// Mutual information (nats) of `x` against permuted `y`. The marginal
/// entropy of `y` is permutation invariant, so the caller passes the same
/// `hy` used for the unpermuted pair.
pub fn mi_permuted(
    x: &SparseWeights,
    y: &SparseWeights,
    perm: &[u32],
    hx: f64,
    hy: f64,
    grid: &mut [f32],
) -> f64 {
    joint_counts_permuted(x, y, perm, grid);
    // cast-ok: sample counts are far below f64's 2^53 exact-integer range
    let hxy = entropy_from_counts_scalar(grid, x.samples() as f64);
    hx + hy - hxy
}

fn check_pair(x: &SparseWeights, y: &SparseWeights) {
    assert_eq!(
        x.samples(),
        y.samples(),
        "genes must share the sample count"
    );
    assert_eq!(x.bins(), y.bins(), "genes must share the bin count");
    assert_eq!(x.order(), y.order(), "genes must share the spline order");
    assert!(x.samples() > 0, "cannot compute MI over zero samples");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::entropy_nats;
    use gnet_bspline::BsplineBasis;
    use gnet_expr::normalize::rank_transform_profile;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep(values: &[f32], basis: &BsplineBasis) -> SparseWeights {
        SparseWeights::from_normalized(&rank_transform_profile(values), basis)
    }

    #[test]
    fn joint_grid_mass_equals_sample_count() {
        let basis = BsplineBasis::tinge_default();
        let x = prep(&[1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0], &basis);
        let y = prep(&[2.0, 1.0, 7.0, 3.0, 5.0, 6.0, 4.0], &basis);
        let mut grid = vec![0.0; 100];
        joint_counts(&x, &y, &mut grid);
        let mass: f32 = grid.iter().sum();
        assert!((mass - 7.0).abs() < 1e-5);
    }

    #[test]
    fn self_mi_equals_marginal_entropy_at_order_one() {
        // At order 1 the B-spline estimator degenerates to the hard
        // histogram, whose joint of (X, X) is diagonal ⇒ I(X,X) = H(X).
        let basis = BsplineBasis::new(1, 10);
        let vals: Vec<f32> = (0..200).map(|i| ((i * 89) % 200) as f32).collect();
        let x = prep(&vals, &basis);
        let hx = entropy_nats(&x.marginal());
        let mut grid = vec![0.0; 100];
        let mi_xx = mi(&x, &x, hx, hx, &mut grid);
        assert!((mi_xx - hx).abs() < 1e-4, "I(X,X)={mi_xx}, H(X)={hx}");
    }

    #[test]
    fn self_mi_bounded_by_marginal_entropy_at_higher_order() {
        // For k > 1 the spline weights spread joint mass off the diagonal,
        // so I(X,X) < H(X) — but it must stay the estimator's maximum and
        // remain a substantial fraction of H(X).
        let basis = BsplineBasis::tinge_default();
        let vals: Vec<f32> = (0..200).map(|i| ((i * 89) % 200) as f32).collect();
        let x = prep(&vals, &basis);
        let hx = entropy_nats(&x.marginal());
        let mut grid = vec![0.0; 100];
        let mi_xx = mi(&x, &x, hx, hx, &mut grid);
        assert!(mi_xx <= hx + 1e-6, "I(X,X)={mi_xx} cannot exceed H(X)={hx}");
        assert!(
            mi_xx > 0.4 * hx,
            "I(X,X)={mi_xx} suspiciously small vs H(X)={hx}"
        );
    }

    #[test]
    fn mi_is_symmetric() {
        let basis = BsplineBasis::tinge_default();
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<f32> = (0..150).map(|_| rng.gen::<f32>()).collect();
        let b: Vec<f32> = (0..150).map(|_| rng.gen::<f32>()).collect();
        let x = prep(&a, &basis);
        let y = prep(&b, &basis);
        let hx = entropy_nats(&x.marginal());
        let hy = entropy_nats(&y.marginal());
        let mut grid = vec![0.0; 100];
        let ixy = mi(&x, &y, hx, hy, &mut grid);
        let iyx = mi(&y, &x, hy, hx, &mut grid);
        assert!((ixy - iyx).abs() < 1e-5);
    }

    #[test]
    fn independent_profiles_have_near_zero_mi() {
        let basis = BsplineBasis::tinge_default();
        let mut rng = StdRng::seed_from_u64(10);
        let a: Vec<f32> = (0..4000).map(|_| rng.gen::<f32>()).collect();
        let b: Vec<f32> = (0..4000).map(|_| rng.gen::<f32>()).collect();
        let x = prep(&a, &basis);
        let y = prep(&b, &basis);
        let hx = entropy_nats(&x.marginal());
        let hy = entropy_nats(&y.marginal());
        let mut grid = vec![0.0; 100];
        let v = mi(&x, &y, hx, hy, &mut grid);
        assert!(v.abs() < 0.02, "independent MI {v}");
        assert!(
            v > -1e-4,
            "plug-in MI must be non-negative up to rounding, got {v}"
        );
    }

    #[test]
    fn linear_coupling_raises_mi_close_to_gaussian_form() {
        // After rank transform a bivariate Gaussian with correlation ρ has
        // MI ≈ −½ln(1−ρ²); the B-spline plug-in estimator should land in
        // the right neighbourhood for large m.
        let rho: f32 = 0.9;
        let mut rng = StdRng::seed_from_u64(77);
        let m = 20_000;
        let mut a = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        for _ in 0..m {
            let x: f32 = {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
            };
            let e: f32 = {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
            };
            a.push(x);
            b.push(rho * x + (1.0 - rho * rho).sqrt() * e);
        }
        let basis = BsplineBasis::tinge_default();
        let x = prep(&a, &basis);
        let y = prep(&b, &basis);
        let hx = entropy_nats(&x.marginal());
        let hy = entropy_nats(&y.marginal());
        let mut grid = vec![0.0; 100];
        let estimate = mi(&x, &y, hx, hy, &mut grid);
        let exact = -0.5 * (1.0 - (rho as f64).powi(2)).ln(); // ≈ 0.830
                                                              // The order-3 spline estimator is a smoother, so it is biased low
                                                              // (Daub et al. report the same); it must land in the right
                                                              // neighbourhood and never above the true value by much.
        assert!(
            estimate > 0.6 * exact && estimate < exact + 0.05,
            "estimate {estimate} vs Gaussian closed form {exact}"
        );
    }

    #[test]
    fn permuted_mi_destroys_coupling() {
        let basis = BsplineBasis::tinge_default();
        let vals: Vec<f32> = (0..1009).map(|i| i as f32).collect();
        let x = prep(&vals, &basis);
        let y = x.clone();
        let hx = entropy_nats(&x.marginal());
        let m = vals.len() as u32;
        // 1009 is prime, so multiplication by 13 is a bijection mod 1009.
        let perm: Vec<u32> = (0..m).map(|i| (i * 13) % m).collect();
        let mut grid = vec![0.0; 100];
        let coupled = mi(&x, &y, hx, hx, &mut grid);
        let null = mi_permuted(&x, &y, &perm, hx, hx, &mut grid);
        assert!(
            coupled > 1.0,
            "identical genes should carry high MI, got {coupled}"
        );
        assert!(null < 0.2, "permutation should destroy it, got {null}");
    }

    #[test]
    fn identity_permutation_reproduces_plain_mi() {
        let basis = BsplineBasis::tinge_default();
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<f32> = (0..64).map(|_| rng.gen::<f32>()).collect();
        let b: Vec<f32> = (0..64).map(|_| rng.gen::<f32>()).collect();
        let x = prep(&a, &basis);
        let y = prep(&b, &basis);
        let hx = entropy_nats(&x.marginal());
        let hy = entropy_nats(&y.marginal());
        let id: Vec<u32> = (0..64).collect();
        let mut grid = vec![0.0; 100];
        let direct = mi(&x, &y, hx, hy, &mut grid);
        let via_perm = mi_permuted(&x, &y, &id, hx, hy, &mut grid);
        assert!((direct - via_perm).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "share the sample count")]
    fn mismatched_samples_panic() {
        let basis = BsplineBasis::tinge_default();
        let x = prep(&[1.0, 2.0, 3.0], &basis);
        let y = prep(&[1.0, 2.0], &basis);
        let mut grid = vec![0.0; 100];
        joint_counts(&x, &y, &mut grid);
    }

    #[test]
    #[should_panic(expected = "grid must be bins")]
    fn wrong_grid_size_panics() {
        let basis = BsplineBasis::tinge_default();
        let x = prep(&[1.0, 2.0, 3.0], &basis);
        let mut grid = vec![0.0; 99];
        joint_counts(&x, &x, &mut grid);
    }
}
