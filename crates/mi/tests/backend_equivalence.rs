//! End-to-end backend equivalence for the MI kernels: the vector kernel
//! forced onto each supported dispatch backend (emulated / AVX2 / AVX-512)
//! must agree with the scalar sparse kernel within the conformance
//! harness's kernel-oracle grade (≤ 2e-4 nats), and the backends must
//! agree with *each other* even more tightly (the only cross-backend
//! difference is `xlogx_sum`'s vectorized `ln`, a few ULP per grid cell).
//!
//! Lives in its own integration-test binary on purpose: forcing a backend
//! swaps a process-global dispatch table, which could perturb unit tests
//! in the library binary that assert exact equality of two dispatched
//! computations.

use gnet_bspline::BsplineBasis;
use gnet_expr::normalize::rank_transform_profile;
use gnet_mi::entropy::entropy_nats;
use gnet_mi::sparse_kernel;
use gnet_mi::vector_kernel::{mi, mi_permuted, VectorGrid};
use gnet_simd::dispatch::{with_forced, Backend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// End-to-end agreement bound between any two backends (nats). Tighter
/// than the 2e-4 scalar-vs-vector oracle: the joint grids are bitwise
/// identical, only the entropy's log differs.
const CROSS_BACKEND_TOL: f64 = 1e-5;

/// Scalar-vs-vector grade, from the conformance kernel oracle.
const SCALAR_ORACLE_TOL: f64 = 2e-4;

fn profiles(seed: u64, m: usize) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<f32> = (0..m).map(|_| rng.gen::<f32>()).collect();
    let b: Vec<f32> = (0..m).map(|_| rng.gen::<f32>()).collect();
    (a, b)
}

fn mi_all_backends(
    seed: u64,
    m: usize,
    order: usize,
    permuted: bool,
) -> (f64, Vec<(Backend, f64)>) {
    let basis = BsplineBasis::new(order, 10);
    let (a, b) = profiles(seed, m);
    let x = gnet_bspline::SparseWeights::from_normalized(&rank_transform_profile(&a), &basis);
    let y = gnet_bspline::SparseWeights::from_normalized(&rank_transform_profile(&b), &basis);
    let hx = entropy_nats(&x.marginal());
    let hy = entropy_nats(&y.marginal());
    let perm: Vec<u32> = (0..u32::try_from(m).expect("m fits u32")).rev().collect();

    let mut sgrid = vec![0.0; 100];
    let scalar = if permuted {
        sparse_kernel::mi_permuted(&x, &y, &perm, hx, hy, &mut sgrid)
    } else {
        sparse_kernel::mi(&x, &y, hx, hy, &mut sgrid)
    };

    let yd = y.to_dense();
    let per_backend = Backend::supported()
        .into_iter()
        .map(|backend| {
            let v = with_forced(backend, || {
                let mut vgrid = VectorGrid::for_dense(&yd);
                if permuted {
                    mi_permuted(&x, &yd, &perm, hx, hy, &mut vgrid)
                } else {
                    mi(&x, &yd, hx, hy, &mut vgrid)
                }
            })
            .expect("supported backend must force cleanly");
            (backend, v)
        })
        .collect();
    (scalar, per_backend)
}

#[test]
fn every_backend_matches_scalar_within_oracle_grade() {
    for (seed, m, order) in [
        (1u64, 100, 3),
        (2, 333, 3),
        (3, 64, 4),
        (4, 17, 1),
        (5, 128, 2),
    ] {
        for permuted in [false, true] {
            let (scalar, per_backend) = mi_all_backends(seed, m, order, permuted);
            for &(backend, v) in &per_backend {
                assert!(
                    (scalar - v).abs() < SCALAR_ORACLE_TOL,
                    "m={m} order={order} permuted={permuted}: scalar {scalar} vs {backend} {v}"
                );
            }
            for w in per_backend.windows(2) {
                assert!(
                    (w[0].1 - w[1].1).abs() < CROSS_BACKEND_TOL,
                    "m={m} order={order} permuted={permuted}: {} {} vs {} {}",
                    w[0].0,
                    w[0].1,
                    w[1].0,
                    w[1].1
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24)
        .with_persistence("proptest-regressions/backend_equivalence.txt"))]

    #[test]
    fn prop_backends_agree_end_to_end(
        seed in 0u64..500,
        m in 2usize..150,
        order in 1usize..=4,
    ) {
        let (scalar, per_backend) = mi_all_backends(seed, m, order, false);
        for &(backend, v) in &per_backend {
            prop_assert!(
                (scalar - v).abs() < SCALAR_ORACLE_TOL,
                "scalar {} vs {} {}", scalar, backend, v
            );
        }
        for w in per_backend.windows(2) {
            prop_assert!(
                (w[0].1 - w[1].1).abs() < CROSS_BACKEND_TOL,
                "{} {} vs {} {}", w[0].0, w[0].1, w[1].0, w[1].1
            );
        }
    }
}
