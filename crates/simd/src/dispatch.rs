//! Runtime backend selection for the slice kernels.
//!
//! The public kernels in [`crate::slice_ops`] route through a table of
//! function pointers chosen **once**, on first use, from what the host CPU
//! actually supports (`is_x86_feature_detected!`): AVX-512F when available,
//! else AVX2+FMA, else the portable emulated lane code. The decision can be
//! overridden for testing and benchmarking:
//!
//! * `GNET_SIMD_FORCE={avx512,avx2,emulated}` — environment override read
//!   at first dispatch. A request the host cannot satisfy (or an
//!   unparseable value) falls back to detection and is recorded as
//!   *not honored* in the [`DispatchReport`], so CI can fail loudly
//!   instead of silently benchmarking the wrong backend.
//! * [`force_backend`] / [`with_forced`] — programmatic override; the
//!   latter is what the conformance harness and the benchmark suite use to
//!   measure every backend in one process.
//!
//! Forcing swaps a process-global table, so [`with_forced`] serializes
//! callers behind a mutex and restores the previous backend on exit (even
//! on panic). Concurrent *kernel* calls during a forced section simply see
//! one coherent table or the other — every table computes correct results,
//! only speed differs (and, for `xlogx_sum`, a few ULP; see the grades in
//! `DESIGN.md` §14).

use core::fmt;
use core::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::slice_ops;

/// One of the selectable slice-kernel implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// 512-bit AVX-512F intrinsics: one register per 16-lane row.
    Avx512,
    /// 256-bit AVX2+FMA intrinsics: two registers per 16-lane row.
    Avx2,
    /// Portable emulated lanes (`F32x16` arrays); always available.
    Emulated,
}

impl Backend {
    /// Every backend, fastest first — iteration order for "run all
    /// supported backends" loops.
    pub const ALL: [Backend; 3] = [Backend::Avx512, Backend::Avx2, Backend::Emulated];

    /// Stable lower-case name, used in env overrides, bench entry names,
    /// and reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx512 => "avx512",
            Backend::Avx2 => "avx2",
            Backend::Emulated => "emulated",
        }
    }

    /// Parse a backend name as used by `GNET_SIMD_FORCE` (case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "avx512" => Some(Backend::Avx512),
            "avx2" => Some(Backend::Avx2),
            "emulated" | "portable" | "scalar" => Some(Backend::Emulated),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Emulated => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// All backends the running CPU supports, fastest first.
    pub fn supported() -> Vec<Backend> {
        Backend::ALL
            .iter()
            .copied()
            .filter(|b| b.is_supported())
            .collect()
    }

    fn id(self) -> u8 {
        match self {
            Backend::Avx512 => 1,
            Backend::Avx2 => 2,
            Backend::Emulated => 3,
        }
    }

    fn from_id(id: u8) -> Option<Backend> {
        match id {
            1 => Some(Backend::Avx512),
            2 => Some(Backend::Avx2),
            3 => Some(Backend::Emulated),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Signature of the dispatched joint-histogram accumulator
/// ([`slice_ops::joint_accumulate_w16`]).
pub type JointFn = fn(&mut [f32], &[u16], &[f32], usize, &[f32], Option<&[u32]>);

/// The function-pointer table one backend exposes. All entries are safe
/// functions: the hardware entries validate their slice arguments before
/// touching raw pointers, exactly like the emulated ones panic on bad
/// shapes.
pub struct KernelTable {
    /// Which backend these pointers belong to.
    pub backend: Backend,
    /// Slice sum.
    pub sum: fn(&[f32]) -> f32,
    /// Dot product.
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// `y += a·x`.
    pub axpy: fn(f32, &[f32], &mut [f32]),
    /// `Σ x ln x` with `0 ln 0 = 0`.
    pub xlogx_sum: fn(&[f32]) -> f32,
    /// In-place scalar multiply.
    pub scale: fn(f32, &mut [f32]),
    /// Dense 16-lane joint-histogram accumulation (the paper's kernel).
    pub joint_accumulate_w16: JointFn,
}

static EMULATED_TABLE: KernelTable = KernelTable {
    backend: Backend::Emulated,
    sum: slice_ops::sum_emulated,
    dot: slice_ops::dot_emulated,
    axpy: slice_ops::axpy_emulated,
    xlogx_sum: slice_ops::xlogx_sum_emulated,
    scale: slice_ops::scale_emulated,
    joint_accumulate_w16: slice_ops::joint_accumulate_w16_emulated,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    backend: Backend::Avx2,
    sum: crate::x86::avx2::sum,
    dot: crate::x86::avx2::dot,
    axpy: crate::x86::avx2::axpy,
    xlogx_sum: crate::x86::avx2::xlogx_sum,
    scale: crate::x86::avx2::scale,
    joint_accumulate_w16: crate::x86::avx2::joint_accumulate_w16,
};

#[cfg(target_arch = "x86_64")]
static AVX512_TABLE: KernelTable = KernelTable {
    backend: Backend::Avx512,
    sum: crate::x86::avx512::sum,
    dot: crate::x86::avx512::dot,
    axpy: crate::x86::avx512::axpy,
    xlogx_sum: crate::x86::avx512::xlogx_sum,
    scale: crate::x86::avx512::scale,
    joint_accumulate_w16: crate::x86::avx512::joint_accumulate_w16,
};

fn table_for(b: Backend) -> &'static KernelTable {
    match b {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => &AVX512_TABLE,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => &AVX2_TABLE,
        _ => &EMULATED_TABLE,
    }
}

/// 0 = not yet initialized; otherwise a `Backend::id`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// What `GNET_SIMD_FORCE` asked for at first dispatch, if anything.
struct EnvRequest {
    raw: Option<String>,
    honored: bool,
}

static ENV_REQUEST: OnceLock<EnvRequest> = OnceLock::new();

/// Highest-performing backend the CPU supports.
fn detect() -> Backend {
    for b in Backend::ALL {
        if b.is_supported() {
            return b;
        }
    }
    Backend::Emulated
}

fn init() -> Backend {
    let detected = detect();
    let raw = std::env::var("GNET_SIMD_FORCE").ok();
    let parsed = raw.as_deref().and_then(Backend::parse);
    let (active, honored) = match (&raw, parsed) {
        (_, Some(b)) if b.is_supported() => (b, true),
        (None, _) => (detected, true),
        // Unsupported or unparseable request: fall back to detection and
        // record the dishonored request for `dispatch_report`.
        _ => (detected, false),
    };
    let _ = ENV_REQUEST.set(EnvRequest { raw, honored });
    // ordering: ACTIVE is a standalone selector — every table it can point
    // at is a `static`, so no other memory must be ordered with the store.
    ACTIVE.store(active.id(), Ordering::Relaxed);
    active
}

fn ensure_init() -> Backend {
    // ordering: racing initializers compute identical values; stale reads
    // of 0 merely re-run the idempotent `init`.
    match Backend::from_id(ACTIVE.load(Ordering::Relaxed)) {
        Some(b) => b,
        None => init(),
    }
}

/// The kernel table currently in effect (initializing dispatch on first
/// call).
pub fn table() -> &'static KernelTable {
    table_for(ensure_init())
}

/// The backend currently in effect (initializing dispatch on first call).
pub fn active_backend() -> Backend {
    ensure_init()
}

/// Error returned when a forced backend is not executable on this CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedBackend(pub Backend);

impl fmt::Display for UnsupportedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backend `{}` is not supported by this CPU", self.0)
    }
}

impl std::error::Error for UnsupportedBackend {}

/// Force the process-global dispatch to `b` for all subsequent kernel
/// calls. Fails (leaving dispatch unchanged) if the CPU lacks the
/// features. Prefer [`with_forced`] in tests, which restores the previous
/// backend.
pub fn force_backend(b: Backend) -> Result<(), UnsupportedBackend> {
    if !b.is_supported() {
        return Err(UnsupportedBackend(b));
    }
    ensure_init();
    // ordering: see `init` — the selector guards nothing but itself.
    ACTIVE.store(b.id(), Ordering::Relaxed);
    Ok(())
}

static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with dispatch forced to `b`, restoring the previous backend
/// afterwards (also on panic). Serialized process-wide so concurrent
/// forced sections cannot interleave their overrides.
pub fn with_forced<R>(b: Backend, f: impl FnOnce() -> R) -> Result<R, UnsupportedBackend> {
    let _guard = FORCE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let previous = ensure_init();
    force_backend(b)?;
    struct Restore(Backend);
    impl Drop for Restore {
        fn drop(&mut self) {
            // The previous backend was active before, so it is supported.
            let _ = force_backend(self.0);
        }
    }
    let _restore = Restore(previous);
    Ok(f())
}

/// Snapshot of how dispatch was decided, for `gnet simd` and CI smoke
/// checks.
#[derive(Clone, Debug)]
pub struct DispatchReport {
    /// Best backend runtime detection found for this CPU.
    pub detected: Backend,
    /// Backend currently in effect (detection, env, or API override).
    pub active: Backend,
    /// Every backend this CPU can execute, fastest first.
    pub supported: Vec<Backend>,
    /// Raw `GNET_SIMD_FORCE` value seen at first dispatch, if set.
    pub env_request: Option<String>,
    /// False when `GNET_SIMD_FORCE` was set but could not be applied
    /// (unknown name or unsupported on this CPU).
    pub env_honored: bool,
}

/// Describe the current dispatch decision (initializing it on first call).
pub fn dispatch_report() -> DispatchReport {
    let active = ensure_init();
    let env = ENV_REQUEST.get();
    DispatchReport {
        detected: detect(),
        active,
        supported: Backend::supported(),
        env_request: env.and_then(|e| e.raw.clone()),
        env_honored: env.map(|e| e.honored).unwrap_or(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulated_always_supported() {
        assert!(Backend::Emulated.is_supported());
        assert!(Backend::supported().contains(&Backend::Emulated));
    }

    #[test]
    fn parse_round_trips_names() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(Backend::parse(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Backend::parse("neon"), None);
    }

    #[test]
    fn active_backend_is_supported() {
        assert!(active_backend().is_supported());
        assert_eq!(table().backend, active_backend());
    }

    #[test]
    fn detect_prefers_fastest_supported() {
        let report = dispatch_report();
        // `detected` must be the first supported entry of ALL.
        assert_eq!(report.detected, report.supported[0]);
    }

    #[test]
    fn with_forced_restores_previous_backend() {
        let before = active_backend();
        let ran = with_forced(Backend::Emulated, || {
            assert_eq!(active_backend(), Backend::Emulated);
            42
        })
        .expect("emulated is always supported");
        assert_eq!(ran, 42);
        assert_eq!(active_backend(), before);
    }

    #[test]
    fn with_forced_restores_on_panic() {
        let before = active_backend();
        let result = std::panic::catch_unwind(|| {
            let _ = with_forced(Backend::Emulated, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(active_backend(), before);
    }

    #[test]
    fn every_supported_backend_can_be_forced() {
        for b in Backend::supported() {
            with_forced(b, || {
                assert_eq!(active_backend(), b);
                assert_eq!(table().backend, b);
            })
            .expect("supported backend must force cleanly");
        }
    }
}
