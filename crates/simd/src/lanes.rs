//! Fixed-width lane value types.
//!
//! Each type wraps a `[T; N]` with `#[repr(transparent)]` and implements the
//! elementwise operations the MI kernels need. All loops over lanes are over
//! a compile-time constant `N`, so the optimizer unrolls and vectorizes them;
//! none of the operations branch per lane.
//!
//! Horizontal reductions use a fixed pairwise tree so their floating-point
//! result is deterministic and independent of the host's SIMD width — this
//! is what lets the test-suite assert exact equality between runs and tight
//! (1e-6 relative) agreement with the scalar reference kernels.

use core::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, MulAssign, Neg, Sub};

/// Number of lanes in the widest single-precision type, matching the Xeon
/// Phi's 512-bit vector unit (16 × f32).
pub const PHI_F32_LANES: usize = 16;

/// Number of lanes in a 256-bit AVX single-precision vector (Xeon baseline).
pub const AVX_F32_LANES: usize = 8;

/// Trait carrying the lane count of a vector type at the type level.
pub trait LaneCount {
    /// Number of scalar lanes.
    const LANES: usize;
}

macro_rules! define_lane_type {
    ($(#[$meta:meta])* $name:ident, $elem:ty, $n:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq)]
        #[repr(transparent)]
        pub struct $name(pub [$elem; $n]);

        impl LaneCount for $name {
            const LANES: usize = $n;
        }

        impl $name {
            /// Number of scalar lanes.
            pub const LANES: usize = $n;

            /// All lanes zero.
            #[inline(always)]
            pub fn zero() -> Self {
                Self([0.0; $n])
            }

            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: $elem) -> Self {
                Self([v; $n])
            }

            /// Load `N` consecutive elements from `slice` starting at 0.
            ///
            /// # Panics
            /// Panics if `slice.len() < N`.
            #[inline(always)]
            pub fn from_slice(slice: &[$elem]) -> Self {
                let mut out = [0.0; $n];
                out.copy_from_slice(&slice[..$n]);
                Self(out)
            }

            /// Load up to `N` elements from `slice`, filling the remaining
            /// lanes with zero. This is the masked tail load used at the end
            /// of a sample stream whose length is not a lane multiple.
            #[inline(always)]
            pub fn from_slice_padded(slice: &[$elem]) -> Self {
                let mut out = [0.0; $n];
                let k = slice.len().min($n);
                out[..k].copy_from_slice(&slice[..k]);
                Self(out)
            }

            /// Store all lanes into the first `N` elements of `slice`.
            ///
            /// # Panics
            /// Panics if `slice.len() < N`.
            #[inline(always)]
            pub fn write_to_slice(self, slice: &mut [$elem]) {
                slice[..$n].copy_from_slice(&self.0);
            }

            /// Lanewise fused multiply-add: `self * a + b`.
            ///
            /// Uses `mul_add` so the host emits a real FMA when available;
            /// the scalar reference kernels use the same contraction so
            /// results agree bit-for-bit on FMA hardware.
            #[inline(always)]
            pub fn mul_add(self, a: Self, b: Self) -> Self {
                let mut out = [0.0; $n];
                let mut i = 0;
                while i < $n {
                    out[i] = self.0[i].mul_add(a.0[i], b.0[i]);
                    i += 1;
                }
                Self(out)
            }

            /// Lanewise minimum.
            #[inline(always)]
            pub fn min(self, other: Self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i].min(other.0[i]);
                }
                Self(out)
            }

            /// Lanewise maximum.
            #[inline(always)]
            pub fn max(self, other: Self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i].max(other.0[i]);
                }
                Self(out)
            }

            /// Lanewise absolute value.
            #[inline(always)]
            pub fn abs(self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i].abs();
                }
                Self(out)
            }

            /// Lanewise `x * ln(x)` with the entropy convention `0 ln 0 = 0`.
            ///
            /// Negative inputs (which can only arise from accumulated
            /// rounding noise in a probability vector) are clamped to zero
            /// rather than producing a NaN.
            #[inline(always)]
            pub fn xlogx(self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    let x = self.0[i];
                    out[i] = if x > 0.0 { x * x.ln() } else { 0.0 };
                }
                Self(out)
            }

            /// Deterministic horizontal sum using a pairwise tree reduction.
            #[inline(always)]
            pub fn reduce_add(self) -> $elem {
                let mut buf = self.0;
                let mut width = $n;
                while width > 1 {
                    width /= 2;
                    for i in 0..width {
                        buf[i] += buf[i + width];
                    }
                }
                buf[0]
            }

            /// Horizontal maximum over all lanes.
            #[inline(always)]
            pub fn reduce_max(self) -> $elem {
                let mut m = self.0[0];
                for i in 1..$n {
                    m = m.max(self.0[i]);
                }
                m
            }

            /// Horizontal minimum over all lanes.
            #[inline(always)]
            pub fn reduce_min(self) -> $elem {
                let mut m = self.0[0];
                for i in 1..$n {
                    m = m.min(self.0[i]);
                }
                m
            }

            /// Borrow the lanes as a slice.
            #[inline(always)]
            pub fn as_slice(&self) -> &[$elem] {
                &self.0
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::zero()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i] + rhs.0[i];
                }
                Self(out)
            }
        }

        impl AddAssign for $name {
            #[inline(always)]
            fn add_assign(&mut self, rhs: Self) {
                for i in 0..$n {
                    self.0[i] += rhs.0[i];
                }
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i] - rhs.0[i];
                }
                Self(out)
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i] * rhs.0[i];
                }
                Self(out)
            }
        }

        impl MulAssign for $name {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: Self) {
                for i in 0..$n {
                    self.0[i] *= rhs.0[i];
                }
            }
        }

        impl Div for $name {
            type Output = Self;
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i] / rhs.0[i];
                }
                Self(out)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = -self.0[i];
                }
                Self(out)
            }
        }

        impl Mul<$elem> for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: $elem) -> Self {
                let mut out = [0.0; $n];
                for i in 0..$n {
                    out[i] = self.0[i] * rhs;
                }
                Self(out)
            }
        }

        impl Index<usize> for $name {
            type Output = $elem;
            #[inline(always)]
            fn index(&self, i: usize) -> &$elem {
                &self.0[i]
            }
        }

        impl IndexMut<usize> for $name {
            #[inline(always)]
            fn index_mut(&mut self, i: usize) -> &mut $elem {
                &mut self.0[i]
            }
        }

        impl From<[$elem; $n]> for $name {
            fn from(a: [$elem; $n]) -> Self {
                Self(a)
            }
        }
    };
}

define_lane_type!(
    /// Eight single-precision lanes (256-bit AVX geometry, the paper's Xeon
    /// baseline width).
    F32x8, f32, 8
);
define_lane_type!(
    /// Sixteen single-precision lanes (512-bit IMCI geometry, the Xeon Phi
    /// vector width the paper targets).
    F32x16, f32, 16
);
define_lane_type!(
    /// Four double-precision lanes (256-bit AVX geometry).
    F64x4, f64, 4
);
define_lane_type!(
    /// Eight double-precision lanes (512-bit geometry).
    F64x8, f64, 8
);

#[cfg(test)]
mod tests {
    use super::*;

    fn seq16() -> F32x16 {
        let mut a = [0.0f32; 16];
        for (i, v) in a.iter_mut().enumerate() {
            *v = i as f32 + 1.0;
        }
        F32x16(a)
    }

    #[test]
    fn splat_sets_all_lanes() {
        let v = F32x16::splat(3.5);
        assert!(v.as_slice().iter().all(|&x| x == 3.5));
        let w = F64x8::splat(-1.25);
        assert!(w.as_slice().iter().all(|&x| x == -1.25));
    }

    #[test]
    fn from_slice_roundtrip() {
        let data: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        let v = F32x16::from_slice(&data);
        let mut out = vec![0.0f32; 16];
        v.write_to_slice(&mut out);
        assert_eq!(data, out);
    }

    #[test]
    fn padded_load_zero_fills_tail() {
        let data = [1.0f32, 2.0, 3.0];
        let v = F32x8::from_slice_padded(&data);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn padded_load_truncates_long_input() {
        let data: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let v = F32x8::from_slice_padded(&data);
        assert_eq!(v.as_slice(), &data[..8]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = F32x8::splat(2.0);
        let b = F32x8::splat(3.0);
        assert_eq!((a + b), F32x8::splat(5.0));
        assert_eq!((a - b), F32x8::splat(-1.0));
        assert_eq!((a * b), F32x8::splat(6.0));
        assert_eq!((b / a), F32x8::splat(1.5));
        assert_eq!((-a), F32x8::splat(-2.0));
        assert_eq!((a * 4.0), F32x8::splat(8.0));
    }

    #[test]
    fn fma_matches_scalar_contraction() {
        let a = seq16();
        let b = F32x16::splat(0.5);
        let c = F32x16::splat(1.0);
        let r = a.mul_add(b, c);
        for i in 0..16 {
            assert_eq!(r[i], a[i].mul_add(0.5, 1.0));
        }
    }

    #[test]
    fn reduce_add_is_exact_on_integers() {
        // 1 + 2 + ... + 16 = 136, exactly representable.
        assert_eq!(seq16().reduce_add(), 136.0);
    }

    #[test]
    fn reduce_add_pairwise_tree_order() {
        // The tree reduction of [a,b,c,d] is (a+c)+(b+d).
        let v = F64x4([1e16, 1.0, -1e16, 1.0]);
        // tree: (1e16 + -1e16) + (1.0 + 1.0) = 2.0 — a naive left fold
        // would lose the 1.0 against 1e16 and produce 1.0.
        assert_eq!(v.reduce_add(), 2.0);
    }

    #[test]
    fn reduce_min_max() {
        let v = seq16();
        assert_eq!(v.reduce_max(), 16.0);
        assert_eq!(v.reduce_min(), 1.0);
        assert_eq!(v.min(F32x16::splat(4.0)).reduce_max(), 4.0);
        assert_eq!(v.max(F32x16::splat(4.0)).reduce_min(), 4.0);
    }

    #[test]
    fn xlogx_entropy_convention() {
        let v = F32x8([0.0, 1.0, 0.5, 0.25, -0.1, 2.0, 0.0, 1.0]);
        let r = v.xlogx();
        assert_eq!(r[0], 0.0, "0 ln 0 must be 0");
        assert_eq!(r[1], 0.0, "1 ln 1 must be 0");
        assert!((r[2] - 0.5 * 0.5f32.ln()).abs() < 1e-7);
        assert_eq!(r[4], 0.0, "negative rounding noise clamps to 0");
        assert!(r[5] > 0.0);
    }

    #[test]
    fn add_assign_and_mul_assign() {
        let mut a = F32x8::splat(1.0);
        a += F32x8::splat(2.0);
        assert_eq!(a, F32x8::splat(3.0));
        a *= F32x8::splat(2.0);
        assert_eq!(a, F32x8::splat(6.0));
    }

    #[test]
    fn indexing() {
        let mut v = F32x8::zero();
        v[3] = 7.0;
        assert_eq!(v[3], 7.0);
        assert_eq!(v[0], 0.0);
    }

    #[test]
    fn lane_count_constants() {
        assert_eq!(F32x16::LANES, 16);
        assert_eq!(F32x8::LANES, 8);
        assert_eq!(F64x8::LANES, 8);
        assert_eq!(F64x4::LANES, 4);
        assert_eq!(<F32x16 as LaneCount>::LANES, 16);
    }
}
