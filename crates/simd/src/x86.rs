//! Hardware slice-kernel backends for x86-64: AVX-512F and AVX2+FMA.
//!
//! Each backend implements the same six primitives as the emulated laned
//! kernels in [`crate::slice_ops`], with the same arithmetic *shape*:
//!
//! * lanewise accumulation chunk-by-chunk in slice order,
//! * zero-padded tail handling (tails are staged through a zeroed stack
//!   buffer, exactly like `F32x16::from_slice_padded`),
//! * the deterministic pairwise-tree horizontal reduction
//!   (`lane[i] += lane[i + width]`, width halving 16 → 1).
//!
//! Because a hardware FMA computes the same correctly-rounded fused result
//! as `f32::mul_add`, `sum`/`dot`/`axpy`/`scale` are *bitwise* identical to
//! the emulated backend. `xlogx_sum` is the one exception: it vectorizes
//! `ln` with an exponent/mantissa split and an atanh polynomial instead of
//! calling libm per lane, so it agrees to a few ULP rather than bitwise
//! (see `DESIGN.md` §14 for the equivalence-grade table).
//!
//! Safety posture: every function doing raw-pointer loads/stores is an
//! internal `#[target_feature]` function whose bounds obligations are
//! discharged by the *safe entry wrappers* below — the only way the
//! dispatch table (and therefore any caller) can reach this module. The
//! wrappers validate slice lengths first, then the `unsafe` call is merely
//! "the CPU has the feature", guaranteed by runtime detection in
//! [`crate::dispatch`].

use crate::slice_ops::validate_joint_w16;
#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// Width shared by every backend (one 512-bit register, two 256-bit ones).
const W: usize = 16;

// Polynomial for ln(m), m ∈ [0.75, 1.5): with t = (m−1)/(m+1) (|t| ≤ 0.2),
// ln m = 2·atanh(t) = t·(2 + t²·(2/3 + t²·(2/5 + t²·(2/7 + t²·(2/9))))).
// Truncation error ≤ 2·0.2¹¹/11 ≈ 4e-8, below f32 epsilon for the MI
// grids' count magnitudes.
const LN_C9: f32 = 2.0 / 9.0;
const LN_C7: f32 = 2.0 / 7.0;
const LN_C5: f32 = 2.0 / 5.0;
const LN_C3: f32 = 2.0 / 3.0;
const LN_C1: f32 = 2.0;
const LN_2: f32 = core::f32::consts::LN_2;

/// AVX-512F backend: one 512-bit register per 16-lane row.
pub(crate) mod avx512 {
    use super::*;

    // ---- safe entry points (these are what the dispatch table holds) ----

    pub(crate) fn sum(x: &[f32]) -> f32 {
        // SAFETY: the dispatch table only selects this backend after
        // `is_x86_feature_detected!("avx512f")` returned true; the inner fn
        // reads only within `x` (chunked loads + padded tail buffer).
        unsafe { sum_impl(x) }
    }

    pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        // SAFETY: avx512f verified at dispatch-table selection; equal
        // lengths asserted above bound every load of `y` by `x`'s chunks.
        unsafe { dot_impl(x, y) }
    }

    pub(crate) fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        // SAFETY: avx512f verified at dispatch-table selection; equal
        // lengths asserted above bound every `y` access by `x`'s chunks.
        unsafe { axpy_impl(a, x, y) }
    }

    pub(crate) fn xlogx_sum(x: &[f32]) -> f32 {
        // SAFETY: avx512f verified at dispatch-table selection; the inner
        // fn reads only within `x` (chunked loads + padded tail buffer).
        unsafe { xlogx_sum_impl(x) }
    }

    pub(crate) fn scale(a: f32, x: &mut [f32]) {
        // SAFETY: avx512f verified at dispatch-table selection; stores stay
        // within `x`'s full chunks, the tail is handled by safe scalar code.
        unsafe { scale_impl(a, x) }
    }

    pub(crate) fn joint_accumulate_w16(
        grid: &mut [f32],
        first_bins: &[u16],
        weights: &[f32],
        k: usize,
        y_rows: &[f32],
        perm: Option<&[u32]>,
    ) {
        validate_joint_w16(grid, first_bins, weights, k, y_rows, perm);
        // SAFETY: avx512f verified at dispatch-table selection;
        // `validate_joint_w16` just proved every row index the inner fn
        // derives from `first_bins`/`perm` stays inside `grid`/`y_rows`.
        unsafe { joint_impl(grid, first_bins, weights, k, y_rows, perm) }
    }

    // ---- feature-gated implementations ----

    /// Pairwise-tree reduction of one 512-bit register, matching
    /// `F32x16::reduce_add` exactly: widths 8, 4, 2, 1.
    #[target_feature(enable = "avx512f")]
    fn reduce_add_tree(v: __m512) -> f32 {
        let q0 = _mm512_extractf32x4_ps::<0>(v);
        let q1 = _mm512_extractf32x4_ps::<1>(v);
        let q2 = _mm512_extractf32x4_ps::<2>(v);
        let q3 = _mm512_extractf32x4_ps::<3>(v);
        let a = _mm_add_ps(q0, q2); // lanes 0..4  += lanes 8..12
        let b = _mm_add_ps(q1, q3); // lanes 4..8  += lanes 12..16
        let s = _mm_add_ps(a, b); // width 4
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s)); // width 2
        let s = _mm_add_ss(s, _mm_shuffle_ps::<0b01>(s, s)); // width 1
        _mm_cvtss_f32(s)
    }

    /// Load ≤16 elements zero-padded to a full register, the masked-tail
    /// idiom of `F32x16::from_slice_padded`.
    #[target_feature(enable = "avx512f")]
    fn load_padded(tail: &[f32]) -> __m512 {
        let mut buf = [0.0f32; W];
        let n = tail.len().min(W);
        buf[..n].copy_from_slice(&tail[..n]);
        // SAFETY: `buf` is a live 16-float stack array, always fully
        // readable.
        unsafe { _mm512_loadu_ps(buf.as_ptr()) }
    }

    #[target_feature(enable = "avx512f")]
    fn sum_impl(x: &[f32]) -> f32 {
        let mut acc = _mm512_setzero_ps();
        let chunks = x.len() / W;
        let p = x.as_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks ⇒ the 16 floats at c*16 are inside `x`.
            let v = unsafe { _mm512_loadu_ps(p.add(c * W)) };
            acc = _mm512_add_ps(acc, v);
        }
        let tail = &x[chunks * W..];
        if !tail.is_empty() {
            acc = _mm512_add_ps(acc, load_padded(tail));
        }
        reduce_add_tree(acc)
    }

    #[target_feature(enable = "avx512f")]
    fn dot_impl(x: &[f32], y: &[f32]) -> f32 {
        let mut acc = _mm512_setzero_ps();
        let chunks = x.len() / W;
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks and x.len() == y.len() (entry wrapper) ⇒
            // both 16-float loads at c*16 are in bounds.
            let (xv, yv) = unsafe {
                (
                    _mm512_loadu_ps(xp.add(c * W)),
                    _mm512_loadu_ps(yp.add(c * W)),
                )
            };
            acc = _mm512_fmadd_ps(xv, yv, acc);
        }
        let t = chunks * W;
        if t < x.len() {
            acc = _mm512_fmadd_ps(load_padded(&x[t..]), load_padded(&y[t..]), acc);
        }
        reduce_add_tree(acc)
    }

    #[target_feature(enable = "avx512f")]
    fn axpy_impl(a: f32, x: &[f32], y: &mut [f32]) {
        let av = _mm512_set1_ps(a);
        let chunks = x.len() / W;
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks and x.len() == y.len() (entry wrapper) ⇒
            // the 16-float load/store window at c*16 is inside both slices.
            unsafe {
                let xv = _mm512_loadu_ps(xp.add(c * W));
                let yv = _mm512_loadu_ps(yp.add(c * W));
                _mm512_storeu_ps(yp.add(c * W), _mm512_fmadd_ps(xv, av, yv));
            }
        }
        for i in chunks * W..x.len() {
            y[i] = x[i].mul_add(a, y[i]);
        }
    }

    #[target_feature(enable = "avx512f")]
    fn scale_impl(a: f32, x: &mut [f32]) {
        let av = _mm512_set1_ps(a);
        let chunks = x.len() / W;
        let p = x.as_mut_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks ⇒ the 16-float load/store window at c*16
            // is inside `x`.
            unsafe {
                let v = _mm512_loadu_ps(p.add(c * W));
                _mm512_storeu_ps(p.add(c * W), _mm512_mul_ps(v, av));
            }
        }
        for v in &mut x[chunks * W..] {
            *v *= a;
        }
    }

    /// Vectorized `x·ln x` for one register; lanes with `x` below the
    /// smallest positive normal contribute exactly 0 (the entropy
    /// convention; denormal inputs would contribute < 1e-36 nats).
    #[target_feature(enable = "avx512f")]
    fn xlogx_lane(x: __m512) -> __m512 {
        let bits = _mm512_castps_si512(x);
        // m1 = mantissa normalized to [1, 2); e = unbiased exponent.
        let m1 = _mm512_castsi512_ps(_mm512_or_si512(
            _mm512_and_si512(bits, _mm512_set1_epi32(0x007f_ffff)),
            _mm512_set1_epi32(0x3f80_0000),
        ));
        let e = _mm512_cvtepi32_ps(_mm512_sub_epi32(
            _mm512_and_si512(_mm512_srli_epi32::<23>(bits), _mm512_set1_epi32(0xff)),
            _mm512_set1_epi32(127),
        ));
        // Re-center to m ∈ [0.75, 1.5) so |t| ≤ 0.2: where m1 ≥ 1.5 use
        // m1/2 and bump the exponent. The 1.5 compare and the halving are
        // both exact, so no boundary lane can get a mismatched (m, e) pair.
        let ge = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(m1, _mm512_set1_ps(1.5));
        let m = _mm512_mask_mul_ps(m1, ge, m1, _mm512_set1_ps(0.5));
        let e = _mm512_mask_add_ps(e, ge, e, _mm512_set1_ps(1.0));
        let one = _mm512_set1_ps(1.0);
        let t = _mm512_div_ps(_mm512_sub_ps(m, one), _mm512_add_ps(m, one));
        let t2 = _mm512_mul_ps(t, t);
        let mut p = _mm512_set1_ps(LN_C9);
        p = _mm512_fmadd_ps(p, t2, _mm512_set1_ps(LN_C7));
        p = _mm512_fmadd_ps(p, t2, _mm512_set1_ps(LN_C5));
        p = _mm512_fmadd_ps(p, t2, _mm512_set1_ps(LN_C3));
        p = _mm512_fmadd_ps(p, t2, _mm512_set1_ps(LN_C1));
        let ln = _mm512_fmadd_ps(e, _mm512_set1_ps(LN_2), _mm512_mul_ps(p, t));
        let res = _mm512_mul_ps(x, ln);
        // Zero out non-positive / denormal lanes (their exponent/mantissa
        // bit-fields above were garbage; the mask also swallows any NaN).
        let valid = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(x, _mm512_set1_ps(f32::MIN_POSITIVE));
        _mm512_maskz_mov_ps(valid, res)
    }

    #[target_feature(enable = "avx512f")]
    fn xlogx_sum_impl(x: &[f32]) -> f32 {
        let mut acc = _mm512_setzero_ps();
        let chunks = x.len() / W;
        let p = x.as_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks ⇒ the 16 floats at c*16 are inside `x`.
            let v = unsafe { _mm512_loadu_ps(p.add(c * W)) };
            acc = _mm512_add_ps(acc, xlogx_lane(v));
        }
        let tail = &x[chunks * W..];
        if !tail.is_empty() {
            // Padding lanes are 0 ⇒ masked to 0 by xlogx_lane.
            acc = _mm512_add_ps(acc, xlogx_lane(load_padded(tail)));
        }
        reduce_add_tree(acc)
    }

    #[target_feature(enable = "avx512f")]
    fn joint_impl(
        grid: &mut [f32],
        first_bins: &[u16],
        weights: &[f32],
        k: usize,
        y_rows: &[f32],
        perm: Option<&[u32]>,
    ) {
        let gp = grid.as_mut_ptr();
        let yp = y_rows.as_ptr();
        for s in 0..first_bins.len() {
            let ys = match perm {
                Some(p) => p[s] as usize, // cast-ok: u32 to usize widens losslessly
                None => s,
            };
            // SAFETY: validate_joint_w16 (entry wrapper) proved
            // ys*16 + 16 ≤ y_rows.len() for every permuted or identity row.
            let yv = unsafe { _mm512_loadu_ps(yp.add(ys * W)) };
            let fx = first_bins[s] as usize; // cast-ok: u16 to usize widens losslessly
            let wrow = &weights[s * k..s * k + k];
            for (i, &w) in wrow.iter().enumerate() {
                let wv = _mm512_set1_ps(w);
                // SAFETY: validate_joint_w16 proved fx + k ≤ grid.len()/16,
                // so row fx+i's 16-float window is inside `grid`.
                unsafe {
                    let rp = gp.add((fx + i) * W);
                    _mm512_storeu_ps(rp, _mm512_fmadd_ps(yv, wv, _mm512_loadu_ps(rp)));
                }
            }
        }
    }
}

/// AVX2+FMA backend: each 16-lane row is a pair of 256-bit registers.
pub(crate) mod avx2 {
    use super::*;

    // ---- safe entry points (these are what the dispatch table holds) ----

    pub(crate) fn sum(x: &[f32]) -> f32 {
        // SAFETY: the dispatch table only selects this backend after
        // `is_x86_feature_detected!` confirmed avx2+fma; the inner fn reads
        // only within `x` (chunked loads + padded tail buffer).
        unsafe { sum_impl(x) }
    }

    pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        // SAFETY: avx2+fma verified at dispatch-table selection; equal
        // lengths asserted above bound every load of `y` by `x`'s chunks.
        unsafe { dot_impl(x, y) }
    }

    pub(crate) fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        // SAFETY: avx2+fma verified at dispatch-table selection; equal
        // lengths asserted above bound every `y` access by `x`'s chunks.
        unsafe { axpy_impl(a, x, y) }
    }

    pub(crate) fn xlogx_sum(x: &[f32]) -> f32 {
        // SAFETY: avx2+fma verified at dispatch-table selection; the inner
        // fn reads only within `x` (chunked loads + padded tail buffer).
        unsafe { xlogx_sum_impl(x) }
    }

    pub(crate) fn scale(a: f32, x: &mut [f32]) {
        // SAFETY: avx2+fma verified at dispatch-table selection; stores
        // stay within `x`'s full chunks, the tail is safe scalar code.
        unsafe { scale_impl(a, x) }
    }

    pub(crate) fn joint_accumulate_w16(
        grid: &mut [f32],
        first_bins: &[u16],
        weights: &[f32],
        k: usize,
        y_rows: &[f32],
        perm: Option<&[u32]>,
    ) {
        validate_joint_w16(grid, first_bins, weights, k, y_rows, perm);
        // SAFETY: avx2+fma verified at dispatch-table selection;
        // `validate_joint_w16` just proved every row index the inner fn
        // derives from `first_bins`/`perm` stays inside `grid`/`y_rows`.
        unsafe { joint_impl(grid, first_bins, weights, k, y_rows, perm) }
    }

    // ---- feature-gated implementations ----

    /// Pairwise-tree reduction of a 16-lane value held as (lanes 0..8,
    /// lanes 8..16), matching `F32x16::reduce_add` exactly.
    #[target_feature(enable = "avx2,fma")]
    fn reduce_add_tree(lo: __m256, hi: __m256) -> f32 {
        let s8 = _mm256_add_ps(lo, hi); // width 8: lane i += lane i+8
        let s4 = _mm_add_ps(_mm256_castps256_ps128(s8), _mm256_extractf128_ps::<1>(s8));
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4)); // width 2
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps::<0b01>(s2, s2)); // width 1
        _mm_cvtss_f32(s1)
    }

    /// Load ≤16 elements zero-padded into two 256-bit registers.
    #[target_feature(enable = "avx2,fma")]
    fn load_padded(tail: &[f32]) -> (__m256, __m256) {
        let mut buf = [0.0f32; W];
        let n = tail.len().min(W);
        buf[..n].copy_from_slice(&tail[..n]);
        // SAFETY: `buf` is a live 16-float stack array, always fully
        // readable at offsets 0 and 8.
        unsafe {
            (
                _mm256_loadu_ps(buf.as_ptr()),
                _mm256_loadu_ps(buf.as_ptr().add(8)),
            )
        }
    }

    #[target_feature(enable = "avx2,fma")]
    fn sum_impl(x: &[f32]) -> f32 {
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let chunks = x.len() / W;
        let p = x.as_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks ⇒ the 16 floats at c*16 are inside `x`.
            unsafe {
                lo = _mm256_add_ps(lo, _mm256_loadu_ps(p.add(c * W)));
                hi = _mm256_add_ps(hi, _mm256_loadu_ps(p.add(c * W + 8)));
            }
        }
        let tail = &x[chunks * W..];
        if !tail.is_empty() {
            let (tlo, thi) = load_padded(tail);
            lo = _mm256_add_ps(lo, tlo);
            hi = _mm256_add_ps(hi, thi);
        }
        reduce_add_tree(lo, hi)
    }

    #[target_feature(enable = "avx2,fma")]
    fn dot_impl(x: &[f32], y: &[f32]) -> f32 {
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let chunks = x.len() / W;
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks and x.len() == y.len() (entry wrapper) ⇒
            // both 16-float loads at c*16 are in bounds.
            unsafe {
                lo = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(c * W)),
                    _mm256_loadu_ps(yp.add(c * W)),
                    lo,
                );
                hi = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(c * W + 8)),
                    _mm256_loadu_ps(yp.add(c * W + 8)),
                    hi,
                );
            }
        }
        let t = chunks * W;
        if t < x.len() {
            let (xlo, xhi) = load_padded(&x[t..]);
            let (ylo, yhi) = load_padded(&y[t..]);
            lo = _mm256_fmadd_ps(xlo, ylo, lo);
            hi = _mm256_fmadd_ps(xhi, yhi, hi);
        }
        reduce_add_tree(lo, hi)
    }

    #[target_feature(enable = "avx2,fma")]
    fn axpy_impl(a: f32, x: &[f32], y: &mut [f32]) {
        let av = _mm256_set1_ps(a);
        let chunks = x.len() / W;
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks and x.len() == y.len() (entry wrapper) ⇒
            // the 16-float load/store window at c*16 is inside both slices.
            unsafe {
                let r0 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(c * W)),
                    av,
                    _mm256_loadu_ps(yp.add(c * W)),
                );
                let r1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(xp.add(c * W + 8)),
                    av,
                    _mm256_loadu_ps(yp.add(c * W + 8)),
                );
                _mm256_storeu_ps(yp.add(c * W), r0);
                _mm256_storeu_ps(yp.add(c * W + 8), r1);
            }
        }
        for i in chunks * W..x.len() {
            y[i] = x[i].mul_add(a, y[i]);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    fn scale_impl(a: f32, x: &mut [f32]) {
        let av = _mm256_set1_ps(a);
        let chunks = x.len() / W;
        let p = x.as_mut_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks ⇒ the 16-float load/store window at c*16
            // is inside `x`.
            unsafe {
                let r0 = _mm256_mul_ps(_mm256_loadu_ps(p.add(c * W)), av);
                let r1 = _mm256_mul_ps(_mm256_loadu_ps(p.add(c * W + 8)), av);
                _mm256_storeu_ps(p.add(c * W), r0);
                _mm256_storeu_ps(p.add(c * W + 8), r1);
            }
        }
        for v in &mut x[chunks * W..] {
            *v *= a;
        }
    }

    /// Vectorized `x·ln x` for one 256-bit register — same algorithm and
    /// lanewise arithmetic as the AVX-512 backend's `xlogx_lane`.
    #[target_feature(enable = "avx2,fma")]
    fn xlogx_lane(x: __m256) -> __m256 {
        let bits = _mm256_castps_si256(x);
        let m1 = _mm256_castsi256_ps(_mm256_or_si256(
            _mm256_and_si256(bits, _mm256_set1_epi32(0x007f_ffff)),
            _mm256_set1_epi32(0x3f80_0000),
        ));
        let e = _mm256_cvtepi32_ps(_mm256_sub_epi32(
            _mm256_and_si256(_mm256_srli_epi32::<23>(bits), _mm256_set1_epi32(0xff)),
            _mm256_set1_epi32(127),
        ));
        let one = _mm256_set1_ps(1.0);
        // Re-center to m ∈ [0.75, 1.5); compare and halving are exact.
        let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(m1, _mm256_set1_ps(1.5));
        let m = _mm256_blendv_ps(m1, _mm256_mul_ps(m1, _mm256_set1_ps(0.5)), ge);
        let e = _mm256_add_ps(e, _mm256_and_ps(ge, one));
        let t = _mm256_div_ps(_mm256_sub_ps(m, one), _mm256_add_ps(m, one));
        let t2 = _mm256_mul_ps(t, t);
        let mut p = _mm256_set1_ps(LN_C9);
        p = _mm256_fmadd_ps(p, t2, _mm256_set1_ps(LN_C7));
        p = _mm256_fmadd_ps(p, t2, _mm256_set1_ps(LN_C5));
        p = _mm256_fmadd_ps(p, t2, _mm256_set1_ps(LN_C3));
        p = _mm256_fmadd_ps(p, t2, _mm256_set1_ps(LN_C1));
        let ln = _mm256_fmadd_ps(e, _mm256_set1_ps(LN_2), _mm256_mul_ps(p, t));
        let res = _mm256_mul_ps(x, ln);
        // Zero non-positive / denormal lanes; the AND also swallows NaNs.
        let valid = _mm256_cmp_ps::<_CMP_GE_OQ>(x, _mm256_set1_ps(f32::MIN_POSITIVE));
        _mm256_and_ps(res, valid)
    }

    #[target_feature(enable = "avx2,fma")]
    fn xlogx_sum_impl(x: &[f32]) -> f32 {
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        let chunks = x.len() / W;
        let p = x.as_ptr();
        for c in 0..chunks {
            // SAFETY: c < chunks ⇒ the 16 floats at c*16 are inside `x`.
            unsafe {
                lo = _mm256_add_ps(lo, xlogx_lane(_mm256_loadu_ps(p.add(c * W))));
                hi = _mm256_add_ps(hi, xlogx_lane(_mm256_loadu_ps(p.add(c * W + 8))));
            }
        }
        let tail = &x[chunks * W..];
        if !tail.is_empty() {
            // Padding lanes are 0 ⇒ masked to 0 by xlogx_lane.
            let (tlo, thi) = load_padded(tail);
            lo = _mm256_add_ps(lo, xlogx_lane(tlo));
            hi = _mm256_add_ps(hi, xlogx_lane(thi));
        }
        reduce_add_tree(lo, hi)
    }

    #[target_feature(enable = "avx2,fma")]
    fn joint_impl(
        grid: &mut [f32],
        first_bins: &[u16],
        weights: &[f32],
        k: usize,
        y_rows: &[f32],
        perm: Option<&[u32]>,
    ) {
        let gp = grid.as_mut_ptr();
        let yp = y_rows.as_ptr();
        for s in 0..first_bins.len() {
            let ys = match perm {
                Some(p) => p[s] as usize, // cast-ok: u32 to usize widens losslessly
                None => s,
            };
            // SAFETY: validate_joint_w16 (entry wrapper) proved
            // ys*16 + 16 ≤ y_rows.len() for every permuted or identity row.
            let (ylo, yhi) = unsafe {
                (
                    _mm256_loadu_ps(yp.add(ys * W)),
                    _mm256_loadu_ps(yp.add(ys * W + 8)),
                )
            };
            let fx = first_bins[s] as usize; // cast-ok: u16 to usize widens losslessly
            let wrow = &weights[s * k..s * k + k];
            for (i, &w) in wrow.iter().enumerate() {
                let wv = _mm256_set1_ps(w);
                // SAFETY: validate_joint_w16 proved fx + k ≤ grid.len()/16,
                // so row fx+i's 16-float window is inside `grid`.
                unsafe {
                    let rp = gp.add((fx + i) * W);
                    let r0 = _mm256_fmadd_ps(ylo, wv, _mm256_loadu_ps(rp));
                    let r1 = _mm256_fmadd_ps(yhi, wv, _mm256_loadu_ps(rp.add(8)));
                    _mm256_storeu_ps(rp, r0);
                    _mm256_storeu_ps(rp.add(8), r1);
                }
            }
        }
    }
}
