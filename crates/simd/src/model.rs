//! Vector-unit descriptors consumed by the `gnet-phi` machine model.

use serde::{Deserialize, Serialize};

/// Geometry and throughput characteristics of one vector unit.
///
/// The machine simulator multiplies a kernel's scalar operation count by
/// `1 / (lanes * efficiency)` to obtain its vectorized cost, mirroring how
/// the paper attributes its kernel speedups to the 512-bit VPU.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VectorModel {
    /// Single-precision lanes per vector register (16 on KNC, 8 on AVX).
    pub f32_lanes: usize,
    /// Fraction of peak lane utilization a real kernel achieves (0, 1].
    /// Captures masked tails, alignment fix-ups, and reduction overhead.
    pub efficiency: f64,
    /// Whether fused multiply-add issues as a single operation.
    pub has_fma: bool,
}

impl VectorModel {
    /// 512-bit IMCI unit of the Xeon Phi (Knights Corner).
    pub fn imci_512() -> Self {
        Self {
            f32_lanes: 16,
            efficiency: 0.70,
            has_fma: true,
        }
    }

    /// 256-bit AVX unit of a Sandy Bridge Xeon E5 (no FMA).
    pub fn avx_256() -> Self {
        Self {
            f32_lanes: 8,
            efficiency: 0.75,
            has_fma: false,
        }
    }

    /// 512-bit AVX-512 unit of a host Xeon — the hardware behind the
    /// `avx512` dispatch backend ([`crate::Backend::Avx512`]). Same
    /// 16-lane geometry as the coprocessor's IMCI unit, with a slightly
    /// higher sustained efficiency: the host core is out-of-order and
    /// the backend issues one fused 512-bit multiply-add per dense row.
    pub fn avx512_xeon() -> Self {
        Self {
            f32_lanes: 16,
            efficiency: 0.75,
            has_fma: true,
        }
    }

    /// 256-bit AVX2 unit with FMA (Haswell onwards) — the hardware
    /// behind the `avx2` dispatch backend ([`crate::Backend::Avx2`]),
    /// which requires both features and runs two fused 256-bit
    /// multiply-adds where the AVX-512 backend runs one.
    pub fn avx2_fma_256() -> Self {
        Self {
            f32_lanes: 8,
            efficiency: 0.75,
            has_fma: true,
        }
    }

    /// Scalar pseudo-unit: one lane, full efficiency. Used to model the
    /// paper's "vectorization disabled" baseline.
    pub fn scalar() -> Self {
        Self {
            f32_lanes: 1,
            efficiency: 1.0,
            has_fma: true,
        }
    }

    /// Effective speedup over scalar code for a lane-friendly kernel.
    pub fn effective_speedup(&self) -> f64 {
        let fma_boost = if self.has_fma { 1.0 } else { 0.75 };
        // cast-ok: lane counts are small integers, exact in f64
        (self.f32_lanes as f64 * self.efficiency * fma_boost).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_widths() {
        assert_eq!(VectorModel::imci_512().f32_lanes, 16);
        assert_eq!(VectorModel::avx_256().f32_lanes, 8);
        assert_eq!(VectorModel::scalar().f32_lanes, 1);
    }

    #[test]
    fn scalar_speedup_is_one() {
        assert_eq!(VectorModel::scalar().effective_speedup(), 1.0);
    }

    #[test]
    fn phi_vector_speedup_exceeds_xeon() {
        assert!(
            VectorModel::imci_512().effective_speedup()
                > VectorModel::avx_256().effective_speedup()
        );
    }

    #[test]
    fn effective_speedup_never_below_one() {
        let v = VectorModel {
            f32_lanes: 1,
            efficiency: 0.1,
            has_fma: false,
        };
        assert_eq!(v.effective_speedup(), 1.0);
    }

    #[test]
    fn dispatch_backend_presets_order_fastest_first() {
        // The model must rank the dispatch backends exactly as the
        // dispatcher tries them: avx512, then avx2, then emulated
        // (which executes one lane-sized operation at a time, i.e. the
        // scalar pseudo-unit).
        let avx512 = VectorModel::avx512_xeon().effective_speedup();
        let avx2 = VectorModel::avx2_fma_256().effective_speedup();
        let emulated = VectorModel::scalar().effective_speedup();
        assert!(avx512 > avx2 && avx2 > emulated);
    }

    /// Minimal extractor for the `"min"` of one entry in a
    /// `BENCH_7.json` artifact — just enough structure for the test
    /// below without pulling a JSON dependency into `gnet-simd`.
    fn bench_min(text: &str, id: &str) -> Option<f64> {
        let needle = format!("\"id\": \"{id}\"");
        let entry = text.split('{').find(|chunk| chunk.contains(&needle))?;
        let min = entry.split("\"min\":").nth(1)?;
        min.split(',').next()?.trim().parse().ok()
    }

    #[test]
    fn modeled_backend_ordering_matches_the_committed_bench_baseline() {
        // The committed per-backend bench entries are the measured
        // ground truth for what each backend costs; the model's
        // `effective_speedup` ordering must not contradict them. Only
        // entries actually present in the baseline are compared, so a
        // baseline regenerated on a host without AVX-512 still anchors
        // the remaining pairs.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_7.json is present");
        let measured: Vec<(&str, f64, f64)> = [
            ("kernel.vector.avx512", VectorModel::avx512_xeon()),
            ("kernel.vector.avx2", VectorModel::avx2_fma_256()),
            ("kernel.vector.emulated", VectorModel::scalar()),
        ]
        .into_iter()
        .filter_map(|(id, model)| {
            bench_min(&text, id).map(|min_us| (id, model.effective_speedup(), min_us))
        })
        .collect();
        assert!(
            !measured.is_empty(),
            "BENCH_7.json lost its kernel.vector.* per-backend entries"
        );
        for pair in measured.windows(2) {
            let (fast_id, fast_speedup, fast_min) = pair[0];
            let (slow_id, slow_speedup, slow_min) = pair[1];
            assert!(fast_speedup > slow_speedup, "preset ordering regressed");
            assert!(
                fast_min < slow_min,
                "model says {fast_id} beats {slow_id}, but the baseline measured \
                 {fast_min} us vs {slow_min} us"
            );
        }
    }

    #[test]
    fn avx_without_fma_pays_penalty() {
        let with_fma = VectorModel {
            has_fma: true,
            ..VectorModel::avx_256()
        };
        assert!(with_fma.effective_speedup() > VectorModel::avx_256().effective_speedup());
    }
}
