//! Vector-unit descriptors consumed by the `gnet-phi` machine model.

use serde::{Deserialize, Serialize};

/// Geometry and throughput characteristics of one vector unit.
///
/// The machine simulator multiplies a kernel's scalar operation count by
/// `1 / (lanes * efficiency)` to obtain its vectorized cost, mirroring how
/// the paper attributes its kernel speedups to the 512-bit VPU.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VectorModel {
    /// Single-precision lanes per vector register (16 on KNC, 8 on AVX).
    pub f32_lanes: usize,
    /// Fraction of peak lane utilization a real kernel achieves (0, 1].
    /// Captures masked tails, alignment fix-ups, and reduction overhead.
    pub efficiency: f64,
    /// Whether fused multiply-add issues as a single operation.
    pub has_fma: bool,
}

impl VectorModel {
    /// 512-bit IMCI unit of the Xeon Phi (Knights Corner).
    pub fn imci_512() -> Self {
        Self {
            f32_lanes: 16,
            efficiency: 0.70,
            has_fma: true,
        }
    }

    /// 256-bit AVX unit of a Sandy Bridge Xeon E5 (no FMA).
    pub fn avx_256() -> Self {
        Self {
            f32_lanes: 8,
            efficiency: 0.75,
            has_fma: false,
        }
    }

    /// Scalar pseudo-unit: one lane, full efficiency. Used to model the
    /// paper's "vectorization disabled" baseline.
    pub fn scalar() -> Self {
        Self {
            f32_lanes: 1,
            efficiency: 1.0,
            has_fma: true,
        }
    }

    /// Effective speedup over scalar code for a lane-friendly kernel.
    pub fn effective_speedup(&self) -> f64 {
        let fma_boost = if self.has_fma { 1.0 } else { 0.75 };
        // cast-ok: lane counts are small integers, exact in f64
        (self.f32_lanes as f64 * self.efficiency * fma_boost).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_widths() {
        assert_eq!(VectorModel::imci_512().f32_lanes, 16);
        assert_eq!(VectorModel::avx_256().f32_lanes, 8);
        assert_eq!(VectorModel::scalar().f32_lanes, 1);
    }

    #[test]
    fn scalar_speedup_is_one() {
        assert_eq!(VectorModel::scalar().effective_speedup(), 1.0);
    }

    #[test]
    fn phi_vector_speedup_exceeds_xeon() {
        assert!(
            VectorModel::imci_512().effective_speedup()
                > VectorModel::avx_256().effective_speedup()
        );
    }

    #[test]
    fn effective_speedup_never_below_one() {
        let v = VectorModel {
            f32_lanes: 1,
            efficiency: 0.1,
            has_fma: false,
        };
        assert_eq!(v.effective_speedup(), 1.0);
    }

    #[test]
    fn avx_without_fma_pays_penalty() {
        let with_fma = VectorModel {
            has_fma: true,
            ..VectorModel::avx_256()
        };
        assert!(with_fma.effective_speedup() > VectorModel::avx_256().effective_speedup());
    }
}
