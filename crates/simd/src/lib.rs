//! Portable fixed-width vector lanes for the mutual-information kernels.
//!
//! The IPDPS 2014 paper vectorizes its B-spline mutual-information kernel
//! with the Xeon Phi's 512-bit IMCI instruction set (16 × f32 lanes). This
//! crate provides the portable equivalent: fixed-width lane types written as
//! plain arrays with fully unrolled elementwise operations, which LLVM
//! auto-vectorizes into whatever SIMD width the host offers. The same source
//! therefore expresses the paper's *algorithmic* vectorization (dense,
//! gather-free FMA streams over restructured data) without tying the build
//! to one ISA.
//!
//! Two families are provided:
//!
//! * Lane value types — [`F32x8`], [`F32x16`], [`F64x4`], [`F64x8`] — with
//!   arithmetic operators, FMA, and deterministic horizontal reductions.
//! * Slice kernels — [`slice_ops`] — the handful of whole-slice primitives
//!   the MI estimators are built from (`sum`, `dot`, `axpy`, `xlogx_sum`,
//!   `scale`), each in a `_scalar` reference form and a laned form. The
//!   scalar forms are the paper's "no vectorization" baseline and are kept
//!   deliberately un-unrolled.
//!
//! The [`VectorModel`] descriptor exports the lane geometry to the
//! `gnet-phi` machine model so simulated platforms can be given the vector
//! widths of the paper's hardware (16-lane Phi vs 8-lane AVX Xeon).

#![warn(missing_docs)]

pub mod lanes;
pub mod model;
pub mod slice_ops;

pub use lanes::{F32x16, F32x8, F64x4, F64x8, LaneCount};
pub use model::VectorModel;
