//! Fixed-width vector lanes and hardware SIMD kernels for the
//! mutual-information estimators.
//!
//! The IPDPS 2014 paper vectorizes its B-spline mutual-information kernel
//! with the Xeon Phi's 512-bit IMCI instruction set (16 × f32 lanes). This
//! crate provides both halves of that story:
//!
//! * Lane value types — [`F32x8`], [`F32x16`], [`F64x4`], [`F64x8`] — with
//!   arithmetic operators, FMA, and deterministic horizontal reductions.
//!   Portable plain-array code expressing the paper's *algorithmic*
//!   vectorization (dense, gather-free FMA streams over restructured
//!   data).
//! * Slice kernels — [`slice_ops`] — the whole-slice primitives the MI
//!   estimators are built from (`sum`, `dot`, `axpy`, `xlogx_sum`,
//!   `scale`, `joint_accumulate_w16`), each in a `_scalar` reference form,
//!   a portable `_emulated` laned form, and a dispatched public form that
//!   runs real `std::arch` intrinsics — AVX-512F (one 512-bit FMA per
//!   16-lane row, the paper's KNC shape) or AVX2+FMA (two 256-bit
//!   registers per row) — selected once at runtime by [`dispatch`] from
//!   `is_x86_feature_detected!`, with `GNET_SIMD_FORCE` / API overrides
//!   for testing and benchmarking every path.
//!
//! The [`VectorModel`] descriptor exports the lane geometry to the
//! `gnet-phi` machine model so simulated platforms can be given the vector
//! widths of the paper's hardware (16-lane Phi vs 8-lane AVX Xeon, plus
//! the AVX-512 Xeons the dispatcher targets today).

#![warn(missing_docs)]
// safety: this crate is the workspace's designated home for `std::arch`
// SIMD intrinsics (see the unsafe-audit policy note on `unsafe_code` in
// the root Cargo.toml). All unsafe is confined to `x86.rs`, where every
// raw-pointer intrinsic sits behind a safe entry wrapper that validates
// slice shapes first and a dispatch table that only selects a backend
// after runtime CPU-feature detection.
#![allow(unsafe_code)]

pub mod dispatch;
pub mod lanes;
pub mod model;
pub mod slice_ops;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

pub use dispatch::{active_backend, dispatch_report, Backend, DispatchReport};
pub use lanes::{F32x16, F32x8, F64x4, F64x8, LaneCount};
pub use model::VectorModel;
