//! Whole-slice kernels in scalar-reference and laned forms.
//!
//! Every primitive the MI estimators use appears twice:
//!
//! * `*_scalar` — a plain element-at-a-time loop. These are the paper's
//!   "vectorization disabled" baseline (experiment R4) and double as the
//!   reference implementations the laned forms are tested against.
//! * the laned form — processes [`F32x16::LANES`] elements per step with a
//!   masked tail, accumulating into lane registers and reducing once at the
//!   end with the deterministic pairwise tree.
//!
//! The laned forms intentionally mirror how the paper restructures the
//! B-spline accumulation: a single dense FMA stream, no per-element
//! branches, reductions deferred to the end.

use crate::lanes::F32x16;

/// Width used by the laned slice kernels.
pub const W: usize = F32x16::LANES;

// ---------------------------------------------------------------------------
// Scalar reference kernels ("no vectorization" baseline)
// ---------------------------------------------------------------------------

/// Sum of all elements (scalar reference).
pub fn sum_scalar(x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &v in x {
        acc += v;
    }
    acc
}

/// Dot product of two equal-length slices (scalar reference).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_scalar(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0f32;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y[i] += a * x[i]` (scalar reference).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy_scalar(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `Σ x_i ln x_i` with `0 ln 0 = 0` (scalar reference) — the inner sum of a
/// plug-in entropy estimate.
pub fn xlogx_sum_scalar(x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &v in x {
        if v > 0.0 {
            acc += v * v.ln();
        }
    }
    acc
}

/// Multiply every element by `a` in place (scalar reference).
pub fn scale_scalar(a: f32, x: &mut [f32]) {
    for v in x {
        *v *= a;
    }
}

// ---------------------------------------------------------------------------
// Laned kernels
// ---------------------------------------------------------------------------

/// Sum of all elements using 16-wide lanes with a masked tail.
pub fn sum(x: &[f32]) -> f32 {
    let mut acc = F32x16::zero();
    let chunks = x.len() / W;
    for c in 0..chunks {
        acc += F32x16::from_slice(&x[c * W..]);
    }
    let tail = &x[chunks * W..];
    if !tail.is_empty() {
        acc += F32x16::from_slice_padded(tail);
    }
    acc.reduce_add()
}

/// Dot product using 16-wide FMA lanes with a masked tail.
///
/// ```
/// let x = vec![1.0f32; 20];
/// let y: Vec<f32> = (0..20).map(|i| i as f32).collect();
/// assert_eq!(gnet_simd::slice_ops::dot(&x, &y), 190.0);
/// ```
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = F32x16::zero();
    let chunks = x.len() / W;
    for c in 0..chunks {
        let xv = F32x16::from_slice(&x[c * W..]);
        let yv = F32x16::from_slice(&y[c * W..]);
        acc = xv.mul_add(yv, acc);
    }
    let tail_at = chunks * W;
    if tail_at < x.len() {
        let xv = F32x16::from_slice_padded(&x[tail_at..]);
        let yv = F32x16::from_slice_padded(&y[tail_at..]);
        acc = xv.mul_add(yv, acc);
    }
    acc.reduce_add()
}

/// `y[i] += a * x[i]` using 16-wide FMA lanes.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let av = F32x16::splat(a);
    let chunks = x.len() / W;
    for c in 0..chunks {
        let xv = F32x16::from_slice(&x[c * W..]);
        let yv = F32x16::from_slice(&y[c * W..]);
        xv.mul_add(av, yv).write_to_slice(&mut y[c * W..]);
    }
    for i in chunks * W..x.len() {
        y[i] = x[i].mul_add(a, y[i]);
    }
}

/// `Σ x_i ln x_i` with `0 ln 0 = 0`, 16 lanes at a time.
///
/// The zero-padded tail load is safe here because padding lanes contribute
/// `0 ln 0 = 0` under the entropy convention.
pub fn xlogx_sum(x: &[f32]) -> f32 {
    let mut acc = F32x16::zero();
    let chunks = x.len() / W;
    for c in 0..chunks {
        acc += F32x16::from_slice(&x[c * W..]).xlogx();
    }
    let tail = &x[chunks * W..];
    if !tail.is_empty() {
        acc += F32x16::from_slice_padded(tail).xlogx();
    }
    acc.reduce_add()
}

/// Multiply every element by `a` in place, 16 lanes at a time.
pub fn scale(a: f32, x: &mut [f32]) {
    let av = F32x16::splat(a);
    let chunks = x.len() / W;
    for c in 0..chunks {
        let xv = F32x16::from_slice(&x[c * W..]);
        (xv * av).write_to_slice(&mut x[c * W..]);
    }
    for v in &mut x[chunks * W..] {
        *v *= a;
    }
}

/// Rank-4 outer-product accumulation used by the B-spline joint histogram:
/// for one sample with row weights `wx[0..k]` at bin `bx` and column weights
/// `wy[0..k]` at bin `by`, add `wx[i] * wy[j]` into the dense `b × b` grid.
///
/// `k` is the spline order (≤ 8 supported) and `stride` the row length of
/// `grid`. This is the scalar-per-sample form; the vectorized estimator in
/// `gnet-mi` instead restructures the loop so that lanes run across samples.
///
/// # Panics
/// Panics (in debug builds) on out-of-bounds bin indices.
#[inline]
pub fn outer_accumulate(
    grid: &mut [f32],
    stride: usize,
    bx: usize,
    wx: &[f32],
    by: usize,
    wy: &[f32],
) {
    for (i, &wxi) in wx.iter().enumerate() {
        let row = (bx + i) * stride + by;
        let dst = &mut grid[row..row + wy.len()];
        for (j, &wyj) in wy.iter().enumerate() {
            dst[j] = wxi.mul_add(wyj, dst[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f32, b: f32, tol: f32) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= tol * scale
    }

    #[test]
    fn sum_empty_is_zero() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(sum_scalar(&[]), 0.0);
    }

    #[test]
    fn sum_matches_scalar_on_non_multiple_length() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        assert!(close(sum(&x), sum_scalar(&x), 1e-6));
    }

    #[test]
    fn dot_basic() {
        let x = vec![1.0f32; 33];
        let y: Vec<f32> = (0..33).map(|i| i as f32).collect();
        assert_eq!(dot(&x, &y), (0..33).sum::<i32>() as f32);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_matches_scalar() {
        let x: Vec<f32> = (0..21).map(|i| i as f32 * 0.25).collect();
        let mut y1 = vec![1.0f32; 21];
        let mut y2 = y1.clone();
        axpy(2.5, &x, &mut y1);
        axpy_scalar(2.5, &x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(close(*a, *b, 1e-6));
        }
    }

    #[test]
    fn xlogx_sum_of_uniform_distribution() {
        // H = -Σ p ln p = ln 8 for uniform over 8 outcomes.
        let p = vec![0.125f32; 8];
        let h = -xlogx_sum(&p);
        assert!(close(h, 8.0f32.ln(), 1e-6));
        assert!(close(-xlogx_sum_scalar(&p), 8.0f32.ln(), 1e-6));
    }

    #[test]
    fn xlogx_sum_ignores_zeros() {
        let mut p = vec![0.0f32; 40];
        p[3] = 0.5;
        p[29] = 0.5;
        assert!(close(xlogx_sum(&p), 2.0 * 0.5 * 0.5f32.ln(), 1e-6));
    }

    #[test]
    fn scale_matches_scalar() {
        let mut a: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let mut b = a.clone();
        scale(0.5, &mut a);
        scale_scalar(0.5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn outer_accumulate_places_weights() {
        let b = 6;
        let mut grid = vec![0.0f32; b * b];
        outer_accumulate(&mut grid, b, 1, &[0.25, 0.5, 0.25], 2, &[0.5, 0.5, 0.0]);
        assert_eq!(grid[b + 2], 0.125);
        assert_eq!(grid[2 * b + 3], 0.25);
        assert_eq!(grid[3 * b + 2], 0.125);
        // Total mass added = (Σwx)(Σwy) = 1.0 * 1.0.
        let total: f32 = grid.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_sum_matches_scalar(x in proptest::collection::vec(-100.0f32..100.0, 0..200)) {
            // Tolerance must scale with the *mass* Σ|x|, not the result:
            // a near-zero sum of large terms legitimately differs between
            // summation orders by ≈ ε·Σ|x| (catastrophic cancellation).
            let mass: f32 = x.iter().map(|v| v.abs()).sum();
            let tol = 1e-6 * mass + 1e-4;
            prop_assert!((sum(&x) - sum_scalar(&x)).abs() <= tol);
        }

        #[test]
        fn prop_dot_matches_scalar(
            xy in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 0..200)
        ) {
            let x: Vec<f32> = xy.iter().map(|p| p.0).collect();
            let y: Vec<f32> = xy.iter().map(|p| p.1).collect();
            let mass: f32 = xy.iter().map(|p| (p.0 * p.1).abs()).sum();
            let tol = 1e-6 * mass + 1e-4;
            prop_assert!((dot(&x, &y) - dot_scalar(&x, &y)).abs() <= tol);
        }

        #[test]
        fn prop_xlogx_matches_scalar(x in proptest::collection::vec(0.0f32..1.0, 0..200)) {
            prop_assert!(close(xlogx_sum(&x), xlogx_sum_scalar(&x), 1e-4));
        }

        #[test]
        fn prop_axpy_matches_scalar(
            a in -5.0f32..5.0,
            xy in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 0..100)
        ) {
            let x: Vec<f32> = xy.iter().map(|p| p.0).collect();
            let mut y1: Vec<f32> = xy.iter().map(|p| p.1).collect();
            let mut y2 = y1.clone();
            axpy(a, &x, &mut y1);
            axpy_scalar(a, &x, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                prop_assert!(close(*u, *v, 1e-4));
            }
        }
    }
}
