//! Whole-slice kernels in scalar-reference, emulated-lane, and hardware
//! forms.
//!
//! Every primitive the MI estimators use appears three ways:
//!
//! * `*_scalar` — a plain element-at-a-time loop. These are the paper's
//!   "vectorization disabled" baseline (experiment R4) and double as the
//!   reference implementations the laned forms are tested against.
//! * `*_emulated` — processes [`F32x16::LANES`] elements per step with a
//!   masked tail, accumulating into lane registers and reducing once at
//!   the end with the deterministic pairwise tree. Portable: plain arrays
//!   the optimizer may or may not vectorize.
//! * the undecorated public form — routes through the runtime
//!   [dispatch table](crate::dispatch) to real AVX-512F or AVX2+FMA
//!   intrinsics when the CPU has them ([`crate::x86`]), falling back to
//!   the emulated form otherwise. `GNET_SIMD_FORCE` or
//!   [`crate::dispatch::force_backend`] override the choice.
//!
//! The laned forms intentionally mirror how the paper restructures the
//! B-spline accumulation: a single dense FMA stream, no per-element
//! branches, reductions deferred to the end. All backends share the same
//! accumulation shape and pairwise reduction tree, so `sum`/`dot`/`axpy`/
//! `scale` agree *bitwise* across backends on FMA hardware; `xlogx_sum`
//! agrees to a few ULP (vectorized `ln`).

use crate::dispatch;
use crate::lanes::F32x16;

/// Width used by the laned slice kernels.
pub const W: usize = F32x16::LANES;

// ---------------------------------------------------------------------------
// Scalar reference kernels ("no vectorization" baseline)
// ---------------------------------------------------------------------------

/// Sum of all elements (scalar reference).
pub fn sum_scalar(x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &v in x {
        acc += v;
    }
    acc
}

/// Dot product of two equal-length slices (scalar reference).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_scalar(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0f32;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y[i] += a * x[i]` (scalar reference).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy_scalar(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `Σ x_i ln x_i` with `0 ln 0 = 0` (scalar reference) — the inner sum of a
/// plug-in entropy estimate.
pub fn xlogx_sum_scalar(x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &v in x {
        if v > 0.0 {
            acc += v * v.ln();
        }
    }
    acc
}

/// Multiply every element by `a` in place (scalar reference).
pub fn scale_scalar(a: f32, x: &mut [f32]) {
    for v in x {
        *v *= a;
    }
}

// ---------------------------------------------------------------------------
// Dispatched kernels (the public API the estimators call)
// ---------------------------------------------------------------------------

/// Sum of all elements using 16-wide lanes with a masked tail.
///
/// Dispatches to the fastest backend the CPU supports (see
/// [`crate::dispatch`]).
pub fn sum(x: &[f32]) -> f32 {
    (dispatch::table().sum)(x)
}

/// Dot product using 16-wide FMA lanes with a masked tail.
///
/// ```
/// let x = vec![1.0f32; 20];
/// let y: Vec<f32> = (0..20).map(|i| i as f32).collect();
/// assert_eq!(gnet_simd::slice_ops::dot(&x, &y), 190.0);
/// ```
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    (dispatch::table().dot)(x, y)
}

/// `y[i] += a * x[i]` using 16-wide FMA lanes.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    (dispatch::table().axpy)(a, x, y)
}

/// `Σ x_i ln x_i` with `0 ln 0 = 0`, 16 lanes at a time.
///
/// The zero-padded tail load is safe here because padding lanes contribute
/// `0 ln 0 = 0` under the entropy convention. Hardware backends vectorize
/// `ln` and agree with the emulated/scalar forms to a few ULP per element
/// (they also treat positive *denormal* inputs as zero, a < 1e-36-nats
/// difference no real count grid can produce).
pub fn xlogx_sum(x: &[f32]) -> f32 {
    (dispatch::table().xlogx_sum)(x)
}

/// Multiply every element by `a` in place, 16 lanes at a time.
pub fn scale(a: f32, x: &mut [f32]) {
    (dispatch::table().scale)(a, x)
}

/// The paper's restructured joint-histogram accumulation on the dense
/// 16-lane layout: for each sample `s`, add `weights[s*k + i] · y_rows[s]`
/// (or `y_rows[perm[s]]` when a permutation is given) into the 16-float
/// grid row `first_bins[s] + i`, for `i in 0..k`.
///
/// One call performs `m·k` contiguous row FMAs — exactly one 512-bit FMA
/// each on AVX-512 — replacing the scalar kernel's `m·k²` scattered
/// multiply-adds.
///
/// # Panics
/// Panics if `grid` or `y_rows` is not a multiple of 16 long, if
/// `weights.len() != first_bins.len() * k`, if `k` is 0 or exceeds 16, if
/// any `first_bins[s] + k` exceeds the grid's row count, if `perm` (when
/// given) has the wrong length or an out-of-range index, or (without
/// `perm`) if `y_rows` has fewer rows than there are samples.
pub fn joint_accumulate_w16(
    grid: &mut [f32],
    first_bins: &[u16],
    weights: &[f32],
    k: usize,
    y_rows: &[f32],
    perm: Option<&[u32]>,
) {
    (dispatch::table().joint_accumulate_w16)(grid, first_bins, weights, k, y_rows, perm)
}

/// Shape validation shared by every `joint_accumulate_w16` backend — the
/// hardware backends' raw-pointer bounds proofs all start from these
/// panics firing first.
pub(crate) fn validate_joint_w16(
    grid: &[f32],
    first_bins: &[u16],
    weights: &[f32],
    k: usize,
    y_rows: &[f32],
    perm: Option<&[u32]>,
) {
    assert!(
        (1..=W).contains(&k),
        "joint_accumulate_w16: order {k} outside 1..={W}"
    );
    assert_eq!(
        grid.len() % W,
        0,
        "joint_accumulate_w16: grid not row-padded"
    );
    assert_eq!(
        y_rows.len() % W,
        0,
        "joint_accumulate_w16: y_rows not row-padded"
    );
    let rows = grid.len() / W;
    let y_count = y_rows.len() / W;
    let m = first_bins.len();
    assert_eq!(weights.len(), m * k, "joint_accumulate_w16: weights shape");
    match perm {
        None => assert!(y_count >= m, "joint_accumulate_w16: too few y rows"),
        Some(p) => {
            assert_eq!(p.len(), m, "permutation length mismatch");
            for &py in p {
                let py = py as usize; // cast-ok: u32 to usize widens losslessly
                assert!(
                    py < y_count,
                    "joint_accumulate_w16: perm index out of range"
                );
            }
        }
    }
    for &fb in first_bins {
        let fb = fb as usize; // cast-ok: u16 to usize widens losslessly
        assert!(fb + k <= rows, "joint_accumulate_w16: bin row out of range");
    }
}

// ---------------------------------------------------------------------------
// Emulated laned kernels (portable fallback backend)
// ---------------------------------------------------------------------------

/// Sum of all elements using 16-wide lanes with a masked tail (portable
/// emulated backend).
pub fn sum_emulated(x: &[f32]) -> f32 {
    let mut acc = F32x16::zero();
    let chunks = x.len() / W;
    for c in 0..chunks {
        acc += F32x16::from_slice(&x[c * W..]);
    }
    let tail = &x[chunks * W..];
    if !tail.is_empty() {
        acc += F32x16::from_slice_padded(tail);
    }
    acc.reduce_add()
}

/// Dot product using 16-wide FMA lanes with a masked tail (portable
/// emulated backend).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_emulated(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = F32x16::zero();
    let chunks = x.len() / W;
    for c in 0..chunks {
        let xv = F32x16::from_slice(&x[c * W..]);
        let yv = F32x16::from_slice(&y[c * W..]);
        acc = xv.mul_add(yv, acc);
    }
    let tail_at = chunks * W;
    if tail_at < x.len() {
        let xv = F32x16::from_slice_padded(&x[tail_at..]);
        let yv = F32x16::from_slice_padded(&y[tail_at..]);
        acc = xv.mul_add(yv, acc);
    }
    acc.reduce_add()
}

/// `y[i] += a * x[i]` using 16-wide FMA lanes (portable emulated backend).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy_emulated(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let av = F32x16::splat(a);
    let chunks = x.len() / W;
    for c in 0..chunks {
        let xv = F32x16::from_slice(&x[c * W..]);
        let yv = F32x16::from_slice(&y[c * W..]);
        xv.mul_add(av, yv).write_to_slice(&mut y[c * W..]);
    }
    for i in chunks * W..x.len() {
        y[i] = x[i].mul_add(a, y[i]);
    }
}

/// `Σ x_i ln x_i` with `0 ln 0 = 0`, 16 lanes at a time (portable emulated
/// backend).
///
/// The zero-padded tail load is safe here because padding lanes contribute
/// `0 ln 0 = 0` under the entropy convention.
pub fn xlogx_sum_emulated(x: &[f32]) -> f32 {
    let mut acc = F32x16::zero();
    let chunks = x.len() / W;
    for c in 0..chunks {
        acc += F32x16::from_slice(&x[c * W..]).xlogx();
    }
    let tail = &x[chunks * W..];
    if !tail.is_empty() {
        acc += F32x16::from_slice_padded(tail).xlogx();
    }
    acc.reduce_add()
}

/// Multiply every element by `a` in place, 16 lanes at a time (portable
/// emulated backend).
pub fn scale_emulated(a: f32, x: &mut [f32]) {
    let av = F32x16::splat(a);
    let chunks = x.len() / W;
    for c in 0..chunks {
        let xv = F32x16::from_slice(&x[c * W..]);
        (xv * av).write_to_slice(&mut x[c * W..]);
    }
    for v in &mut x[chunks * W..] {
        *v *= a;
    }
}

/// Portable emulated backend of [`joint_accumulate_w16`]: the dense row
/// FMAs run on [`F32x16`] values loaded from and stored back to the grid
/// rows. Same per-cell operation order as the hardware backends, so
/// results agree bitwise on FMA hosts.
pub fn joint_accumulate_w16_emulated(
    grid: &mut [f32],
    first_bins: &[u16],
    weights: &[f32],
    k: usize,
    y_rows: &[f32],
    perm: Option<&[u32]>,
) {
    validate_joint_w16(grid, first_bins, weights, k, y_rows, perm);
    for s in 0..first_bins.len() {
        let ys = match perm {
            Some(p) => p[s] as usize, // cast-ok: u32 to usize widens losslessly
            None => s,
        };
        let y = F32x16::from_slice(&y_rows[ys * W..]);
        let fx = first_bins[s] as usize; // cast-ok: u16 to usize widens losslessly
        let wrow = &weights[s * k..s * k + k];
        for (i, &w) in wrow.iter().enumerate() {
            let row = &mut grid[(fx + i) * W..(fx + i + 1) * W];
            y.mul_add(F32x16::splat(w), F32x16::from_slice(row))
                .write_to_slice(row);
        }
    }
}

/// Rank-4 outer-product accumulation used by the B-spline joint histogram:
/// for one sample with row weights `wx[0..k]` at bin `bx` and column weights
/// `wy[0..k]` at bin `by`, add `wx[i] * wy[j]` into the dense `b × b` grid.
///
/// `k` is the spline order (≤ 8 supported) and `stride` the row length of
/// `grid`. This is the scalar-per-sample form; the vectorized estimator in
/// `gnet-mi` instead restructures the loop so that lanes run across samples.
///
/// # Panics
/// Panics (in debug builds) on out-of-bounds bin indices.
#[inline]
pub fn outer_accumulate(
    grid: &mut [f32],
    stride: usize,
    bx: usize,
    wx: &[f32],
    by: usize,
    wy: &[f32],
) {
    for (i, &wxi) in wx.iter().enumerate() {
        let row = (bx + i) * stride + by;
        let dst = &mut grid[row..row + wy.len()];
        for (j, &wyj) in wy.iter().enumerate() {
            dst[j] = wxi.mul_add(wyj, dst[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f32, b: f32, tol: f32) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= tol * scale
    }

    #[test]
    fn sum_empty_is_zero() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(sum_scalar(&[]), 0.0);
    }

    #[test]
    fn sum_matches_scalar_on_non_multiple_length() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        assert!(close(sum(&x), sum_scalar(&x), 1e-6));
    }

    #[test]
    fn dot_basic() {
        let x = vec![1.0f32; 33];
        let y: Vec<f32> = (0..33).map(|i| i as f32).collect();
        assert_eq!(dot(&x, &y), (0..33).sum::<i32>() as f32);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_matches_scalar() {
        let x: Vec<f32> = (0..21).map(|i| i as f32 * 0.25).collect();
        let mut y1 = vec![1.0f32; 21];
        let mut y2 = y1.clone();
        axpy(2.5, &x, &mut y1);
        axpy_scalar(2.5, &x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!(close(*a, *b, 1e-6));
        }
    }

    #[test]
    fn xlogx_sum_of_uniform_distribution() {
        // H = -Σ p ln p = ln 8 for uniform over 8 outcomes.
        let p = vec![0.125f32; 8];
        let h = -xlogx_sum(&p);
        assert!(close(h, 8.0f32.ln(), 1e-6));
        assert!(close(-xlogx_sum_scalar(&p), 8.0f32.ln(), 1e-6));
    }

    #[test]
    fn xlogx_sum_ignores_zeros() {
        let mut p = vec![0.0f32; 40];
        p[3] = 0.5;
        p[29] = 0.5;
        assert!(close(xlogx_sum(&p), 2.0 * 0.5 * 0.5f32.ln(), 1e-6));
    }

    #[test]
    fn scale_matches_scalar() {
        let mut a: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let mut b = a.clone();
        scale(0.5, &mut a);
        scale_scalar(0.5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn outer_accumulate_places_weights() {
        let b = 6;
        let mut grid = vec![0.0f32; b * b];
        outer_accumulate(&mut grid, b, 1, &[0.25, 0.5, 0.25], 2, &[0.5, 0.5, 0.0]);
        assert_eq!(grid[b + 2], 0.125);
        assert_eq!(grid[2 * b + 3], 0.25);
        assert_eq!(grid[3 * b + 2], 0.125);
        // Total mass added = (Σwx)(Σwy) = 1.0 * 1.0.
        let total: f32 = grid.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_sum_matches_scalar(x in proptest::collection::vec(-100.0f32..100.0, 0..200)) {
            // Tolerance must scale with the *mass* Σ|x|, not the result:
            // a near-zero sum of large terms legitimately differs between
            // summation orders by ≈ ε·Σ|x| (catastrophic cancellation).
            let mass: f32 = x.iter().map(|v| v.abs()).sum();
            let tol = 1e-6 * mass + 1e-4;
            prop_assert!((sum(&x) - sum_scalar(&x)).abs() <= tol);
        }

        #[test]
        fn prop_dot_matches_scalar(
            xy in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 0..200)
        ) {
            let x: Vec<f32> = xy.iter().map(|p| p.0).collect();
            let y: Vec<f32> = xy.iter().map(|p| p.1).collect();
            let mass: f32 = xy.iter().map(|p| (p.0 * p.1).abs()).sum();
            let tol = 1e-6 * mass + 1e-4;
            prop_assert!((dot(&x, &y) - dot_scalar(&x, &y)).abs() <= tol);
        }

        #[test]
        fn prop_xlogx_matches_scalar(x in proptest::collection::vec(0.0f32..1.0, 0..200)) {
            prop_assert!(close(xlogx_sum(&x), xlogx_sum_scalar(&x), 1e-4));
        }

        #[test]
        fn prop_axpy_matches_scalar(
            a in -5.0f32..5.0,
            xy in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 0..100)
        ) {
            let x: Vec<f32> = xy.iter().map(|p| p.0).collect();
            let mut y1: Vec<f32> = xy.iter().map(|p| p.1).collect();
            let mut y2 = y1.clone();
            axpy(a, &x, &mut y1);
            axpy_scalar(a, &x, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                prop_assert!(close(*u, *v, 1e-4));
            }
        }
    }

    // -- backend equivalence: every supported hardware backend vs emulated --

    use crate::dispatch::{with_forced, Backend};

    fn naive_joint(
        rows: usize,
        first_bins: &[u16],
        weights: &[f32],
        k: usize,
        y_rows: &[f32],
        perm: Option<&[u32]>,
    ) -> Vec<f32> {
        let mut grid = vec![0.0f32; rows * W];
        for s in 0..first_bins.len() {
            let ys = perm.map_or(s, |p| p[s] as usize);
            for i in 0..k {
                let w = weights[s * k + i];
                let row = (first_bins[s] as usize + i) * W;
                for j in 0..W {
                    grid[row + j] = y_rows[ys * W + j].mul_add(w, grid[row + j]);
                }
            }
        }
        grid
    }

    #[test]
    fn joint_accumulate_matches_naive_reference() {
        let rows = 10;
        let k = 3;
        let m = 7;
        let first_bins: Vec<u16> = (0..7u16).map(|s| s % 7).collect();
        let weights: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let y_rows: Vec<f32> = (0..m * W).map(|i| (i as f32 * 0.11).cos()).collect();
        let perm: Vec<u32> = (0..7u32).rev().collect();
        for p in [None, Some(&perm[..])] {
            let mut grid = vec![0.0f32; rows * W];
            joint_accumulate_w16(&mut grid, &first_bins, &weights, k, &y_rows, p);
            assert_eq!(
                grid,
                naive_joint(rows, &first_bins, &weights, k, &y_rows, p)
            );
        }
    }

    #[test]
    #[should_panic(expected = "bin row out of range")]
    fn joint_accumulate_rejects_overflowing_bin() {
        let mut grid = vec![0.0f32; 4 * W];
        joint_accumulate_w16(&mut grid, &[3], &[1.0, 1.0], 2, &[0.0; W], None);
    }

    #[test]
    #[should_panic(expected = "perm index out of range")]
    fn joint_accumulate_rejects_bad_perm() {
        let mut grid = vec![0.0f32; 4 * W];
        joint_accumulate_w16(&mut grid, &[0], &[1.0], 1, &[0.0; W], Some(&[5]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64)
            .with_persistence("proptest-regressions/slice_ops_backend_equivalence.txt"))]

        /// `sum`/`dot`/`axpy`/`scale` share one arithmetic shape (lanewise
        /// chunk accumulation, correctly-rounded FMA, pairwise reduction
        /// tree) across all backends, so they must agree **bitwise** — the
        /// equivalence grade DESIGN.md §14 documents as "bitwise (0 ULP)".
        #[test]
        fn prop_linear_kernels_bitwise_across_backends(
            a in -5.0f32..5.0,
            xy in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 0..200)
        ) {
            let x: Vec<f32> = xy.iter().map(|p| p.0).collect();
            let y: Vec<f32> = xy.iter().map(|p| p.1).collect();
            let ref_sum = sum_emulated(&x);
            let ref_dot = dot_emulated(&x, &y);
            let mut ref_axpy = y.clone();
            axpy_emulated(a, &x, &mut ref_axpy);
            let mut ref_scale = x.clone();
            scale_emulated(a, &mut ref_scale);
            for b in Backend::supported() {
                let (s, d, ya, xs) = with_forced(b, || {
                    let mut ya = y.clone();
                    axpy(a, &x, &mut ya);
                    let mut xs = x.clone();
                    scale(a, &mut xs);
                    (sum(&x), dot(&x, &y), ya, xs)
                }).expect("supported backend");
                prop_assert_eq!(s.to_bits(), ref_sum.to_bits(), "sum on {}", b);
                prop_assert_eq!(d.to_bits(), ref_dot.to_bits(), "dot on {}", b);
                for (got, want) in ya.iter().zip(&ref_axpy) {
                    prop_assert_eq!(got.to_bits(), want.to_bits(), "axpy on {}", b);
                }
                for (got, want) in xs.iter().zip(&ref_scale) {
                    prop_assert_eq!(got.to_bits(), want.to_bits(), "scale on {}", b);
                }
            }
        }

        /// `xlogx_sum` vectorizes `ln`, so hardware backends agree with the
        /// emulated libm form to a few ULP per element, not bitwise.
        #[test]
        fn prop_xlogx_close_across_backends(
            x in proptest::collection::vec(0.0f32..1.0, 0..200)
        ) {
            let reference = xlogx_sum_emulated(&x);
            let mass: f32 = x.iter().map(|v| v.abs()).sum();
            let tol = 1e-5 * mass.max(1.0);
            for b in Backend::supported() {
                let got = with_forced(b, || xlogx_sum(&x)).expect("supported backend");
                prop_assert!(
                    (got - reference).abs() <= tol,
                    "xlogx_sum on {}: {} vs emulated {}", b, got, reference
                );
            }
        }

        /// The joint accumulator is pure FMA, so it is bitwise across
        /// backends, permuted and identity alike.
        #[test]
        fn prop_joint_accumulate_bitwise_across_backends(
            seed in 0u64..1000,
            m in 1usize..60,
            k in 1usize..=8,
            rows in 8usize..=16,
        ) {
            let mixu = |i: usize| {
                let z = (seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z >> 40
            };
            let mixf = |i: usize| (mixu(i) as f32) / ((1u64 << 24) as f32);
            let first_bins: Vec<u16> = (0..m)
                .map(|s| u16::try_from(usize::try_from(mixu(s)).unwrap() % (rows - k + 1)).unwrap())
                .collect();
            let weights: Vec<f32> = (0..m * k).map(|i| mixf(i + 1000)).collect();
            let y_rows: Vec<f32> = (0..m * W).map(|i| mixf(i + 50_000)).collect();
            let perm: Vec<u32> = (0..u32::try_from(m).unwrap()).rev().collect();
            for p in [None, Some(&perm[..])] {
                let mut reference = vec![0.0f32; rows * W];
                joint_accumulate_w16_emulated(&mut reference, &first_bins, &weights, k, &y_rows, p);
                for b in Backend::supported() {
                    let grid = with_forced(b, || {
                        let mut grid = vec![0.0f32; rows * W];
                        joint_accumulate_w16(&mut grid, &first_bins, &weights, k, &y_rows, p);
                        grid
                    }).expect("supported backend");
                    for (got, want) in grid.iter().zip(&reference) {
                        prop_assert_eq!(got.to_bits(), want.to_bits(), "joint on {}", b);
                    }
                }
            }
        }
    }
}
