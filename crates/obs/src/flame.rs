//! Folded flamegraph-stack export.
//!
//! Produces the classic `flamegraph.pl` / speedscope "folded" format:
//! one line per unique stack, `frame;frame;frame <self-µs>`. Spans
//! inside one rank are nested by time containment (a span whose
//! interval lies inside another's is its child), mirroring how the
//! recorder's RAII spans actually nest at runtime. The root frame of
//! every stack is `rank-<r>`, so a distributed run folds into one
//! graph with one subtree per rank. Weights are *self* time: a frame's
//! duration minus its nested children, so the flamegraph's column
//! widths sum to real busy time without double-counting.

use crate::model::{AlignedSpan, RunModel};
use std::collections::BTreeMap;

/// Fold one rank's spans into `(stack-path, self-µs)` pairs,
/// accumulated into `folded`.
fn fold_rank(root: &str, spans: &[&AlignedSpan], folded: &mut BTreeMap<String, u64>) {
    let mut ordered: Vec<&AlignedSpan> = spans.to_vec();
    // Parents before children: earlier start first, longer span first on
    // ties so the container precedes the contained.
    ordered.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then(b.end_us().cmp(&a.end_us()))
    });

    // Open-frame stack: (name, end_us, self_us).
    let mut stack: Vec<(String, i64, u64)> = Vec::new();
    let close_top = |stack: &mut Vec<(String, i64, u64)>, folded: &mut BTreeMap<String, u64>| {
        if let Some((name, _, self_us)) = stack.pop() {
            let mut path = String::from(root);
            for (frame, _, _) in stack.iter() {
                path.push(';');
                path.push_str(frame);
            }
            path.push(';');
            path.push_str(&name);
            *folded.entry(path).or_insert(0) += self_us;
        }
    };

    for s in ordered {
        while let Some(top) = stack.last() {
            if s.start_us >= top.1 {
                close_top(&mut stack, folded);
            } else {
                break;
            }
        }
        // Deduct the child's time from the parent's self weight.
        if let Some(top) = stack.last_mut() {
            top.2 = top.2.saturating_sub(s.dur_us);
        }
        stack.push((s.name.clone(), s.end_us(), s.dur_us));
    }
    while !stack.is_empty() {
        close_top(&mut stack, folded);
    }
}

/// Render a run as folded flamegraph stacks, one line per unique stack,
/// sorted lexicographically (deterministic output).
#[must_use]
pub fn to_folded(model: &RunModel) -> String {
    let spans = model.aligned_spans();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for t in &model.ranks {
        let rank = t.rank();
        let rank_spans: Vec<&AlignedSpan> = spans.iter().filter(|s| s.rank == rank).collect();
        fold_rank(&format!("rank-{rank}"), &rank_spans, &mut folded);
    }
    let mut out = String::new();
    for (path, weight) in &folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AlignedSpan;
    use crate::model::RunModel;

    fn span(rank: u64, name: &str, start_us: i64, dur_us: u64) -> AlignedSpan {
        AlignedSpan {
            rank,
            name: name.to_string(),
            start_us,
            dur_us,
        }
    }

    fn fold(spans: Vec<AlignedSpan>) -> BTreeMap<String, u64> {
        let mut folded = BTreeMap::new();
        let refs: Vec<&AlignedSpan> = spans.iter().collect();
        fold_rank("rank-0", &refs, &mut folded);
        folded
    }

    #[test]
    fn nesting_follows_time_containment_and_weights_are_self_time() {
        // run [0,100) contains mi [10,90) contains tile [20,30).
        let folded = fold(vec![
            span(0, "run", 0, 100),
            span(0, "mi", 10, 80),
            span(0, "tile", 20, 10),
        ]);
        assert_eq!(folded.get("rank-0;run"), Some(&20)); // 100 - 80
        assert_eq!(folded.get("rank-0;run;mi"), Some(&70)); // 80 - 10
        assert_eq!(folded.get("rank-0;run;mi;tile"), Some(&10));
        assert_eq!(
            folded.values().sum::<u64>(),
            100,
            "self times sum to the root"
        );
    }

    #[test]
    fn siblings_share_a_parent_and_identical_stacks_merge() {
        let folded = fold(vec![
            span(0, "run", 0, 100),
            span(0, "tile", 10, 20),
            span(0, "tile", 40, 20),
        ]);
        assert_eq!(folded.get("rank-0;run;tile"), Some(&40), "two tiles merge");
        assert_eq!(folded.get("rank-0;run"), Some(&60));
    }

    #[test]
    fn disjoint_top_level_spans_are_separate_roots() {
        let folded = fold(vec![span(0, "prep", 0, 10), span(0, "mi", 10, 30)]);
        assert_eq!(folded.get("rank-0;prep"), Some(&10));
        assert_eq!(folded.get("rank-0;mi"), Some(&30));
    }

    #[test]
    fn multi_rank_output_has_one_subtree_per_rank() {
        use crate::ingest;
        use gnet_trace::{Recorder, Value};
        let mut traces = Vec::new();
        for r in 0..2u64 {
            let rec = Recorder::enabled();
            {
                let _s = rec.span("rank.work");
            }
            let mut out = Vec::new();
            rec.write_ndjson_with_meta(&mut out, &[("rank", Value::U64(r))])
                .expect("vec sink");
            traces.push(
                ingest::parse_ndjson(&String::from_utf8(out).expect("utf-8")).expect("parses"),
            );
        }
        let model = RunModel::from_traces(traces).expect("two ranks");
        let folded = to_folded(&model);
        assert!(folded.contains("rank-0;rank.work "));
        assert!(folded.contains("rank-1;rank.work "));
    }
}
