//! Strict NDJSON ingestion of gnet-trace streams.
//!
//! The parser is deliberately *closed-world*: every record type and every
//! key on every record must be one the gnet-trace exporter is known to
//! emit (DESIGN.md §9, plus the per-rank meta extensions of §12). An
//! unknown `type`, an unknown key, or a wrongly-typed value is an
//! [`IngestError`], not a warning — this is what makes the round-trip
//! corpus test fail the moment the producer and this consumer drift
//! apart, instead of silently dropping data from reports.

use serde::{Content, Deserialize, Error as SerdeError};
use std::fmt;

/// A parsed JSON value, kept as the vendored serde [`Content`] tree.
///
/// The vendored `serde_json` exposes no generic `Value`; this newtype's
/// [`Deserialize`] impl simply keeps the tree, giving the ingester a raw
/// parse to walk strictly.
pub(crate) struct Raw(pub(crate) Content);

impl Deserialize for Raw {
    fn deserialize(content: &Content) -> Result<Self, SerdeError> {
        Ok(Raw(content.clone()))
    }
}

/// A malformed or unrecognized trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestError {
    /// 1-based line number within the stream.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IngestError {}

/// The meta line of one stream.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Schema version (`1` is the only one understood).
    pub version: u64,
    /// Recorder elapsed time at export, µs.
    pub elapsed_us: u64,
    /// Rank id, present on per-rank streams from distributed runs.
    pub rank: Option<u64>,
    /// Total ranks in the run, present on per-rank streams.
    pub ranks: Option<u64>,
    /// Trace-clock offset from rank 0, µs (per-rank streams).
    pub clock_offset_us: Option<i64>,
}

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// `null` (a non-finite float on the producer side).
    Null,
}

impl FieldValue {
    /// The value as u64 if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::U64(v) => Some(*v),
            Self::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as f64 if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::U64(v) => Some(*v as f64),
            Self::I64(v) => Some(*v as f64),
            Self::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name.
    pub name: String,
    /// Start, µs since the stream's epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

impl SpanRec {
    /// End of the span, µs since epoch (saturating).
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// One point event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRec {
    /// Event name.
    pub name: String,
    /// Timestamp, µs since epoch (wall or simulated — the producer
    /// decides; `sim.*` events carry modeled time).
    pub t_us: u64,
    /// Typed fields, in producer order.
    pub fields: Vec<(String, FieldValue)>,
}

impl EventRec {
    /// Field lookup by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// One counter total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRec {
    /// Counter name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One histogram summary.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramRec {
    /// Histogram name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations, µs.
    pub sum_us: u64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Minimum, µs.
    pub min_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
    /// p50, µs.
    pub p50_us: u64,
    /// p95, µs.
    pub p95_us: u64,
    /// p99, µs.
    pub p99_us: u64,
    /// Sparse buckets: `(inclusive upper bound or None for overflow,
    /// count)`.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// One fully parsed NDJSON stream (one process or one rank).
#[derive(Clone, Debug, PartialEq)]
pub struct RankTrace {
    /// The stream's meta line.
    pub meta: TraceMeta,
    /// Spans, in producer order.
    pub spans: Vec<SpanRec>,
    /// Events, in producer order.
    pub events: Vec<EventRec>,
    /// Counters, in producer order.
    pub counters: Vec<CounterRec>,
    /// Histograms, in producer order.
    pub histograms: Vec<HistogramRec>,
}

impl RankTrace {
    /// Rank id of this stream (0 for single-process traces).
    #[must_use]
    pub fn rank(&self) -> u64 {
        self.meta.rank.unwrap_or(0)
    }

    /// Clock offset to subtract to land on rank 0's timebase.
    #[must_use]
    pub fn clock_offset_us(&self) -> i64 {
        self.meta.clock_offset_us.unwrap_or(0)
    }

    /// Counter value by name, if recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// First event with the given name, if any.
    #[must_use]
    pub fn event(&self, name: &str) -> Option<&EventRec> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Total records (spans + events + counters + histograms).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.spans.len() + self.events.len() + self.counters.len() + self.histograms.len()
    }
}

// ---------------------------------------------------------------------------
// Strict Content walking
// ---------------------------------------------------------------------------

pub(crate) type LineResult<T> = Result<T, String>;

pub(crate) fn as_map(c: &Content) -> LineResult<&[(String, Content)]> {
    match c {
        Content::Map(entries) => Ok(entries),
        other => Err(format!("expected a JSON object, found {}", other.kind())),
    }
}

/// Reject any key outside `allowed` — the unknown-field drift tripwire.
pub(crate) fn check_keys(entries: &[(String, Content)], allowed: &[&str]) -> LineResult<()> {
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "unknown field `{k}` (producer/consumer schema drift?)"
            ));
        }
    }
    Ok(())
}

pub(crate) fn get<'c>(entries: &'c [(String, Content)], key: &str) -> LineResult<&'c Content> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

pub(crate) fn get_u64(entries: &[(String, Content)], key: &str) -> LineResult<u64> {
    match get(entries, key)? {
        Content::U64(v) => Ok(*v),
        Content::I64(v) if *v >= 0 => Ok(*v as u64),
        other => Err(format!(
            "field `{key}`: expected unsigned integer, found {}",
            other.kind()
        )),
    }
}

pub(crate) fn get_i64(entries: &[(String, Content)], key: &str) -> LineResult<i64> {
    match get(entries, key)? {
        Content::I64(v) => Ok(*v),
        Content::U64(v) => {
            i64::try_from(*v).map_err(|_| format!("field `{key}`: integer out of i64 range"))
        }
        other => Err(format!(
            "field `{key}`: expected integer, found {}",
            other.kind()
        )),
    }
}

pub(crate) fn get_f64(entries: &[(String, Content)], key: &str) -> LineResult<f64> {
    match get(entries, key)? {
        Content::F64(v) => Ok(*v),
        Content::U64(v) => Ok(*v as f64),
        Content::I64(v) => Ok(*v as f64),
        other => Err(format!(
            "field `{key}`: expected number, found {}",
            other.kind()
        )),
    }
}

pub(crate) fn get_str(entries: &[(String, Content)], key: &str) -> LineResult<String> {
    match get(entries, key)? {
        Content::Str(s) => Ok(s.clone()),
        other => Err(format!(
            "field `{key}`: expected string, found {}",
            other.kind()
        )),
    }
}

fn field_value(c: &Content) -> LineResult<FieldValue> {
    Ok(match c {
        Content::U64(v) => FieldValue::U64(*v),
        Content::I64(v) => FieldValue::I64(*v),
        Content::F64(v) => FieldValue::F64(*v),
        Content::Str(s) => FieldValue::Str(s.clone()),
        Content::Bool(b) => FieldValue::Bool(*b),
        Content::Null => FieldValue::Null,
        other => return Err(format!("event field: unexpected {}", other.kind())),
    })
}

fn parse_meta(entries: &[(String, Content)]) -> LineResult<TraceMeta> {
    check_keys(
        entries,
        &[
            "type",
            "format",
            "version",
            "elapsed_us",
            "rank",
            "ranks",
            "clock_offset_us",
        ],
    )?;
    let format = get_str(entries, "format")?;
    if format != "gnet-trace" {
        return Err(format!("not a gnet-trace stream (format `{format}`)"));
    }
    let version = get_u64(entries, "version")?;
    if version != 1 {
        return Err(format!("unsupported gnet-trace version {version}"));
    }
    Ok(TraceMeta {
        version,
        elapsed_us: get_u64(entries, "elapsed_us")?,
        rank: entries
            .iter()
            .any(|(k, _)| k == "rank")
            .then(|| get_u64(entries, "rank"))
            .transpose()?,
        ranks: entries
            .iter()
            .any(|(k, _)| k == "ranks")
            .then(|| get_u64(entries, "ranks"))
            .transpose()?,
        clock_offset_us: entries
            .iter()
            .any(|(k, _)| k == "clock_offset_us")
            .then(|| get_i64(entries, "clock_offset_us"))
            .transpose()?,
    })
}

fn parse_span(entries: &[(String, Content)]) -> LineResult<SpanRec> {
    check_keys(entries, &["type", "name", "start_us", "dur_us"])?;
    Ok(SpanRec {
        name: get_str(entries, "name")?,
        start_us: get_u64(entries, "start_us")?,
        dur_us: get_u64(entries, "dur_us")?,
    })
}

fn parse_event(entries: &[(String, Content)]) -> LineResult<EventRec> {
    check_keys(entries, &["type", "name", "t_us", "fields"])?;
    let fields = match entries.iter().find(|(k, _)| k == "fields") {
        None => Vec::new(),
        Some((_, c)) => {
            let m = as_map(c).map_err(|e| format!("event fields: {e}"))?;
            m.iter()
                .map(|(k, v)| Ok((k.clone(), field_value(v)?)))
                .collect::<LineResult<Vec<_>>>()?
        }
    };
    Ok(EventRec {
        name: get_str(entries, "name")?,
        t_us: get_u64(entries, "t_us")?,
        fields,
    })
}

fn parse_counter(entries: &[(String, Content)]) -> LineResult<CounterRec> {
    check_keys(entries, &["type", "name", "value"])?;
    Ok(CounterRec {
        name: get_str(entries, "name")?,
        value: get_u64(entries, "value")?,
    })
}

fn parse_histogram(entries: &[(String, Content)]) -> LineResult<HistogramRec> {
    check_keys(entries, &["type", "name", "data"])?;
    let data = as_map(get(entries, "data")?).map_err(|e| format!("histogram data: {e}"))?;
    check_keys(
        data,
        &[
            "count", "sum_us", "mean_us", "min_us", "max_us", "p50_us", "p95_us", "p99_us",
            "buckets",
        ],
    )?;
    let buckets = match get(data, "buckets")? {
        Content::Seq(items) => items
            .iter()
            .map(|b| {
                let bm = as_map(b).map_err(|e| format!("histogram bucket: {e}"))?;
                check_keys(bm, &["le_us", "count"])?;
                let le = match get(bm, "le_us")? {
                    Content::Null => None,
                    Content::U64(v) => Some(*v),
                    other => {
                        return Err(format!(
                            "bucket le_us: expected unsigned integer or null, found {}",
                            other.kind()
                        ))
                    }
                };
                Ok((le, get_u64(bm, "count")?))
            })
            .collect::<LineResult<Vec<_>>>()?,
        other => {
            return Err(format!(
                "histogram buckets: expected sequence, found {}",
                other.kind()
            ))
        }
    };
    Ok(HistogramRec {
        name: get_str(entries, "name")?,
        count: get_u64(data, "count")?,
        sum_us: get_u64(data, "sum_us")?,
        mean_us: get_f64(data, "mean_us")?,
        min_us: get_u64(data, "min_us")?,
        max_us: get_u64(data, "max_us")?,
        p50_us: get_u64(data, "p50_us")?,
        p95_us: get_u64(data, "p95_us")?,
        p99_us: get_u64(data, "p99_us")?,
        buckets,
    })
}

/// The coordinator-written manifest of a traced distributed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Schema version (`1`).
    pub version: u64,
    /// Rank count.
    pub ranks: u64,
    /// Ranks that crashed (fault injection) during the run.
    pub crashed_ranks: Vec<u64>,
    /// Per-rank stream file names, relative to the manifest.
    pub files: Vec<String>,
}

/// Parse a `manifest.json` written by a traced distributed run.
///
/// # Errors
/// [`IngestError`] (line 1) on malformed JSON, an unknown format string
/// or version, missing fields, or unknown keys.
pub fn parse_manifest(text: &str) -> Result<Manifest, IngestError> {
    let err = |message: String| IngestError { line: 1, message };
    let raw: Raw = serde_json::from_str(text.trim())
        .map_err(|e| err(format!("invalid manifest JSON: {e}")))?;
    let entries = as_map(&raw.0).map_err(&err)?;
    check_keys(
        entries,
        &["format", "version", "ranks", "crashed_ranks", "files"],
    )
    .map_err(&err)?;
    let format = get_str(entries, "format").map_err(&err)?;
    if format != "gnet-trace-manifest" {
        return Err(err(format!("not a trace manifest (format `{format}`)")));
    }
    let version = get_u64(entries, "version").map_err(&err)?;
    if version != 1 {
        return Err(err(format!("unsupported manifest version {version}")));
    }
    let u64_seq = |key: &str| -> LineResult<Vec<u64>> {
        match get(entries, key)? {
            Content::Seq(items) => items
                .iter()
                .map(|c| match c {
                    Content::U64(v) => Ok(*v),
                    Content::I64(v) if *v >= 0 => Ok(*v as u64),
                    other => Err(format!(
                        "manifest `{key}`: expected unsigned integer, found {}",
                        other.kind()
                    )),
                })
                .collect(),
            other => Err(format!(
                "manifest `{key}`: expected sequence, found {}",
                other.kind()
            )),
        }
    };
    let files = match get(entries, "files").map_err(&err)? {
        Content::Seq(items) => items
            .iter()
            .map(|c| match c {
                Content::Str(s) => Ok(s.clone()),
                other => Err(err(format!(
                    "manifest `files`: expected string, found {}",
                    other.kind()
                ))),
            })
            .collect::<Result<Vec<_>, _>>()?,
        other => {
            return Err(err(format!(
                "manifest `files`: expected sequence, found {}",
                other.kind()
            )))
        }
    };
    Ok(Manifest {
        version,
        ranks: get_u64(entries, "ranks").map_err(&err)?,
        crashed_ranks: u64_seq("crashed_ranks").map_err(&err)?,
        files,
    })
}

/// Parse one full NDJSON stream.
///
/// # Errors
/// [`IngestError`] (with the 1-based line number) on the first malformed,
/// unknown, or drifted line; on a missing/duplicated meta line; and on
/// empty input.
pub fn parse_ndjson(text: &str) -> Result<RankTrace, IngestError> {
    let mut meta: Option<TraceMeta> = None;
    let mut spans = Vec::new();
    let mut events = Vec::new();
    let mut counters = Vec::new();
    let mut histograms = Vec::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |message: String| IngestError {
            line: lineno,
            message,
        };
        if line.trim().is_empty() {
            continue;
        }
        let raw: Raw = serde_json::from_str(line).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let entries = as_map(&raw.0).map_err(&err)?;
        let kind = get_str(entries, "type").map_err(&err)?;
        match kind.as_str() {
            "meta" => {
                let m = parse_meta(entries).map_err(&err)?;
                if meta.replace(m).is_some() {
                    return Err(err("duplicate meta line".to_string()));
                }
            }
            "span" => spans.push(parse_span(entries).map_err(&err)?),
            "event" => events.push(parse_event(entries).map_err(&err)?),
            "counter" => counters.push(parse_counter(entries).map_err(&err)?),
            "histogram" => histograms.push(parse_histogram(entries).map_err(&err)?),
            other => {
                return Err(err(format!(
                    "unknown record type `{other}` (producer/consumer schema drift?)"
                )))
            }
        }
        if meta.is_none() {
            return Err(err("first line must be the meta line".to_string()));
        }
    }

    let meta = meta.ok_or(IngestError {
        line: 0,
        message: "empty stream: no meta line".to_string(),
    })?;
    Ok(RankTrace {
        meta,
        spans,
        events,
        counters,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_trace::{Recorder, Value};
    use std::time::Duration;

    fn exported(rec: &Recorder) -> String {
        let mut out = Vec::new();
        rec.write_ndjson(&mut out).expect("vec sink cannot fail");
        String::from_utf8(out).expect("ndjson is utf-8")
    }

    #[test]
    fn parses_every_record_kind() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("stage.mi");
        }
        rec.counter_add("mi.pairs", 42);
        rec.observe("scheduler.tile_us", Duration::from_micros(900));
        rec.event(
            "pipeline.done",
            &[
                ("pairs", Value::U64(42)),
                ("threshold", Value::F64(0.25)),
                ("label", Value::Str("x".into())),
                ("ok", Value::Bool(true)),
                ("delta", Value::I64(-3)),
                ("nan", Value::F64(f64::NAN)),
            ],
        );
        let trace = parse_ndjson(&exported(&rec)).expect("well-formed stream parses");
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "stage.mi");
        assert_eq!(trace.counter("mi.pairs"), Some(42));
        assert_eq!(trace.histograms.len(), 1);
        assert_eq!(trace.histograms[0].count, 1);
        let e = trace.event("pipeline.done").expect("event parsed");
        assert_eq!(e.field("pairs").and_then(FieldValue::as_u64), Some(42));
        assert_eq!(e.field("delta"), Some(&FieldValue::I64(-3)));
        assert_eq!(e.field("ok"), Some(&FieldValue::Bool(true)));
        assert_eq!(e.field("nan"), Some(&FieldValue::Null));
        assert_eq!(trace.rank(), 0);
    }

    #[test]
    fn meta_extensions_parse() {
        let rec = Recorder::enabled();
        let mut out = Vec::new();
        rec.write_ndjson_with_meta(
            &mut out,
            &[
                ("rank", Value::U64(2)),
                ("ranks", Value::U64(4)),
                ("clock_offset_us", Value::I64(-17)),
            ],
        )
        .expect("vec sink cannot fail");
        let trace =
            parse_ndjson(&String::from_utf8(out).expect("utf-8")).expect("meta extensions parse");
        assert_eq!(trace.meta.rank, Some(2));
        assert_eq!(trace.meta.ranks, Some(4));
        assert_eq!(trace.clock_offset_us(), -17);
    }

    #[test]
    fn unknown_field_is_rejected() {
        let text = "{\"type\":\"meta\",\"format\":\"gnet-trace\",\"version\":1,\"elapsed_us\":5}\n\
                    {\"type\":\"span\",\"name\":\"x\",\"start_us\":0,\"dur_us\":1,\"surprise\":9}\n";
        let err = parse_ndjson(text).expect_err("unknown key must fail");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("surprise"), "{err}");
        assert!(err.message.contains("drift"), "{err}");
    }

    #[test]
    fn unknown_record_type_is_rejected() {
        let text = "{\"type\":\"meta\",\"format\":\"gnet-trace\",\"version\":1,\"elapsed_us\":5}\n\
                    {\"type\":\"gauge\",\"name\":\"x\",\"value\":1}\n";
        let err = parse_ndjson(text).expect_err("unknown type must fail");
        assert!(err.message.contains("gauge"), "{err}");
    }

    #[test]
    fn missing_meta_and_wrong_version_are_rejected() {
        let no_meta = "{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n";
        assert!(parse_ndjson(no_meta).is_err());
        assert!(parse_ndjson("").is_err());
        let v2 = "{\"type\":\"meta\",\"format\":\"gnet-trace\",\"version\":2,\"elapsed_us\":5}\n";
        let err = parse_ndjson(v2).expect_err("future version must fail");
        assert!(err.message.contains("version"), "{err}");
    }

    #[test]
    fn disabled_recorder_stream_is_a_valid_empty_trace() {
        let trace = parse_ndjson(&exported(&Recorder::disabled())).expect("meta-only parses");
        assert_eq!(trace.record_count(), 0);
    }
}
