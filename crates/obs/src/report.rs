//! Timeline analysis: load balance, critical path, perf attribution.
//!
//! Everything here is pure computation over a [`RunModel`]; the only
//! non-determinism is the optional live kernel calibration used to put
//! a "percent of modeled peak" column next to measured MI throughput
//! (callers can skip it and pass `None`).

use crate::ingest::FieldValue;
use crate::model::{AlignedSpan, RunModel};
use gnet_phi::calibrate::{measure_kernel, KernelRate};
use gnet_phi::KernelClass;
use std::fmt::Write as _;

/// The run shape stamped by the pipeline's `run.config` event.
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    /// Gene count.
    pub genes: u64,
    /// Samples per gene.
    pub samples: u64,
    /// Permutations per pair.
    pub permutations: u64,
    /// Kernel slug (`scalar` / `vector`).
    pub kernel: String,
    /// Worker threads.
    pub threads: u64,
    /// Tile size.
    pub tile_size: u64,
    /// Scheduler policy slug.
    pub scheduler: String,
}

impl RunConfig {
    /// Extract the config from a run's `run.config` event, if stamped.
    #[must_use]
    pub fn from_model(model: &RunModel) -> Option<Self> {
        let e = model.run_config()?;
        let u = |k: &str| e.field(k).and_then(FieldValue::as_u64);
        Some(Self {
            genes: u("genes")?,
            samples: u("samples")?,
            permutations: u("permutations")?,
            kernel: e.field("kernel")?.as_str()?.to_string(),
            threads: u("threads")?,
            tile_size: u("tile_size")?,
            scheduler: e.field("scheduler")?.as_str()?.to_string(),
        })
    }
}

/// One rank's load summary.
#[derive(Clone, Debug, PartialEq)]
pub struct RankLoad {
    /// Rank id.
    pub rank: u64,
    /// Busy time: union of the rank's span intervals, µs (overlapping
    /// spans — nested stages, per-thread work — are not double-counted).
    pub busy_us: u64,
    /// Busy time / run makespan (0 when the makespan is 0).
    pub utilization: f64,
    /// Per-thread tile-claim counts from `scheduler.claims.t<tid>`,
    /// sorted by thread id.
    pub thread_claims: Vec<(u64, u64)>,
    /// Pairs attributed to this rank (`rank.pairs`, or `mi.pairs` for
    /// single-process runs).
    pub pairs: Option<u64>,
    /// Whether the manifest flags this rank as crashed.
    pub crashed: bool,
}

/// One rank's TCP transport counters (`tcp.*`), published by the
/// loopback/cluster TCP transport. Absent for single-process and
/// in-process-channel runs, so the report section only appears when a
/// run actually crossed the network.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransportLoad {
    /// Rank id.
    pub rank: u64,
    /// Mesh connections established by this rank (dial side).
    pub connects: u64,
    /// Dial attempts that needed a retry before succeeding.
    pub connect_retries: u64,
    /// Protocol frames written to peers.
    pub frames_sent: u64,
    /// Protocol frames read from peers.
    pub frames_recv: u64,
    /// Frame payload bytes written (headers included).
    pub frame_bytes_sent: u64,
    /// Frame payload bytes read (headers included).
    pub frame_bytes_recv: u64,
    /// Receives that hit the per-operation deadline.
    pub deadline_expiries: u64,
    /// Peer connections that dropped mid-run (death or mid-frame cut).
    pub peer_disconnects: u64,
    /// High-water mark of frames queued to any single peer's writer
    /// (`tcp.send_queue_peak`); a large peak pinpoints the rank whose
    /// sends were backing up behind a slow or stalled receiver.
    pub send_queue_peak: u64,
}

/// One stage row of the perf-attribution table.
#[derive(Clone, Debug, PartialEq)]
pub struct StageAttribution {
    /// Stage name (span name, with per-round rank spans collapsed).
    pub stage: String,
    /// Total measured time in the stage across ranks, µs.
    pub total_us: u64,
    /// Share of summed stage time (0..=1).
    pub share: f64,
    /// Pairs attributed to the stage (MI stages only).
    pub pairs: Option<u64>,
    /// Measured throughput, pairs/s (MI stages with pairs and time).
    pub measured_pairs_per_s: Option<f64>,
    /// Modeled peak throughput at the run shape, pairs/s.
    pub modeled_pairs_per_s: Option<f64>,
    /// Measured / modeled, as a percentage.
    pub percent_of_model: Option<f64>,
}

/// The full trace report.
#[derive(Clone, Debug)]
pub struct TimelineReport {
    /// End-to-end aligned makespan, µs.
    pub makespan_us: u64,
    /// Per-rank load, sorted by rank.
    pub ranks: Vec<RankLoad>,
    /// Per-rank TCP transport counters, sorted by rank. Empty unless
    /// the rank streams carry `tcp.*` counters (multi-process runs).
    pub transport: Vec<TransportLoad>,
    /// Load imbalance: max rank busy / mean rank busy (1.0 = perfect).
    pub imbalance: f64,
    /// The critical path, latest span backwards (see [`critical_path`]).
    pub critical_path: Vec<AlignedSpan>,
    /// Time covered by the critical path, µs.
    pub critical_path_us: u64,
    /// Per-stage attribution, largest stage first.
    pub attribution: Vec<StageAttribution>,
    /// The run shape, when the trace carries a `run.config` event.
    pub config: Option<RunConfig>,
}

/// The calibrated single-thread kernel model used for attribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelModel {
    /// Nanoseconds per pair (inclusive of nulls), one thread.
    pub ns_per_pair: f64,
    /// Threads the run used (the model scales linearly with threads —
    /// the paper's dense-tile kernel is compute-bound).
    pub threads: u64,
}

impl KernelModel {
    /// Modeled peak throughput, pairs/s.
    #[must_use]
    pub fn pairs_per_second(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)] // cast-ok: thread counts are tiny
        {
            1e9 / self.ns_per_pair * self.threads as f64
        }
    }
}

/// Calibrate the MI kernel at the run's shape (a short live
/// measurement; skip for fully offline reports).
#[must_use]
pub fn calibrate_model(config: &RunConfig) -> KernelModel {
    let class = if config.kernel == "vector" {
        KernelClass::VectorDense
    } else {
        KernelClass::ScalarSparse
    };
    #[allow(clippy::cast_possible_truncation)] // cast-ok: run shapes fit usize
    let rate: KernelRate = measure_kernel(
        class,
        (config.samples as usize).max(8),
        config.permutations as usize,
        (config.genes as usize).clamp(2, 64),
        2_000,
    );
    KernelModel {
        ns_per_pair: rate.ns_per_pair,
        threads: config.threads.max(1),
    }
}

/// Union length of a set of `[start, end)` intervals, µs.
fn interval_union_us(mut iv: Vec<(i64, i64)>) -> u64 {
    iv.retain(|(s, e)| e > s);
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(i64, i64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total = total.saturating_add(ce.abs_diff(cs));
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total = total.saturating_add(ce.abs_diff(cs));
    }
    total
}

/// Greedy critical-path extraction over the aligned span set: start
/// from the latest-ending span, repeatedly hop to the latest-ending
/// span that ends at or before the current span's start, until no
/// predecessor exists. Returned earliest-first. This is the classic
/// last-finisher walk: on a barriered pipeline it recovers the chain of
/// stages that bound the makespan.
#[must_use]
pub fn critical_path(spans: &[AlignedSpan]) -> Vec<AlignedSpan> {
    let mut path: Vec<AlignedSpan> = Vec::new();
    let mut cursor: Option<&AlignedSpan> = spans.iter().max_by_key(|s| (s.end_us(), s.dur_us));
    while let Some(cur) = cursor {
        path.push(cur.clone());
        cursor = spans
            .iter()
            .filter(|s| s.end_us() <= cur.start_us)
            .max_by_key(|s| (s.end_us(), s.dur_us));
    }
    path.reverse();
    path
}

/// Collapse per-round rank span names (`rank.round.3` → `rank.round`)
/// so attribution groups rounds as one stage.
fn stage_of(name: &str) -> String {
    let trimmed = name.trim_end_matches(|c: char| c.is_ascii_digit());
    if trimmed.len() < name.len() && trimmed.ends_with('.') {
        trimmed.trim_end_matches('.').to_string()
    } else {
        name.to_string()
    }
}

/// Build the full report. `model_rates`: pass the calibrated kernel
/// model to fill the percent-of-modeled-peak column, or `None` for a
/// fully offline report.
#[must_use]
pub fn analyze(model: &RunModel, kernel_model: Option<KernelModel>) -> TimelineReport {
    let makespan_us = model.makespan_us();
    let spans = model.aligned_spans();

    // --- per-rank load -------------------------------------------------
    let mut ranks: Vec<RankLoad> = model
        .ranks
        .iter()
        .map(|t| {
            let rank = t.rank();
            let busy_us = interval_union_us(
                spans
                    .iter()
                    .filter(|s| s.rank == rank)
                    .map(|s| (s.start_us, s.end_us()))
                    .collect(),
            );
            let mut thread_claims: Vec<(u64, u64)> = t
                .counters
                .iter()
                .filter_map(|c| {
                    c.name
                        .strip_prefix("scheduler.claims.t")
                        .and_then(|tid| tid.parse::<u64>().ok())
                        .map(|tid| (tid, c.value))
                })
                .collect();
            thread_claims.sort_unstable();
            #[allow(clippy::cast_precision_loss)] // cast-ok: µs totals, report math
            let utilization = if makespan_us == 0 {
                0.0
            } else {
                busy_us as f64 / makespan_us as f64
            };
            RankLoad {
                rank,
                busy_us,
                utilization,
                thread_claims,
                pairs: t.counter("rank.pairs").or_else(|| t.counter("mi.pairs")),
                crashed: model.crashed_ranks.contains(&rank),
            }
        })
        .collect();
    ranks.sort_by_key(|r| r.rank);

    // --- transport counters --------------------------------------------
    let mut transport: Vec<TransportLoad> = model
        .ranks
        .iter()
        .filter(|t| t.counters.iter().any(|c| c.name.starts_with("tcp.")))
        .map(|t| {
            let c = |name: &str| t.counter(name).unwrap_or(0);
            TransportLoad {
                rank: t.rank(),
                connects: c("tcp.connects"),
                connect_retries: c("tcp.connect_retries"),
                frames_sent: c("tcp.frames_sent"),
                frames_recv: c("tcp.frames_recv"),
                frame_bytes_sent: c("tcp.frame_bytes_sent"),
                frame_bytes_recv: c("tcp.frame_bytes_recv"),
                deadline_expiries: c("tcp.deadline_expiries"),
                peer_disconnects: c("tcp.peer_disconnects"),
                send_queue_peak: c("tcp.send_queue_peak"),
            }
        })
        .collect();
    transport.sort_by_key(|t| t.rank);

    #[allow(clippy::cast_precision_loss)] // cast-ok: µs totals, report math
    let imbalance = {
        let busy: Vec<f64> = ranks.iter().map(|r| r.busy_us as f64).collect();
        let mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        let max = busy.iter().copied().fold(0.0f64, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    };

    // --- critical path -------------------------------------------------
    let critical_path = critical_path(&spans);
    let critical_path_us = critical_path.iter().map(|s| s.dur_us).sum();

    // --- perf attribution ----------------------------------------------
    let config = RunConfig::from_model(model);
    let mut stages: Vec<StageAttribution> = Vec::new();
    for s in &spans {
        let name = stage_of(&s.name);
        match stages.iter_mut().find(|a| a.stage == name) {
            Some(a) => a.total_us = a.total_us.saturating_add(s.dur_us),
            None => stages.push(StageAttribution {
                stage: name,
                total_us: s.dur_us,
                share: 0.0,
                pairs: None,
                measured_pairs_per_s: None,
                modeled_pairs_per_s: None,
                percent_of_model: None,
            }),
        }
    }
    let stage_total: u64 = stages.iter().map(|a| a.total_us).sum();
    let pairs_total = model
        .counter_sum("mi.pairs")
        .or_else(|| model.counter_sum("rank.pairs"));
    for a in &mut stages {
        #[allow(clippy::cast_precision_loss)] // cast-ok: µs totals, report math
        {
            a.share = if stage_total == 0 {
                0.0
            } else {
                a.total_us as f64 / stage_total as f64
            };
        }
        // MI-bearing stages: the single-process MI stage and the
        // distributed per-rank compute stages.
        let mi_stage = matches!(a.stage.as_str(), "stage.mi" | "rank.diag" | "rank.round");
        if mi_stage {
            a.pairs = pairs_total;
            #[allow(clippy::cast_precision_loss)] // cast-ok: µs totals, report math
            if let (Some(p), true) = (pairs_total, a.total_us > 0) {
                a.measured_pairs_per_s = Some(p as f64 / (a.total_us as f64 * 1e-6));
            }
        }
        if let (Some(km), Some(measured)) = (kernel_model, a.measured_pairs_per_s) {
            let modeled = km.pairs_per_second();
            a.modeled_pairs_per_s = Some(modeled);
            if modeled > 0.0 {
                a.percent_of_model = Some(measured / modeled * 100.0);
            }
        }
    }
    stages.sort_by_key(|s| std::cmp::Reverse(s.total_us));

    TimelineReport {
        makespan_us,
        ranks,
        transport,
        imbalance,
        critical_path,
        critical_path_us,
        attribution: stages,
        config,
    }
}

impl TimelineReport {
    /// Render the report as the human-readable text `gnet trace-report`
    /// prints.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== gnet trace report ==");
        if let Some(c) = &self.config {
            let _ = writeln!(
                out,
                "run: {} genes x {} samples, q={}, kernel={}, threads={}, tile={}, scheduler={}",
                c.genes, c.samples, c.permutations, c.kernel, c.threads, c.tile_size, c.scheduler
            );
        }
        let _ = writeln!(
            out,
            "makespan: {:.3} ms   load imbalance (max/mean busy): {:.3}",
            self.makespan_us as f64 / 1e3,
            self.imbalance
        );
        let _ = writeln!(out, "\n-- per-rank load --");
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>8} {:>10} {:>8} claims/thread",
            "rank", "busy_ms", "util", "pairs", "threads"
        );
        for r in &self.ranks {
            let claims = if r.thread_claims.is_empty() {
                "-".to_string()
            } else {
                r.thread_claims
                    .iter()
                    .map(|(t, c)| format!("t{t}:{c}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let _ = writeln!(
                out,
                "{:>5} {:>12.3} {:>7.1}% {:>10} {:>8} {}{}",
                r.rank,
                r.busy_us as f64 / 1e3,
                r.utilization * 100.0,
                r.pairs.map_or_else(|| "-".to_string(), |p| p.to_string()),
                r.thread_claims.len(),
                claims,
                if r.crashed { "  [crashed]" } else { "" },
            );
        }
        if !self.transport.is_empty() {
            let _ = writeln!(out, "\n-- transport (loopback/cluster tcp) --");
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>8} {:>12} {:>12} {:>9} {:>10} {:>12} {:>8}",
                "rank",
                "fr_sent",
                "fr_recv",
                "bytes_sent",
                "bytes_recv",
                "retries",
                "deadlines",
                "disconnects",
                "queue_pk"
            );
            for t in &self.transport {
                let _ = writeln!(
                    out,
                    "{:>5} {:>8} {:>8} {:>12} {:>12} {:>9} {:>10} {:>12} {:>8}",
                    t.rank,
                    t.frames_sent,
                    t.frames_recv,
                    t.frame_bytes_sent,
                    t.frame_bytes_recv,
                    t.connect_retries,
                    t.deadline_expiries,
                    t.peer_disconnects,
                    t.send_queue_peak,
                );
            }
            let deadlines: u64 = self.transport.iter().map(|t| t.deadline_expiries).sum();
            let disconnects: u64 = self.transport.iter().map(|t| t.peer_disconnects).sum();
            if deadlines > 0 || disconnects > 0 {
                let _ = writeln!(
                    out,
                    "  network stalls: {deadlines} deadline expiries, \
                     {disconnects} peer disconnects — receive time on the \
                     affected ranks includes waiting out these events"
                );
            }
        }
        let _ = writeln!(
            out,
            "\n-- critical path ({} spans) --",
            self.critical_path.len()
        );
        for s in &self.critical_path {
            let _ = writeln!(
                out,
                "  rank {:>2}  {:>10.3} ms  +{:>10.3} ms  {}",
                s.rank,
                s.start_us as f64 / 1e3,
                s.dur_us as f64 / 1e3,
                s.name
            );
        }
        let _ = writeln!(
            out,
            "  critical path time: {:.3} ms ({:.1}% of makespan)",
            self.critical_path_us as f64 / 1e3,
            if self.makespan_us == 0 {
                0.0
            } else {
                self.critical_path_us as f64 / self.makespan_us as f64 * 100.0
            }
        );
        let _ = writeln!(out, "\n-- perf attribution --");
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>7} {:>14} {:>14} {:>9}",
            "stage", "total_ms", "share", "pairs/s", "model pairs/s", "% model"
        );
        for a in &self.attribution {
            let fmt_rate =
                |v: Option<f64>| v.map_or_else(|| "-".to_string(), |r| format!("{r:.0}"));
            let _ = writeln!(
                out,
                "{:<16} {:>12.3} {:>6.1}% {:>14} {:>14} {:>9}",
                a.stage,
                a.total_us as f64 / 1e3,
                a.share * 100.0,
                fmt_rate(a.measured_pairs_per_s),
                fmt_rate(a.modeled_pairs_per_s),
                a.percent_of_model
                    .map_or_else(|| "-".to_string(), |p| format!("{p:.1}%")),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: u64, name: &str, start_us: i64, dur_us: u64) -> AlignedSpan {
        AlignedSpan {
            rank,
            name: name.to_string(),
            start_us,
            dur_us,
        }
    }

    #[test]
    fn interval_union_merges_overlaps() {
        assert_eq!(interval_union_us(vec![]), 0);
        assert_eq!(interval_union_us(vec![(0, 10), (5, 15)]), 15);
        assert_eq!(interval_union_us(vec![(0, 10), (20, 30)]), 20);
        assert_eq!(interval_union_us(vec![(0, 100), (10, 20)]), 100);
        assert_eq!(interval_union_us(vec![(5, 5), (3, 1)]), 0);
        assert_eq!(interval_union_us(vec![(-10, -5), (-7, 3)]), 13);
    }

    #[test]
    fn critical_path_walks_latest_finishers() {
        let spans = vec![
            span(0, "stage.prep", 0, 10),
            span(0, "stage.mi", 10, 50),
            span(1, "stage.mi", 10, 80), // last finisher
            span(0, "stage.finalize", 95, 5),
        ];
        let path = critical_path(&spans);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["stage.prep", "stage.mi", "stage.finalize"]);
        assert_eq!(path[1].rank, 1, "the longer MI span is on the path");
    }

    #[test]
    fn critical_path_of_empty_span_set_is_empty() {
        assert!(critical_path(&[]).is_empty());
    }

    #[test]
    fn stage_names_collapse_round_indices() {
        assert_eq!(stage_of("rank.round.3"), "rank.round");
        assert_eq!(stage_of("rank.round.12"), "rank.round");
        assert_eq!(stage_of("stage.mi"), "stage.mi");
        assert_eq!(stage_of("rank.prep"), "rank.prep");
    }

    fn trace_with_counters(rank: u64, counters: Vec<(&str, u64)>) -> crate::ingest::RankTrace {
        crate::ingest::RankTrace {
            meta: crate::ingest::TraceMeta {
                version: 1,
                elapsed_us: 1_000,
                rank: Some(rank),
                ranks: Some(2),
                clock_offset_us: Some(0),
            },
            spans: Vec::new(),
            events: Vec::new(),
            counters: counters
                .into_iter()
                .map(|(name, value)| crate::ingest::CounterRec {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn transport_section_appears_only_when_ranks_carry_tcp_counters() {
        let tcp = RunModel::from_traces(vec![
            trace_with_counters(
                0,
                vec![("tcp.frames_sent", 9), ("tcp.frame_bytes_sent", 640)],
            ),
            trace_with_counters(
                1,
                vec![
                    ("tcp.frames_sent", 7),
                    ("tcp.deadline_expiries", 2),
                    ("tcp.peer_disconnects", 1),
                    ("tcp.send_queue_peak", 5),
                ],
            ),
        ])
        .expect("paired streams build a model");
        let report = analyze(&tcp, None);
        assert_eq!(report.transport.len(), 2);
        assert_eq!(report.transport[0].frames_sent, 9);
        assert_eq!(report.transport[1].deadline_expiries, 2);
        assert_eq!(report.transport[1].send_queue_peak, 5);
        let text = report.render_text();
        assert!(
            text.contains("-- transport (loopback/cluster tcp) --"),
            "{text}"
        );
        assert!(
            text.contains("network stalls: 2 deadline expiries, 1 peer disconnects"),
            "{text}"
        );

        let channel = RunModel::from_traces(vec![
            trace_with_counters(0, vec![("rank.pairs", 100)]),
            trace_with_counters(1, vec![("rank.pairs", 89)]),
        ])
        .expect("paired streams build a model");
        let report = analyze(&channel, None);
        assert!(report.transport.is_empty());
        assert!(
            !report.render_text().contains("transport"),
            "no tcp, no section"
        );
    }

    #[test]
    fn healthy_transport_omits_the_stall_line() {
        let model = RunModel::from_traces(vec![trace_with_counters(
            0,
            vec![("tcp.frames_sent", 4), ("tcp.frames_recv", 4)],
        )])
        .expect("single stream builds a model");
        let text = analyze(&model, None).render_text();
        assert!(text.contains("-- transport"), "{text}");
        assert!(!text.contains("network stalls"), "{text}");
    }

    #[test]
    fn kernel_model_scales_with_threads() {
        let m = KernelModel {
            ns_per_pair: 1000.0,
            threads: 4,
        };
        let pps = m.pairs_per_second();
        assert!((pps - 4_000_000.0).abs() < 1e-6, "{pps}");
    }
}
