//! Closed-world validators for the live-telemetry pull surfaces.
//!
//! The producer side (`gnet-telemetry`) pins the `gnet-status/1` JSON
//! schema and the Prometheus metric-name set (DESIGN.md §17); this
//! module is the consumer-side tripwire, in the same spirit as the
//! strict NDJSON ingester: every key must be one the renderer is known
//! to emit **and** every pinned key must be present, so either side
//! drifting breaks the CI smoke job instead of silently widening the
//! contract. Scrape a live `/status` or `/metrics` (or read a
//! `--status-file`) and feed the bytes here.

use crate::ingest::{as_map, check_keys, get, get_f64, get_str, get_u64, Raw};
use serde::Content;
use std::fmt;

/// A status document or exposition that failed closed-world validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusError(
    /// What was wrong.
    pub String,
);

impl fmt::Display for StatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "status validation: {}", self.0)
    }
}

impl std::error::Error for StatusError {}

fn err<T>(message: impl Into<String>) -> Result<T, StatusError> {
    Err(StatusError(message.into()))
}

/// One validated `per_rank` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct RankDigest {
    /// Rank id (equals its index in `per_rank`).
    pub rank: u64,
    /// Presumed dead by the census/liveness path.
    pub dead: bool,
    /// Sent its final done-beat.
    pub done: bool,
    /// Heartbeat overdue right now.
    pub suspect: bool,
    /// Flagged as a straggler right now.
    pub straggler: bool,
    /// Last reported ring round.
    pub round: u64,
    /// Pairs this rank completed.
    pub pairs: u64,
    /// EWMA pair rate, pairs/s.
    pub pairs_per_s: f64,
    /// Age of the last heartbeat, µs (`None` before the first beat).
    pub beat_age_us: Option<u64>,
    /// Heartbeats folded into the view.
    pub beats: u64,
    /// Send-queue depth the rank last reported.
    pub queue_depth: u64,
}

/// The digest of a validated `gnet-status/1` document — enough for
/// `gnet status` to render its one-screen summary and for the CI smoke
/// job to assert liveness properties, without re-parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusSummary {
    /// `running` or `done`.
    pub state: String,
    /// Rank count.
    pub ranks: u64,
    /// Wall-clock µs since the run started.
    pub elapsed_us: u64,
    /// Pairs completed across ranks.
    pub pairs_done: u64,
    /// Pairs the run will compute.
    pub pairs_total: u64,
    /// Cluster-wide completion rate, pairs/s.
    pub pairs_per_s: f64,
    /// Smoothed estimate of µs remaining, when one exists.
    pub eta_us: Option<u64>,
    /// Highest ring round any rank reported.
    pub round_max: u64,
    /// Ranks currently flagged as stragglers.
    pub stragglers: Vec<u64>,
    /// Ranks ever flagged as stragglers.
    pub stragglers_seen: Vec<u64>,
    /// Per-rank digests, indexed by rank.
    pub per_rank: Vec<RankDigest>,
}

/// Exact top-level key set of `gnet-status/1`.
const TOP_KEYS: &[&str] = &[
    "format",
    "version",
    "state",
    "elapsed_us",
    "ranks",
    "round_max",
    "pairs_done",
    "pairs_total",
    "pairs_per_s",
    "eta_us",
    "interval_us",
    "stragglers",
    "stragglers_seen",
    "per_rank",
];

/// Exact per-rank key set of `gnet-status/1`.
const RANK_KEYS: &[&str] = &[
    "rank",
    "dead",
    "done",
    "suspect",
    "straggler",
    "round",
    "pairs",
    "pairs_per_s",
    "beat_age_us",
    "beats",
    "queue_depth",
    "counters",
];

/// Fixed Prometheus metric-name set (dynamic counters ride in the
/// `counter` label of `gnet_rank_counter_total`, never as new names).
const PROM_NAMES: &[&str] = &[
    "gnet_up",
    "gnet_elapsed_seconds",
    "gnet_ranks",
    "gnet_pairs_done_total",
    "gnet_pairs_total",
    "gnet_pairs_per_second",
    "gnet_eta_seconds",
    "gnet_rank_pairs_total",
    "gnet_rank_pairs_per_second",
    "gnet_rank_round",
    "gnet_rank_heartbeat_age_seconds",
    "gnet_rank_heartbeats_total",
    "gnet_rank_queue_depth",
    "gnet_rank_up",
    "gnet_rank_straggler",
    "gnet_rank_counter_total",
];

fn get_bool(entries: &[(String, Content)], key: &str) -> Result<bool, String> {
    match get(entries, key)? {
        Content::Bool(b) => Ok(*b),
        other => Err(format!(
            "field `{key}`: expected bool, found {}",
            other.kind()
        )),
    }
}

/// `u64` or literal `null` (the renderer never omits nullable fields).
fn get_nullable_u64(entries: &[(String, Content)], key: &str) -> Result<Option<u64>, String> {
    match get(entries, key)? {
        Content::Null => Ok(None),
        Content::U64(v) => Ok(Some(*v)),
        Content::I64(v) if *v >= 0 => Ok(Some(*v as u64)),
        other => Err(format!(
            "field `{key}`: expected unsigned integer or null, found {}",
            other.kind()
        )),
    }
}

fn get_u64_list(entries: &[(String, Content)], key: &str) -> Result<Vec<u64>, String> {
    let Content::Seq(items) = get(entries, key)? else {
        return Err(format!("field `{key}`: expected an array"));
    };
    items
        .iter()
        .map(|item| match item {
            Content::U64(v) => Ok(*v),
            Content::I64(v) if *v >= 0 => Ok(*v as u64),
            other => Err(format!(
                "field `{key}`: expected unsigned integers, found {}",
                other.kind()
            )),
        })
        .collect()
}

/// Validate one `gnet-status/1` JSON document, closed-world.
///
/// # Errors
/// [`StatusError`] on malformed JSON, a format/version mismatch, any
/// unknown key at either level (producer/consumer schema drift), any
/// missing pinned key, a wrongly-typed value, or a `per_rank` array
/// whose length disagrees with `ranks`.
pub fn validate_status_json(doc: &str) -> Result<StatusSummary, StatusError> {
    let raw: Raw =
        serde_json::from_str(doc.trim()).map_err(|e| StatusError(format!("invalid JSON: {e}")))?;
    let top = as_map(&raw.0).map_err(StatusError)?;
    check_keys(top, TOP_KEYS).map_err(StatusError)?;

    let format = get_str(top, "format").map_err(StatusError)?;
    if format != "gnet-status" {
        return err(format!("format `{format}` is not `gnet-status`"));
    }
    let version = get_u64(top, "version").map_err(StatusError)?;
    if version != 1 {
        return err(format!("unsupported gnet-status version {version}"));
    }
    let state = get_str(top, "state").map_err(StatusError)?;
    if state != "running" && state != "done" {
        return err(format!("state `{state}` is neither running nor done"));
    }
    let elapsed_us = get_u64(top, "elapsed_us").map_err(StatusError)?;
    let ranks = get_u64(top, "ranks").map_err(StatusError)?;
    let round_max = get_u64(top, "round_max").map_err(StatusError)?;
    let pairs_done = get_u64(top, "pairs_done").map_err(StatusError)?;
    let pairs_total = get_u64(top, "pairs_total").map_err(StatusError)?;
    let pairs_per_s = get_f64(top, "pairs_per_s").map_err(StatusError)?;
    let eta_us = get_nullable_u64(top, "eta_us").map_err(StatusError)?;
    get_u64(top, "interval_us").map_err(StatusError)?;
    let stragglers = get_u64_list(top, "stragglers").map_err(StatusError)?;
    let stragglers_seen = get_u64_list(top, "stragglers_seen").map_err(StatusError)?;

    let Content::Seq(per_rank) = get(top, "per_rank").map_err(StatusError)? else {
        return err("field `per_rank`: expected an array");
    };
    if per_rank.len() as u64 != ranks {
        return err(format!(
            "per_rank has {} entries but ranks says {ranks}",
            per_rank.len()
        ));
    }
    let mut digests = Vec::with_capacity(per_rank.len());
    for (i, entry) in per_rank.iter().enumerate() {
        let r = as_map(entry).map_err(|e| StatusError(format!("per_rank[{i}]: {e}")))?;
        let rank_err = |e: String| StatusError(format!("per_rank[{i}]: {e}"));
        check_keys(r, RANK_KEYS).map_err(rank_err)?;
        let rank = get_u64(r, "rank").map_err(rank_err)?;
        if rank != i as u64 {
            return err(format!("per_rank[{i}] carries rank {rank}"));
        }
        let counters = as_map(get(r, "counters").map_err(rank_err)?).map_err(rank_err)?;
        for (name, value) in counters {
            if !matches!(value, Content::U64(_) | Content::I64(_)) {
                return err(format!(
                    "per_rank[{i}] counter `{name}`: expected integer, found {}",
                    value.kind()
                ));
            }
        }
        digests.push(RankDigest {
            rank,
            dead: get_bool(r, "dead").map_err(rank_err)?,
            done: get_bool(r, "done").map_err(rank_err)?,
            suspect: get_bool(r, "suspect").map_err(rank_err)?,
            straggler: get_bool(r, "straggler").map_err(rank_err)?,
            round: get_u64(r, "round").map_err(rank_err)?,
            pairs: get_u64(r, "pairs").map_err(rank_err)?,
            pairs_per_s: get_f64(r, "pairs_per_s").map_err(rank_err)?,
            beat_age_us: get_nullable_u64(r, "beat_age_us").map_err(rank_err)?,
            beats: get_u64(r, "beats").map_err(rank_err)?,
            queue_depth: get_u64(r, "queue_depth").map_err(rank_err)?,
        });
    }

    Ok(StatusSummary {
        state,
        ranks,
        elapsed_us,
        pairs_done,
        pairs_total,
        pairs_per_s,
        eta_us,
        round_max,
        stragglers,
        stragglers_seen,
        per_rank: digests,
    })
}

/// Validate one Prometheus text exposition (format 0.0.4) against the
/// fixed name set, returning the number of samples.
///
/// # Errors
/// [`StatusError`] on a sample whose metric name is outside the pinned
/// set (producer/consumer schema drift), a malformed sample line, or a
/// non-numeric value.
pub fn validate_prometheus(text: &str) -> Result<u64, StatusError> {
    let mut samples = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let n = i + 1;
        let name = line.split(['{', ' ']).next().unwrap_or_default();
        if !PROM_NAMES.contains(&name) {
            return err(format!(
                "line {n}: unknown metric `{name}` (producer/consumer schema drift?)"
            ));
        }
        let value = line.rsplit(' ').next().unwrap_or_default();
        if value.parse::<f64>().is_err() {
            return err(format!("line {n}: sample value `{value}` is not a number"));
        }
        if line.contains('{') && !line.contains('}') {
            return err(format!("line {n}: unterminated label set"));
        }
        samples += 1;
    }
    if samples == 0 {
        return err("exposition carries no samples");
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_telemetry::{render_prometheus, render_status_json, ClusterView, Heartbeat};
    use std::time::{Duration, Instant};

    fn live_view() -> (ClusterView, Instant) {
        let base = Instant::now();
        let mut v = ClusterView::new(2, 500, Duration::from_millis(50));
        let mut hb = Heartbeat {
            rank: 0,
            round: 2,
            pairs: 120,
            elapsed_us: 300_000,
            ..Heartbeat::default()
        };
        hb.counters.push(("mi.pairs".into(), 120));
        v.fold_at(&hb, base + Duration::from_millis(300));
        v.fold_at(
            &Heartbeat {
                rank: 1,
                round: 2,
                pairs: 100,
                elapsed_us: 300_000,
                ..Heartbeat::default()
            },
            base + Duration::from_millis(310),
        );
        (v, base + Duration::from_millis(350))
    }

    #[test]
    fn real_renderer_output_passes_both_validators() {
        let (v, now) = live_view();
        let summary =
            validate_status_json(&render_status_json(&v, now)).expect("pinned schema validates");
        assert_eq!(summary.state, "running");
        assert_eq!(summary.ranks, 2);
        assert_eq!(summary.pairs_done, 220);
        assert_eq!(summary.pairs_total, 500);
        let beats: Vec<u64> = summary.per_rank.iter().map(|r| r.beats).collect();
        assert_eq!(beats, vec![1, 1]);
        assert!(summary.per_rank[0].beat_age_us.is_some());
        let samples =
            validate_prometheus(&render_prometheus(&v, now)).expect("pinned name set validates");
        assert!(samples >= 10, "two live ranks emit many samples: {samples}");
    }

    #[test]
    fn unknown_top_level_field_trips_the_tripwire() {
        let (v, now) = live_view();
        let doc = render_status_json(&v, now).replacen("\"state\"", "\"new_field\"", 1);
        let e = validate_status_json(&doc).expect_err("drifted doc rejected");
        assert!(e.0.contains("schema drift"), "{e}");
    }

    #[test]
    fn missing_pinned_field_is_rejected_not_defaulted() {
        // A well-formed document minus `pairs_total`: closed-world means
        // both no-unknowns AND no-absences.
        let doc = "{\"format\":\"gnet-status\",\"version\":1,\"state\":\"running\",\
                   \"elapsed_us\":1,\"ranks\":0,\"round_max\":0,\"pairs_done\":0,\
                   \"pairs_per_s\":0.0,\"eta_us\":null,\"interval_us\":1000,\
                   \"stragglers\":[],\"stragglers_seen\":[],\"per_rank\":[]}";
        let e = validate_status_json(doc).expect_err("absent pinned key rejected");
        assert!(e.0.contains("pairs_total"), "{e}");
    }

    #[test]
    fn unknown_prometheus_metric_is_rejected() {
        let (v, now) = live_view();
        let text = format!("{}gnet_surprise_total 1\n", render_prometheus(&v, now));
        let e = validate_prometheus(&text).expect_err("drifted exposition rejected");
        assert!(e.0.contains("gnet_surprise_total"), "{e}");
    }

    #[test]
    fn per_rank_length_must_match_ranks() {
        let doc = "{\"format\":\"gnet-status\",\"version\":1,\"state\":\"running\",\
                   \"elapsed_us\":1,\"ranks\":3,\"round_max\":0,\"pairs_done\":0,\
                   \"pairs_total\":10,\"pairs_per_s\":0.0,\"eta_us\":null,\
                   \"interval_us\":1000,\"stragglers\":[],\"stragglers_seen\":[],\
                   \"per_rank\":[]}";
        let e = validate_status_json(doc).expect_err("length mismatch rejected");
        assert!(e.0.contains("per_rank has 0 entries"), "{e}");
    }
}
