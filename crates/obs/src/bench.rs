//! Seeded fixed-shape benchmark suite with a statistical regression gate.
//!
//! `gnet bench` runs a small, deterministic-shape suite — the scalar and
//! vector MI kernels (the latter also re-timed with each supported SIMD
//! backend forced), the four scheduler policies, 2/4-rank in-process
//! ring runs, and a gene-append incremental update — with min-of-k
//! repetitions, and summarizes each series as `(min, median, MAD)`. The
//! *minimum* is the estimator (the least-noise observation of the true
//! cost on a shared machine); the median absolute deviation bounds the
//! run-to-run noise without assuming it is Gaussian.
//!
//! Most entries are wall times in µs. An entry's `unit` can instead be
//! `pairs` for counted work: `update.gene_append.pairs` records the
//! frontier size `g·(N−g) + g·(g−1)/2` the update engine scanned, so a
//! frontier-accounting regression (scanning more pairs than the append
//! requires) trips the same gate that catches wall-time regressions.
//!
//! The regression rule for a candidate vs a committed baseline is
//!
//! ```text
//! regressed(id)  ⇔  cand_min > base_min × RATIO_GATE
//!                              + NOISE_GATE × max(base_mad, cand_mad)
//! ```
//!
//! i.e. a candidate must be both *relatively* slower (>30 %) and slower
//! by more than the observed noise floor to fail — CI machines jitter,
//! and a pure ratio gate flags phantom regressions on µs-scale series.
//!
//! The `--inject-slowdown` hook exists so the gate itself is testable:
//! it multiplies vector-kernel work by running extra passes through
//! `gnet-mi`'s mutation-testing kernel (`MutatedVectorKernel`, the same
//! row-FMA loop), which must trip the gate at 2×.

use crate::ingest::{self, IngestError, LineResult, Raw};
use gnet_bspline::BsplineBasis;
use gnet_cluster::{
    infer_network_distributed, infer_network_distributed_live, TelemetryPlane, TelemetrySpec,
};
use gnet_core::{apply_update, build_state, infer_network, UpdateMode};
use gnet_mi::mutation::{KernelMutation, MutatedVectorKernel};
use gnet_mi::{mi_with_nulls, prepare_gene, MiKernel, MiScratch};
use gnet_parallel::SchedulerPolicy;
use gnet_permute::PermutationSet;
use gnet_simd::dispatch::{with_forced, Backend};
use serde::Content;
use std::fmt::Write as _;
use std::time::Instant;

/// Schema version of `BENCH_*.json` files.
pub const BENCH_FORMAT_VERSION: u64 = 1;
/// Issue number stamped into the artifact name (`BENCH_7.json`).
pub const BENCH_ISSUE: u64 = 7;
/// Relative slowdown a candidate must exceed to regress (1.30 = +30 %).
pub const RATIO_GATE: f64 = 1.30;
/// Noise multiplier: candidate must also exceed the baseline by this
/// many MADs (whichever side's MAD is larger).
pub const NOISE_GATE: f64 = 5.0;
/// A candidate minimum below `base_min × STALE_GATE` means the committed
/// baseline is stale: the code got ≥2× faster and the gate's +30 % band
/// now starts from a number that no longer describes the machine's real
/// cost, so a later regression back to the old speed would pass silently.
/// `gnet bench --baseline` surfaces these as improvements and suggests
/// `--update-baseline`.
pub const STALE_GATE: f64 = 0.5;

/// Suite options.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Smaller shapes and fewer repetitions (PR CI).
    pub quick: bool,
    /// Repetitions per benchmark; `None` = 3 quick / 5 full.
    pub reps: Option<usize>,
    /// Artificial vector-kernel slowdown factor (1.0 = none). Values
    /// above 1 run calibrated extra mutated-kernel passes per pair so
    /// `kernel.vector` wall time scales by ≈ this factor — the gate's
    /// self-test.
    pub slowdown: f64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            reps: None,
            slowdown: 1.0,
        }
    }
}

impl BenchOptions {
    /// Effective repetition count.
    #[must_use]
    pub fn effective_reps(&self) -> usize {
        self.reps.unwrap_or(if self.quick { 3 } else { 5 }).max(1)
    }
}

/// One benchmark's measured series.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Stable benchmark id (`kernel.vector`, `scheduler.dynamic`, …).
    pub id: String,
    /// What the values measure: `"us"` (wall time, the default) or
    /// `"pairs"` (counted work, e.g. `update.gene_append.pairs`).
    pub unit: String,
    /// All repetition values in the entry's unit, in run order.
    pub values_us: Vec<f64>,
    /// Minimum of the series (the estimator).
    pub min_us: f64,
    /// Median.
    pub median_us: f64,
    /// Median absolute deviation (the noise bound; 0 for counted work).
    pub mad_us: f64,
}

/// A whole suite run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSuite {
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Entries in run order.
    pub entries: Vec<BenchEntry>,
}

impl BenchSuite {
    /// Entry by id.
    #[must_use]
    pub fn entry(&self, id: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.id == id)
    }
}

/// One flagged regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark id.
    pub id: String,
    /// Baseline minimum, µs.
    pub base_min_us: f64,
    /// Candidate minimum, µs.
    pub cand_min_us: f64,
    /// Candidate / baseline.
    pub ratio: f64,
    /// The threshold the candidate exceeded, µs.
    pub threshold_us: f64,
}

/// One entry that got so much faster the baseline is stale (see
/// [`STALE_GATE`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Improvement {
    /// Benchmark id.
    pub id: String,
    /// Baseline minimum, µs.
    pub base_min_us: f64,
    /// Candidate minimum, µs.
    pub cand_min_us: f64,
    /// Baseline / candidate (the speedup).
    pub speedup: f64,
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        f64::midpoint(sorted[n / 2 - 1], sorted[n / 2])
    }
}

fn summarize(id: &str, unit: &str, values_us: Vec<f64>) -> BenchEntry {
    let mut sorted = values_us.clone();
    sorted.sort_by(f64::total_cmp);
    let med = median(&sorted);
    let mut deviations: Vec<f64> = sorted.iter().map(|v| (v - med).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    BenchEntry {
        id: id.to_string(),
        unit: unit.to_string(),
        min_us: sorted.first().copied().unwrap_or(0.0),
        median_us: med,
        mad_us: median(&deviations),
        values_us,
    }
}

fn time_reps<F: FnMut()>(id: &str, reps: usize, mut body: F) -> BenchEntry {
    // One untimed warm-up rep: page in code and data.
    body();
    let values: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    summarize(id, "us", values)
}

/// Pair evaluations per kernel-benchmark repetition.
fn kernel_pairs(quick: bool) -> usize {
    if quick {
        1_500
    } else {
        6_000
    }
}

fn kernel_bench(id: &str, kernel: MiKernel, opts: &BenchOptions) -> BenchEntry {
    let quick = opts.quick;
    let (genes, samples, q) = if quick { (12, 64, 4) } else { (16, 128, 8) };
    let basis = BsplineBasis::tinge_default();
    let matrix = gnet_expr::synth::independent_gaussian(genes, samples, 0x00BE_7C11);
    let prepared: Vec<_> = (0..genes)
        .map(|g| prepare_gene(matrix.gene(g), &basis))
        .collect();
    let dense: Vec<_> = prepared
        .iter()
        .map(gnet_mi::PreparedGene::to_dense)
        .collect();
    let perms = PermutationSet::generate(samples, q, 7);
    let mut scratch = MiScratch::for_basis(&basis);
    let pairs = kernel_pairs(quick);
    let mut mutated = MutatedVectorKernel::new(KernelMutation::DroppedPaddingZeroing);
    // The mutated pass runs the same row-FMA loop as the real kernel
    // but skips the pair's q null re-evaluations, so its cost per call
    // is a machine/profile-dependent fraction of a pair's cost.
    // Calibrate how many passes reproduce one pair before timing, so
    // `--inject-slowdown F` yields ≈F× wall time rather than a fixed
    // (and possibly negligible) increment.
    let extra_passes = if kernel == MiKernel::VectorDense && opts.slowdown > 1.0 {
        let probe = 32.min(pairs);
        let mut sink = 0.0f64;
        let t = Instant::now();
        for p in 0..probe {
            let (i, j) = (p % genes, (p + 1) % genes);
            sink += mi_with_nulls(
                kernel,
                &prepared[i],
                &prepared[j],
                Some(&dense[j]),
                perms.as_vecs(),
                &mut scratch,
            )
            .observed;
        }
        let pair_cost = t.elapsed().as_secs_f64() / probe as f64;
        let t = Instant::now();
        for p in 0..probe * 4 {
            let (i, j) = (p % genes, (p + 1) % genes);
            sink += mutated.mi(&prepared[i], &prepared[j], &dense[j]);
        }
        let pass_cost = (t.elapsed().as_secs_f64() / (probe * 4) as f64).max(1e-9);
        assert!(sink.is_finite(), "calibration outputs stayed finite");
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // cast-ok: clamped to [1, 1e6] before the cast
        {
            ((opts.slowdown - 1.0) * pair_cost / pass_cost)
                .ceil()
                .clamp(1.0, 1e6) as usize
        }
    } else {
        0
    };
    let reps = opts.effective_reps();
    let mut sink = 0.0f64;
    let entry = time_reps(id, reps, || {
        for p in 0..pairs {
            let i = p % genes;
            let j = (p + 1) % genes;
            if i == j {
                continue;
            }
            let r = mi_with_nulls(
                kernel,
                &prepared[i],
                &prepared[j],
                Some(&dense[j]),
                perms.as_vecs(),
                &mut scratch,
            );
            sink += r.observed;
            if kernel == MiKernel::VectorDense {
                for _ in 0..extra_passes {
                    sink += mutated.mi(&prepared[i], &prepared[j], &dense[j]);
                }
            }
        }
    });
    assert!(sink.is_finite(), "kernel outputs stayed finite");
    entry
}

fn scheduler_bench(policy: SchedulerPolicy, opts: &BenchOptions) -> BenchEntry {
    let (genes, samples, q, threads) = if opts.quick {
        (48, 48, 2, 2)
    } else {
        (96, 64, 4, 4)
    };
    let matrix = gnet_bench::measured::perf_matrix(genes, samples);
    let cfg = gnet_core::InferenceConfig {
        scheduler: policy,
        ..gnet_bench::measured::perf_config(q, threads, 8, MiKernel::VectorDense)
    };
    time_reps(
        &format!("scheduler.{}", policy.name()),
        opts.effective_reps(),
        || {
            let r = infer_network(&matrix, &cfg);
            assert!(r.stats.pairs > 0);
        },
    )
}

/// Gene-append frontier accounting: build a state on the first `N − g`
/// genes, append the last `g`, and record how many pairs the update
/// engine scanned. The faithful engine scans exactly the frontier
/// `g·(N−g) + g·(g−1)/2` (each new gene against every old one, plus the
/// new×new pairs) — an entry in `pairs`, not µs, so drift in that
/// accounting trips the regression gate deterministically.
fn update_bench(opts: &BenchOptions) -> BenchEntry {
    let (genes, samples, appended, q) = if opts.quick {
        (32, 48, 4, 2)
    } else {
        (64, 64, 8, 4)
    };
    let matrix = gnet_bench::measured::perf_matrix(genes, samples);
    let head: Vec<usize> = (0..genes - appended).collect();
    let tail: Vec<usize> = (genes - appended..genes).collect();
    let cfg = gnet_bench::measured::perf_config(q, 1, 8, MiKernel::VectorDense);
    let state = build_state(&matrix.select_genes(&head), &cfg);
    let append = matrix.select_genes(&tail);
    let values: Vec<f64> = (0..opts.effective_reps())
        .map(|_| {
            let (_, stats) = apply_update(&state, &append, UpdateMode::Genes)
                .unwrap_or_else(|e| unreachable!("gene append fits the state: {e}"));
            // cast-ok: frontier sizes are far below 2^53.
            #[allow(clippy::cast_precision_loss)]
            {
                stats.pairs_scanned as f64
            }
        })
        .collect();
    summarize("update.gene_append.pairs", "pairs", values)
}

fn ring_bench(ranks: usize, opts: &BenchOptions) -> BenchEntry {
    let (genes, samples, q) = if opts.quick { (32, 48, 2) } else { (64, 64, 4) };
    let matrix = gnet_bench::measured::perf_matrix(genes, samples);
    let cfg = gnet_bench::measured::perf_config(q, 1, 8, MiKernel::VectorDense);
    time_reps(&format!("ring.{ranks}"), opts.effective_reps(), || {
        let r = infer_network_distributed(&matrix, &cfg, ranks);
        assert!(r.rank_stats.iter().map(|s| s.pairs).sum::<u64>() > 0);
    })
}

/// The `ring.2` pass re-timed with the live telemetry plane attached
/// (registry-fed recorder, heartbeats every 5 ms, status keeper
/// running). Gated against its own committed baseline, so the plane
/// getting more expensive trips the same regression rule as a kernel
/// slowdown; `ring.2` alongside it shows the absolute overhead.
fn telemetry_bench(opts: &BenchOptions) -> BenchEntry {
    let (genes, samples, q) = if opts.quick { (32, 48, 2) } else { (64, 64, 4) };
    let matrix = gnet_bench::measured::perf_matrix(genes, samples);
    let cfg = gnet_bench::measured::perf_config(q, 1, 8, MiKernel::VectorDense);
    let baseline = infer_network_distributed(&matrix, &cfg, 2);
    let spec = TelemetrySpec::with_interval(std::time::Duration::from_millis(5));
    let pairs = (genes as u64) * (genes as u64 - 1) / 2;
    time_reps("telemetry.overhead", opts.effective_reps(), || {
        let mut plane = TelemetryPlane::start(&spec, 2, pairs)
            .unwrap_or_else(|e| unreachable!("fileless, addressless plane starts: {e}"));
        let r = infer_network_distributed_live(
            &matrix,
            &cfg,
            2,
            &gnet_fault::FaultInjector::none(),
            &gnet_trace::Recorder::disabled(),
            gnet_cluster::DEFAULT_PEER_TIMEOUT,
            &plane,
        )
        .unwrap_or_else(|e| unreachable!("fault-free live ring completes: {e}"));
        plane
            .finish()
            .unwrap_or_else(|e| unreachable!("fileless plane finish cannot fail: {e}"));
        // The invariant under test everywhere else, cheaply re-asserted
        // where overhead is measured: telemetry never perturbs results.
        assert_eq!(r.network.edges().len(), baseline.network.edges().len());
    })
}

/// Run the full suite.
///
/// Besides the dispatched `kernel.vector` series, the suite re-times the
/// vector kernel with each supported SIMD backend forced in turn
/// (`kernel.vector.avx512` / `kernel.vector.avx2` /
/// `kernel.vector.emulated`), so one artifact records both what the
/// dispatcher picked *and* what each backend costs on this machine —
/// the evidence that the dispatch order is the fastest-first order.
#[must_use]
pub fn run_suite(opts: &BenchOptions) -> BenchSuite {
    let mut entries = vec![
        kernel_bench("kernel.scalar", MiKernel::ScalarSparse, opts),
        kernel_bench("kernel.vector", MiKernel::VectorDense, opts),
    ];
    for backend in Backend::supported() {
        let id = format!("kernel.vector.{backend}");
        let entry = with_forced(backend, || kernel_bench(&id, MiKernel::VectorDense, opts))
            .unwrap_or_else(|e| unreachable!("supported backend must force cleanly: {e}"));
        entries.push(entry);
    }
    for policy in SchedulerPolicy::ALL {
        entries.push(scheduler_bench(policy, opts));
    }
    entries.push(ring_bench(2, opts));
    entries.push(ring_bench(4, opts));
    entries.push(telemetry_bench(opts));
    entries.push(update_bench(opts));
    BenchSuite {
        quick: opts.quick,
        entries,
    }
}

/// Serialize a suite as the versioned `BENCH_7.json` artifact.
#[must_use]
pub fn to_json(suite: &BenchSuite) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"format\": \"gnet-bench\",\n  \"version\": {BENCH_FORMAT_VERSION},\n  \
         \"issue\": {BENCH_ISSUE},\n  \"quick\": {},\n  \"entries\": [",
        suite.quick
    );
    for (i, e) in suite.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let values = e
            .values_us
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"unit\": \"{}\", \"reps\": {}, \"min\": {:.3}, \
             \"median\": {:.3}, \"mad\": {:.3}, \"values\": [{values}]}}",
            e.id,
            e.unit,
            e.values_us.len(),
            e.min_us,
            e.median_us,
            e.mad_us
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn entry_from_content(c: &Content) -> LineResult<BenchEntry> {
    let m = ingest::as_map(c)?;
    ingest::check_keys(m, &["id", "unit", "reps", "min", "median", "mad", "values"])?;
    let unit = ingest::get_str(m, "unit")?;
    if unit != "us" && unit != "pairs" {
        return Err(format!("unsupported bench unit `{unit}`"));
    }
    let values = match ingest::get(m, "values")? {
        Content::Seq(items) => items
            .iter()
            .map(|v| match v {
                Content::F64(f) => Ok(*f),
                Content::U64(u) => Ok(*u as f64),
                Content::I64(i) => Ok(*i as f64),
                other => Err(format!(
                    "bench value: expected number, found {}",
                    other.kind()
                )),
            })
            .collect::<LineResult<Vec<f64>>>()?,
        other => {
            return Err(format!(
                "bench values: expected sequence, found {}",
                other.kind()
            ))
        }
    };
    Ok(BenchEntry {
        id: ingest::get_str(m, "id")?,
        unit,
        min_us: ingest::get_f64(m, "min")?,
        median_us: ingest::get_f64(m, "median")?,
        mad_us: ingest::get_f64(m, "mad")?,
        values_us: values,
    })
}

/// Parse a `BENCH_*.json` artifact (the `--baseline` input).
///
/// # Errors
/// [`IngestError`] on malformed JSON, a foreign format string, an
/// unsupported version, or unknown keys.
pub fn parse_suite(text: &str) -> Result<BenchSuite, IngestError> {
    let err = |message: String| IngestError { line: 1, message };
    let raw: Raw =
        serde_json::from_str(text.trim()).map_err(|e| err(format!("invalid bench JSON: {e}")))?;
    let m = ingest::as_map(&raw.0).map_err(&err)?;
    ingest::check_keys(m, &["format", "version", "issue", "quick", "entries"]).map_err(&err)?;
    let format = ingest::get_str(m, "format").map_err(&err)?;
    if format != "gnet-bench" {
        return Err(err(format!(
            "not a gnet-bench artifact (format `{format}`)"
        )));
    }
    let version = ingest::get_u64(m, "version").map_err(&err)?;
    if version != BENCH_FORMAT_VERSION {
        return Err(err(format!("unsupported gnet-bench version {version}")));
    }
    let quick = match ingest::get(m, "quick").map_err(&err)? {
        Content::Bool(b) => *b,
        other => {
            return Err(err(format!(
                "bench `quick`: expected bool, found {}",
                other.kind()
            )))
        }
    };
    let entries = match ingest::get(m, "entries").map_err(&err)? {
        Content::Seq(items) => items
            .iter()
            .map(entry_from_content)
            .collect::<LineResult<Vec<_>>>()
            .map_err(&err)?,
        other => {
            return Err(err(format!(
                "bench entries: expected sequence, found {}",
                other.kind()
            )))
        }
    };
    Ok(BenchSuite { quick, entries })
}

/// The gate: compare a candidate run against a baseline. Ids present in
/// only one of the two are ignored (suites evolve); regressions are
/// returned most-severe first.
#[must_use]
pub fn compare(baseline: &BenchSuite, candidate: &BenchSuite) -> Vec<Regression> {
    let mut regressions: Vec<Regression> = candidate
        .entries
        .iter()
        .filter_map(|cand| {
            let base = baseline.entry(&cand.id)?;
            let threshold_us = base.min_us * RATIO_GATE + NOISE_GATE * base.mad_us.max(cand.mad_us);
            (cand.min_us > threshold_us).then(|| Regression {
                id: cand.id.clone(),
                base_min_us: base.min_us,
                cand_min_us: cand.min_us,
                ratio: if base.min_us > 0.0 {
                    cand.min_us / base.min_us
                } else {
                    f64::INFINITY
                },
                threshold_us,
            })
        })
        .collect();
    regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    regressions
}

/// The stale-baseline detector: entries whose candidate minimum undercuts
/// the baseline by more than [`STALE_GATE`] (i.e. a ≥2× speedup), largest
/// speedup first. The gate in [`compare`] can only catch a slowdown
/// *relative to the committed numbers* — after a big win the committed
/// numbers are the wrong anchor, and the caller should refresh them
/// (`gnet bench --update-baseline`).
#[must_use]
pub fn improvements(baseline: &BenchSuite, candidate: &BenchSuite) -> Vec<Improvement> {
    let mut wins: Vec<Improvement> = candidate
        .entries
        .iter()
        .filter_map(|cand| {
            let base = baseline.entry(&cand.id)?;
            (base.min_us > 0.0 && cand.min_us < base.min_us * STALE_GATE).then(|| Improvement {
                id: cand.id.clone(),
                base_min_us: base.min_us,
                cand_min_us: cand.min_us,
                speedup: base.min_us / cand.min_us,
            })
        })
        .collect();
    wins.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
    wins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, min: f64, mad: f64) -> BenchEntry {
        BenchEntry {
            id: id.to_string(),
            unit: "us".to_string(),
            values_us: vec![min, min + mad, min + 2.0 * mad],
            min_us: min,
            median_us: min + mad,
            mad_us: mad,
        }
    }

    fn suite(entries: Vec<BenchEntry>) -> BenchSuite {
        BenchSuite {
            quick: true,
            entries,
        }
    }

    #[test]
    fn summarize_computes_min_median_mad() {
        let e = summarize("x", "us", vec![5.0, 1.0, 3.0, 9.0, 2.0]);
        assert!((e.min_us - 1.0).abs() < 1e-12);
        assert!((e.median_us - 3.0).abs() < 1e-12);
        // |5-3|,|1-3|,|3-3|,|9-3|,|2-3| = 2,2,0,6,1 → sorted 0,1,2,2,6 → 2
        assert!((e.mad_us - 2.0).abs() < 1e-12);
        assert_eq!(e.values_us, vec![5.0, 1.0, 3.0, 9.0, 2.0], "run order kept");
    }

    #[test]
    fn gate_passes_identical_suites_and_noise() {
        let base = suite(vec![entry("kernel.vector", 1000.0, 20.0)]);
        assert!(compare(&base, &base).is_empty());
        // +25 % is inside the 30 % ratio gate.
        let cand = suite(vec![entry("kernel.vector", 1250.0, 20.0)]);
        assert!(compare(&base, &cand).is_empty());
        // Over the ratio gate but within 5 MADs of a noisy series: pass.
        let noisy_base = suite(vec![entry("kernel.vector", 1000.0, 200.0)]);
        let cand = suite(vec![entry("kernel.vector", 1900.0, 200.0)]);
        assert!(compare(&noisy_base, &cand).is_empty());
    }

    #[test]
    fn gate_flags_a_2x_slowdown() {
        let base = suite(vec![entry("kernel.vector", 1000.0, 20.0)]);
        let cand = suite(vec![entry("kernel.vector", 2000.0, 20.0)]);
        let regs = compare(&base, &cand);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "kernel.vector");
        assert!((regs[0].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn improvements_flags_only_2x_wins() {
        let base = suite(vec![
            entry("kernel.vector", 9000.0, 20.0),
            entry("kernel.scalar", 1000.0, 20.0),
            entry("ring.2", 500.0, 5.0),
        ]);
        let cand = suite(vec![
            entry("kernel.vector", 1000.0, 20.0), // 9× faster: stale
            entry("kernel.scalar", 900.0, 20.0),  // 1.1×: fine
            entry("new.bench", 1.0, 0.0),         // no baseline: ignored
        ]);
        let wins = improvements(&base, &cand);
        assert_eq!(wins.len(), 1);
        assert_eq!(wins[0].id, "kernel.vector");
        assert!((wins[0].speedup - 9.0).abs() < 1e-12);
        // Exactly at the gate is not stale — strict inequality.
        let at_gate = suite(vec![entry("ring.2", 250.0, 5.0)]);
        assert!(improvements(&base, &at_gate).is_empty());
    }

    #[test]
    fn gate_ignores_ids_missing_from_either_side() {
        let base = suite(vec![entry("old.bench", 100.0, 1.0)]);
        let cand = suite(vec![entry("new.bench", 100_000.0, 1.0)]);
        assert!(compare(&base, &cand).is_empty());
    }

    #[test]
    fn json_round_trips_exactly_enough_for_the_gate() {
        let s = suite(vec![
            entry("kernel.scalar", 123.456, 7.8),
            entry("ring.4", 9999.0, 0.0),
        ]);
        let parsed = parse_suite(&to_json(&s)).expect("artifact parses");
        assert_eq!(parsed.quick, s.quick);
        assert_eq!(parsed.entries.len(), 2);
        for (a, b) in parsed.entries.iter().zip(&s.entries) {
            assert_eq!(a.id, b.id);
            assert!((a.min_us - b.min_us).abs() < 1e-3);
            assert!((a.mad_us - b.mad_us).abs() < 1e-3);
            assert_eq!(a.values_us.len(), b.values_us.len());
        }
    }

    #[test]
    fn update_entry_counts_exactly_the_gene_append_frontier() {
        let e = update_bench(&BenchOptions {
            quick: true,
            reps: Some(2),
            slowdown: 1.0,
        });
        assert_eq!(e.id, "update.gene_append.pairs");
        assert_eq!(e.unit, "pairs");
        // Quick shape: N = 32, g = 4 → 4·28 + 4·3/2 = 118 frontier pairs.
        let expected = 4.0 * 28.0 + 4.0 * 3.0 / 2.0;
        assert!((e.min_us - expected).abs() < 1e-12, "{}", e.min_us);
        assert!((e.mad_us).abs() < 1e-12, "counted work has no noise");
        // The unit survives the artifact round trip.
        let s = suite(vec![e]);
        let parsed = parse_suite(&to_json(&s)).expect("artifact parses");
        assert_eq!(parsed.entries[0].unit, "pairs");
        assert!((parsed.entries[0].min_us - expected).abs() < 1e-3);
    }

    #[test]
    fn unknown_bench_unit_is_rejected() {
        let text = "{\"format\": \"gnet-bench\", \"version\": 1, \"issue\": 7, \
                    \"quick\": true, \"entries\": [{\"id\": \"x\", \"unit\": \"flops\", \
                    \"reps\": 1, \"min\": 1.0, \"median\": 1.0, \"mad\": 0.0, \
                    \"values\": [1.0]}]}";
        let err = parse_suite(text).expect_err("foreign unit must fail");
        assert!(err.message.contains("flops"), "{err}");
    }

    #[test]
    fn foreign_artifacts_are_rejected() {
        assert!(parse_suite("{}").is_err());
        assert!(parse_suite("not json").is_err());
        let drifted = "{\"format\": \"gnet-bench\", \"version\": 1, \"issue\": 5, \
                       \"quick\": false, \"entries\": [], \"surprise\": 1}";
        let err = parse_suite(drifted).expect_err("unknown key must fail");
        assert!(err.message.contains("surprise"), "{err}");
    }
}
