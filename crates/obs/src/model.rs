//! The unified run model: one or many ingested streams on one timebase.
//!
//! Distributed runs write one NDJSON stream per rank plus a
//! `manifest.json`; single-process runs write a single stream. Either
//! way the analysis layers below (reports, exporters) want one object
//! holding every stream with its timestamps mapped onto rank 0's trace
//! clock. The mapping is the per-rank `clock_offset_us` estimated by the
//! round-stamped clock-chain exchange at run start (DESIGN.md §12):
//! `aligned = local − offset`, in signed µs so a rank that started
//! before rank 0's epoch stays representable.

use crate::ingest::{self, EventRec, FieldValue, IngestError, Manifest, RankTrace, SpanRec};
use std::fmt;
use std::path::{Path, PathBuf};

/// A failure loading or assembling a run model.
#[derive(Clone, Debug)]
pub enum ObsError {
    /// File system failure.
    Io {
        /// Offending path.
        path: PathBuf,
        /// OS error text.
        message: String,
    },
    /// A stream or manifest failed strict ingestion.
    Parse {
        /// Offending path.
        path: PathBuf,
        /// The underlying ingest error.
        source: IngestError,
    },
    /// Streams that cannot form one run (e.g. duplicate ranks).
    Model(
        /// What was inconsistent.
        String,
    ),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
            Self::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            Self::Model(msg) => write!(f, "inconsistent run: {msg}"),
        }
    }
}

impl std::error::Error for ObsError {}

/// One span mapped onto the run timebase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignedSpan {
    /// Owning rank.
    pub rank: u64,
    /// Span name.
    pub name: String,
    /// Aligned start, µs on rank 0's clock (signed: pre-epoch starts
    /// are representable).
    pub start_us: i64,
    /// Duration, µs.
    pub dur_us: u64,
}

impl AlignedSpan {
    /// Aligned end, µs.
    #[must_use]
    pub fn end_us(&self) -> i64 {
        self.start_us.saturating_add_unsigned(self.dur_us)
    }
}

/// One event mapped onto the run timebase.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignedEvent {
    /// Owning rank.
    pub rank: u64,
    /// Event name.
    pub name: String,
    /// Aligned timestamp, µs on rank 0's clock.
    pub t_us: i64,
    /// Typed fields, in producer order.
    pub fields: Vec<(String, FieldValue)>,
}

/// A whole run: every stream, plus run-level metadata.
#[derive(Clone, Debug)]
pub struct RunModel {
    /// Per-rank streams, sorted by rank id. Single-process runs have
    /// exactly one entry with rank 0.
    pub ranks: Vec<RankTrace>,
    /// Ranks the manifest flags as crashed (empty without a manifest).
    pub crashed_ranks: Vec<u64>,
}

impl RunModel {
    /// Build a model from already-parsed streams.
    ///
    /// # Errors
    /// [`ObsError::Model`] when two streams claim the same rank id or
    /// no streams are given.
    pub fn from_traces(mut traces: Vec<RankTrace>) -> Result<Self, ObsError> {
        if traces.is_empty() {
            return Err(ObsError::Model("no trace streams".to_string()));
        }
        traces.sort_by_key(RankTrace::rank);
        for pair in traces.windows(2) {
            if pair[0].rank() == pair[1].rank() {
                return Err(ObsError::Model(format!(
                    "two streams claim rank {}",
                    pair[0].rank()
                )));
            }
        }
        Ok(Self {
            ranks: traces,
            crashed_ranks: Vec::new(),
        })
    }

    /// Load a single-stream run from one NDJSON file.
    ///
    /// # Errors
    /// [`ObsError`] on IO or ingestion failure.
    pub fn from_file(path: &Path) -> Result<Self, ObsError> {
        let trace = load_stream(path)?;
        Self::from_traces(vec![trace])
    }

    /// Load a traced distributed run from its trace directory, driven
    /// by the coordinator's `manifest.json`.
    ///
    /// # Errors
    /// [`ObsError`] on IO failure, ingestion failure in any stream, or
    /// an inconsistent manifest.
    pub fn from_dir(dir: &Path) -> Result<Self, ObsError> {
        let manifest_path = dir.join("manifest.json");
        let text = read_text(&manifest_path)?;
        let manifest: Manifest =
            ingest::parse_manifest(&text).map_err(|source| ObsError::Parse {
                path: manifest_path.clone(),
                source,
            })?;
        if manifest.files.len() as u64 != manifest.ranks {
            return Err(ObsError::Model(format!(
                "manifest lists {} files for {} ranks",
                manifest.files.len(),
                manifest.ranks
            )));
        }
        let traces = manifest
            .files
            .iter()
            .map(|f| load_stream(&dir.join(f)))
            .collect::<Result<Vec<_>, _>>()?;
        let mut model = Self::from_traces(traces)?;
        model.crashed_ranks = manifest.crashed_ranks;
        Ok(model)
    }

    /// Rank count.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// The stream for a rank id, if present.
    #[must_use]
    pub fn rank(&self, rank: u64) -> Option<&RankTrace> {
        self.ranks.iter().find(|t| t.rank() == rank)
    }

    /// Every span of every rank, mapped onto the run timebase. Order:
    /// by rank, then producer order — no span is dropped or duplicated
    /// relative to the raw streams.
    #[must_use]
    pub fn aligned_spans(&self) -> Vec<AlignedSpan> {
        self.ranks
            .iter()
            .flat_map(|t| {
                let offset = t.clock_offset_us();
                let rank = t.rank();
                t.spans.iter().map(move |s| AlignedSpan {
                    rank,
                    name: s.name.clone(),
                    start_us: align(s.start_us, offset),
                    dur_us: s.dur_us,
                })
            })
            .collect()
    }

    /// Every event of every rank, mapped onto the run timebase.
    #[must_use]
    pub fn aligned_events(&self) -> Vec<AlignedEvent> {
        self.ranks
            .iter()
            .flat_map(|t| {
                let offset = t.clock_offset_us();
                let rank = t.rank();
                t.events.iter().map(move |e| AlignedEvent {
                    rank,
                    name: e.name.clone(),
                    t_us: align(e.t_us, offset),
                    fields: e.fields.clone(),
                })
            })
            .collect()
    }

    /// Earliest aligned span start across the run, µs (0 when empty).
    #[must_use]
    pub fn epoch_us(&self) -> i64 {
        self.ranks
            .iter()
            .flat_map(|t| {
                let offset = t.clock_offset_us();
                t.spans.iter().map(move |s| align(s.start_us, offset))
            })
            .min()
            .unwrap_or(0)
    }

    /// Latest aligned span end across the run, µs (0 when empty).
    #[must_use]
    pub fn horizon_us(&self) -> i64 {
        self.ranks
            .iter()
            .flat_map(|t| {
                let offset = t.clock_offset_us();
                t.spans
                    .iter()
                    .map(move |s| align(s.start_us, offset).saturating_add_unsigned(s.dur_us))
            })
            .max()
            .unwrap_or(0)
    }

    /// End-to-end aligned makespan: latest span end − earliest span
    /// start, µs.
    #[must_use]
    pub fn makespan_us(&self) -> u64 {
        u64::try_from(self.horizon_us().saturating_sub(self.epoch_us())).unwrap_or(0)
    }

    /// The `run.config` event, searched across ranks (single-process
    /// runs stamp it on their only stream).
    #[must_use]
    pub fn run_config(&self) -> Option<&EventRec> {
        self.ranks.iter().find_map(|t| t.event("run.config"))
    }

    /// Sum of a counter across all ranks (`None` when no rank has it).
    #[must_use]
    pub fn counter_sum(&self, name: &str) -> Option<u64> {
        let values: Vec<u64> = self.ranks.iter().filter_map(|t| t.counter(name)).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().fold(0u64, |a, v| a.saturating_add(*v)))
        }
    }
}

/// Map a local stream timestamp onto the run timebase.
fn align(local_us: u64, offset_us: i64) -> i64 {
    i64::try_from(local_us)
        .unwrap_or(i64::MAX)
        .saturating_sub(offset_us)
}

fn read_text(path: &Path) -> Result<String, ObsError> {
    std::fs::read_to_string(path).map_err(|e| ObsError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

fn load_stream(path: &Path) -> Result<RankTrace, ObsError> {
    let text = read_text(path)?;
    ingest::parse_ndjson(&text).map_err(|source| ObsError::Parse {
        path: path.to_path_buf(),
        source,
    })
}

/// Span-identity key used by conservation checks: `(rank, name,
/// raw start, duration)` — stable across alignment.
#[must_use]
pub fn span_key(rank: u64, s: &SpanRec) -> (u64, String, u64, u64) {
    (rank, s.name.clone(), s.start_us, s.dur_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_trace::{Recorder, Value};

    fn stream_with_meta(extra: &[(&str, Value)]) -> RankTrace {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("stage.mi");
        }
        let mut out = Vec::new();
        rec.write_ndjson_with_meta(&mut out, extra)
            .expect("vec sink cannot fail");
        ingest::parse_ndjson(&String::from_utf8(out).expect("utf-8")).expect("stream parses")
    }

    #[test]
    fn duplicate_ranks_are_rejected() {
        let a = stream_with_meta(&[("rank", Value::U64(1))]);
        let b = stream_with_meta(&[("rank", Value::U64(1))]);
        assert!(matches!(
            RunModel::from_traces(vec![a, b]),
            Err(ObsError::Model(_))
        ));
        assert!(matches!(
            RunModel::from_traces(vec![]),
            Err(ObsError::Model(_))
        ));
    }

    #[test]
    fn alignment_subtracts_the_clock_offset() {
        let a = stream_with_meta(&[("rank", Value::U64(0))]);
        let mut b = stream_with_meta(&[("rank", Value::U64(1))]);
        b.meta.clock_offset_us = Some(50);
        b.spans[0].start_us = 100;
        b.spans[0].dur_us = 10;
        let model = RunModel::from_traces(vec![a, b]).expect("two distinct ranks");
        let spans = model.aligned_spans();
        let rank1: Vec<_> = spans.iter().filter(|s| s.rank == 1).collect();
        assert_eq!(rank1.len(), 1);
        assert_eq!(rank1[0].start_us, 50);
        assert_eq!(rank1[0].end_us(), 60);
        // A negative offset shifts the other way (rank clock behind).
        let mut c = stream_with_meta(&[("rank", Value::U64(2))]);
        c.meta.clock_offset_us = Some(-30);
        c.spans[0].start_us = 5;
        let model = RunModel::from_traces(vec![c]).expect("one rank");
        assert_eq!(model.aligned_spans()[0].start_us, 35);
    }

    #[test]
    fn makespan_covers_the_aligned_union() {
        let mut a = stream_with_meta(&[("rank", Value::U64(0))]);
        a.spans[0].start_us = 10;
        a.spans[0].dur_us = 40;
        let mut b = stream_with_meta(&[("rank", Value::U64(1))]);
        b.meta.clock_offset_us = Some(-20);
        b.spans[0].start_us = 0;
        b.spans[0].dur_us = 100;
        let model = RunModel::from_traces(vec![a, b]).expect("two ranks");
        // Rank 1 aligned: [20, 120). Rank 0: [10, 50).
        assert_eq!(model.epoch_us(), 10);
        assert_eq!(model.horizon_us(), 120);
        assert_eq!(model.makespan_us(), 110);
    }
}
