//! Chrome trace-event export (Perfetto / `chrome://tracing` loadable).
//!
//! Emits the JSON Object Format: `{"traceEvents": [...]}` where each
//! element follows the trace-event schema — complete duration events
//! (`ph:"X"` with `ts`/`dur`), instant events (`ph:"i"`, scope `t`),
//! counter events (`ph:"C"`), and `process_name` metadata events
//! (`ph:"M"`). Ranks map to `pid`, so a multi-rank run renders as one
//! process lane per rank. Timestamps are aligned run-timebase µs,
//! re-based so the earliest span sits at 0.

use crate::ingest::FieldValue;
use crate::model::RunModel;
use std::fmt::Write as _;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(n) if n.is_finite() => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(_) | FieldValue::Null => out.push_str("null"),
        FieldValue::Str(s) => {
            let _ = write!(out, "\"{}\"", escape_json(s));
        }
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Render a run as Chrome trace-event JSON.
#[must_use]
pub fn to_chrome_json(model: &RunModel) -> String {
    let epoch = model.epoch_us();
    let mut events: Vec<String> = Vec::new();

    for t in &model.ranks {
        let pid = t.rank();
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"rank {pid}\"}}}}"
        ));
    }

    for s in model.aligned_spans() {
        let ts = s.start_us.saturating_sub(epoch).max(0);
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":0}}",
            escape_json(&s.name),
            ts,
            s.dur_us,
            s.rank
        ));
    }

    for e in model.aligned_events() {
        let ts = e.t_us.saturating_sub(epoch).max(0);
        let mut args = String::from("{");
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":", escape_json(k));
            push_field_value(&mut args, v);
        }
        args.push('}');
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":{},\"tid\":0,\"args\":{}}}",
            escape_json(&e.name),
            ts,
            e.rank,
            args
        ));
    }

    for t in &model.ranks {
        let pid = t.rank();
        let ts = model.makespan_us();
        for c in &t.counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\
                 \"tid\":0,\"args\":{{\"value\":{}}}}}",
                escape_json(&c.name),
                ts,
                pid,
                c.value
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest;
    use crate::model::RunModel;
    use gnet_trace::{Recorder, Value};
    use serde::{Content, Deserialize, Error as SerdeError};

    struct Raw(Content);
    impl Deserialize for Raw {
        fn deserialize(content: &Content) -> Result<Self, SerdeError> {
            Ok(Raw(content.clone()))
        }
    }

    fn map(c: &Content) -> &[(String, Content)] {
        match c {
            Content::Map(m) => m,
            other => panic!("expected object, found {}", other.kind()),
        }
    }

    fn get<'c>(m: &'c [(String, Content)], k: &str) -> &'c Content {
        m.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key {k}"))
    }

    fn sample_model() -> RunModel {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("stage.mi");
        }
        rec.counter_add("mi.pairs", 10);
        rec.event("pipeline.done", &[("pairs", Value::U64(10))]);
        let mut out = Vec::new();
        rec.write_ndjson_with_meta(&mut out, &[("rank", Value::U64(0))])
            .expect("vec sink");
        let t = ingest::parse_ndjson(&String::from_utf8(out).expect("utf-8")).expect("parses");
        RunModel::from_traces(vec![t]).expect("one rank")
    }

    /// Schema validation: every emitted element must carry the fields the
    /// trace-event format requires for its phase, with the right JSON
    /// types. This is the unit test the issue's acceptance criteria name.
    #[test]
    fn chrome_export_validates_against_the_trace_event_schema() {
        let json = to_chrome_json(&sample_model());
        let raw: Raw = serde_json::from_str(&json).expect("export is valid JSON");
        let top = map(&raw.0);
        let events = match get(top, "traceEvents") {
            Content::Seq(items) => items,
            other => panic!("traceEvents must be an array, found {}", other.kind()),
        };
        assert!(!events.is_empty());
        let mut phases_seen = Vec::new();
        for ev in events {
            let m = map(ev);
            let name = get(m, "name");
            assert!(matches!(name, Content::Str(_)), "name must be a string");
            let ph = match get(m, "ph") {
                Content::Str(s) => s.as_str(),
                other => panic!("ph must be a string, found {}", other.kind()),
            };
            assert!(matches!(get(m, "pid"), Content::U64(_) | Content::I64(_)));
            assert!(matches!(get(m, "tid"), Content::U64(_) | Content::I64(_)));
            phases_seen.push(ph.to_string());
            match ph {
                "X" => {
                    assert!(matches!(get(m, "ts"), Content::U64(_) | Content::I64(_)));
                    assert!(matches!(get(m, "dur"), Content::U64(_) | Content::I64(_)));
                }
                "i" => {
                    assert!(matches!(get(m, "ts"), Content::U64(_) | Content::I64(_)));
                    assert!(matches!(get(m, "s"), Content::Str(_)), "instant scope");
                    assert!(matches!(get(m, "args"), Content::Map(_)));
                }
                "C" => {
                    assert!(matches!(get(m, "args"), Content::Map(_)));
                }
                "M" => {
                    let args = map(get(m, "args"));
                    assert!(matches!(get(args, "name"), Content::Str(_)));
                }
                other => panic!("unexpected phase `{other}`"),
            }
        }
        for required in ["X", "i", "C", "M"] {
            assert!(
                phases_seen.iter().any(|p| p == required),
                "phase {required} missing from export"
            );
        }
    }

    #[test]
    fn special_characters_in_names_are_escaped() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("weird\"name\\with\nstuff");
        }
        let mut out = Vec::new();
        rec.write_ndjson(&mut out).expect("vec sink");
        let t = ingest::parse_ndjson(&String::from_utf8(out).expect("utf-8")).expect("parses");
        let model = RunModel::from_traces(vec![t]).expect("one rank");
        let json = to_chrome_json(&model);
        let _raw: Raw = serde_json::from_str(&json).expect("escaped export stays valid JSON");
    }
}
