//! # gnet-obs — offline observability for gnet runs
//!
//! The analysis side of the `gnet-trace` instrumentation layer
//! (DESIGN.md §12). `gnet-trace` produces NDJSON streams while a run
//! executes; this crate consumes them *after* the run:
//!
//! * [`ingest`] — strict, closed-world NDJSON parsing. Unknown record
//!   types or fields are errors, so producer/consumer drift is caught by
//!   tests instead of silently skewing reports.
//! * [`model`] — the unified [`model::RunModel`]: one or many per-rank
//!   streams (manifest-driven for distributed runs) mapped onto rank 0's
//!   timebase via the clock offsets estimated at run start.
//! * [`report`] — `gnet trace-report`: per-rank load and scheduler
//!   utilization, load-imbalance, greedy critical-path extraction, and a
//!   perf-attribution table comparing measured MI throughput against the
//!   `gnet-phi` calibrated kernel model.
//! * [`chrome`] — Chrome trace-event JSON export (Perfetto-loadable).
//! * [`flame`] — folded flamegraph-stack export.
//! * [`bench`] — `gnet bench`: the seeded fixed-shape benchmark suite
//!   and the MAD-based regression gate over `BENCH_7.json` artifacts.

pub mod bench;
pub mod chrome;
pub mod flame;
pub mod ingest;
pub mod model;
pub mod report;
pub mod status;

pub use bench::{BenchOptions, BenchSuite, Regression};
pub use ingest::{IngestError, RankTrace};
pub use model::{ObsError, RunModel};
pub use report::{analyze, TimelineReport};
pub use status::{validate_prometheus, validate_status_json, StatusError, StatusSummary};
