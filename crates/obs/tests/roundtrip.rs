//! NDJSON round-trip corpus: every event kind the workspace's producers
//! emit must parse back through the strict obs ingester, with no record
//! dropped — and any unknown-field drift must be a hard error.
//!
//! Producers exercised:
//! * a hand-driven [`Recorder`] hitting every record type and every
//!   typed field value;
//! * a real single-process pipeline run (`infer_network_traced`);
//! * the `gnet-phi` simulator (`simulate_tiles_traced`), whose events
//!   carry *simulated* time via `event_at_us`;
//! * a fault-injected distributed run (driver-side `fault.*` /
//!   `recovery.*` events plus the per-rank streams on disk).

use gnet_cluster::infer_network_distributed_traced;
use gnet_core::{infer_network_traced, InferenceConfig};
use gnet_expr::synth::coupled_pairs;
use gnet_expr::synth::Coupling;
use gnet_fault::{FaultInjector, FaultPlan};
use gnet_obs::ingest::{parse_ndjson, FieldValue};
use gnet_obs::model::RunModel;
use gnet_parallel::SchedulerPolicy;
use gnet_phi::{simulate_tiles_traced, MachineModel, WorkloadModel};
use gnet_trace::{Recorder, Value};
use std::time::Duration;

fn exported(rec: &Recorder) -> String {
    let mut out = Vec::new();
    rec.write_ndjson(&mut out).expect("vec sink cannot fail");
    String::from_utf8(out).expect("ndjson is utf-8")
}

/// Non-meta line count of a stream — the ground truth for record
/// conservation.
fn payload_lines(text: &str) -> usize {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.contains("\"type\":\"meta\""))
        .count()
}

fn assert_roundtrip(text: &str, label: &str) -> gnet_obs::RankTrace {
    let trace =
        parse_ndjson(text).unwrap_or_else(|e| panic!("{label}: corpus stream must parse: {e}"));
    assert_eq!(
        trace.record_count(),
        payload_lines(text),
        "{label}: every non-meta line must land in exactly one record"
    );
    trace
}

#[test]
fn hand_driven_recorder_covers_every_record_and_value_kind() {
    let rec = Recorder::enabled();
    {
        let _outer = rec.span("outer");
        let _inner = rec.span("inner");
    }
    rec.counter_add("c.one", 1);
    rec.counter_add("c.big", u64::MAX);
    rec.observe("h.lat", Duration::from_micros(3));
    rec.observe("h.lat", Duration::from_secs(4000)); // saturates top bucket
    rec.event(
        "e.kinds",
        &[
            ("u", Value::U64(7)),
            ("i", Value::I64(-7)),
            ("f", Value::F64(1.5)),
            ("inf", Value::F64(f64::INFINITY)),
            ("s", Value::Str("text".into())),
            ("b", Value::Bool(false)),
        ],
    );
    let trace = assert_roundtrip(&exported(&rec), "hand-driven");
    assert_eq!(trace.spans.len(), 2);
    assert_eq!(trace.counter("c.big"), Some(u64::MAX));
    let e = trace.event("e.kinds").expect("event survives");
    assert_eq!(e.field("u"), Some(&FieldValue::U64(7)));
    assert_eq!(e.field("i"), Some(&FieldValue::I64(-7)));
    assert_eq!(e.field("f"), Some(&FieldValue::F64(1.5)));
    assert_eq!(e.field("inf"), Some(&FieldValue::Null), "non-finite → null");
    assert_eq!(e.field("s"), Some(&FieldValue::Str("text".into())));
    assert_eq!(e.field("b"), Some(&FieldValue::Bool(false)));
    let h = &trace.histograms[0];
    assert_eq!(h.count, 2);
    assert!(
        h.buckets.iter().any(|(le, _)| le.is_none()),
        "overflow bucket kept"
    );
}

#[test]
fn real_pipeline_trace_round_trips() {
    let (matrix, _) = coupled_pairs(4, 96, Coupling::Linear(0.9), 11);
    let config = InferenceConfig {
        permutations: 4,
        threads: Some(2),
        ..InferenceConfig::default()
    };
    let rec = Recorder::enabled();
    let _ = infer_network_traced(&matrix, &config, &rec);
    let trace = assert_roundtrip(&exported(&rec), "pipeline");
    for span in ["stage.prep", "stage.mi", "stage.finalize"] {
        assert!(
            trace.spans.iter().any(|s| s.name == span),
            "pipeline stream must carry {span}"
        );
    }
    assert!(trace.event("run.config").is_some());
    assert!(trace.event("pipeline.done").is_some());
    assert!(trace.counter("mi.pairs").is_some());
    assert!(
        trace
            .counters
            .iter()
            .any(|c| c.name.starts_with("scheduler.claims.t")),
        "scheduler claim counters survive the round trip"
    );
    assert!(
        trace
            .histograms
            .iter()
            .any(|h| h.name == "scheduler.tile_us"),
        "tile-latency histogram survives the round trip"
    );
}

#[test]
fn simulated_time_phi_events_round_trip() {
    let machine = MachineModel::xeon_phi_5110p();
    let workload = WorkloadModel {
        genes: 64,
        samples: 200,
        q: 4,
        ..WorkloadModel::arabidopsis_headline()
    };
    let space = gnet_parallel::TileSpace::new(64, 16);
    let rec = Recorder::enabled();
    let _ = simulate_tiles_traced(
        space.tiles(),
        &machine,
        &workload,
        4,
        SchedulerPolicy::DynamicCounter,
        &rec,
    );
    let trace = assert_roundtrip(&exported(&rec), "phi-sim");
    assert_eq!(
        trace.events.iter().filter(|e| e.name == "sim.tile").count(),
        space.tiles().len()
    );
    assert_eq!(
        trace
            .events
            .iter()
            .filter(|e| e.name == "sim.thread")
            .count(),
        4
    );
    let run = trace.event("sim.run").expect("sim.run survives");
    // Simulated timestamps are modeled µs, far beyond the recorder's
    // real elapsed time at export — proof that `event_at_us` time (not
    // wall time) round-trips.
    assert!(run.t_us > 0, "simulated timestamp preserved");
}

#[test]
fn fault_injected_distributed_run_round_trips_every_stream() {
    let (matrix, _) = coupled_pairs(6, 200, Coupling::Linear(0.8), 42);
    let config = InferenceConfig {
        permutations: 4,
        threads: Some(1),
        mi_threshold: Some(0.1),
        ..InferenceConfig::default()
    };
    let plan = FaultPlan::parse("seed=7;crash(rank=2,round=1)").expect("plan parses");
    let driver_rec = Recorder::enabled();
    let injector = FaultInjector::from_plan_traced(&plan, &driver_rec);
    let dir = std::env::temp_dir().join(format!(
        "gnet-obs-roundtrip-{}-{}",
        std::process::id(),
        line!()
    ));
    let result = infer_network_distributed_traced(
        &matrix,
        &config,
        4,
        &injector,
        &driver_rec,
        Duration::from_millis(500),
        &dir,
    )
    .expect("crash of a non-coordinator rank is recoverable");
    assert_eq!(result.crashed_ranks, vec![2]);

    // Driver-side stream: fault.* / recovery.* events must round-trip.
    let driver = assert_roundtrip(&exported(&driver_rec), "fault-driver");
    assert!(
        driver.events.iter().any(|e| e.name.starts_with("fault.")),
        "fault injection events survive"
    );
    assert!(
        driver
            .events
            .iter()
            .any(|e| e.name.starts_with("recovery.")),
        "recovery events survive"
    );

    // Per-rank streams on disk: all four parse and conserve records.
    for r in 0..4u64 {
        let path = dir.join(format!("rank-{r}.ndjson"));
        let text = std::fs::read_to_string(&path).expect("rank stream exists");
        let trace = assert_roundtrip(&text, &format!("rank-{r}"));
        assert_eq!(trace.meta.rank, Some(r));
    }
    // And the whole directory loads as one model.
    let model = RunModel::from_dir(&dir).expect("manifest-driven load");
    assert_eq!(model.rank_count(), 4);
    assert_eq!(model.crashed_ranks, vec![2]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_field_drift_fails_the_corpus() {
    let rec = Recorder::enabled();
    {
        let _s = rec.span("stage.mi");
    }
    rec.counter_add("mi.pairs", 1);
    let text = exported(&rec);

    // Simulate a producer that grew a field this consumer doesn't know:
    // inject one unknown key into each record type in turn.
    for marker in [
        "\"type\":\"span\"",
        "\"type\":\"counter\"",
        "\"type\":\"meta\"",
    ] {
        let drifted: String = text
            .lines()
            .map(|l| {
                if l.contains(marker) {
                    let mut s = l.trim_end().to_string();
                    assert_eq!(s.pop(), Some('}'));
                    s.push_str(",\"new_field_from_the_future\":1}");
                    s.push('\n');
                    s
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let err = parse_ndjson(&drifted).expect_err("drifted stream must be rejected");
        assert!(
            err.message.contains("new_field_from_the_future"),
            "error names the drifted field: {err}"
        );
    }
}
