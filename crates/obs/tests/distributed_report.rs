//! The issue's acceptance scenario: run a 4-rank traced inference, load
//! the trace directory into the unified run model, and check that
//!
//! * the merged timeline's per-rank span union equals the raw NDJSON
//!   inputs — no event dropped or duplicated;
//! * a critical path exists and stays within the makespan;
//! * the perf-attribution table is populated (with the
//!   percent-of-modeled-peak column when a kernel model is supplied);
//! * the Chrome export of the same model stays schema-valid.

use gnet_cluster::infer_network_distributed_traced;
use gnet_core::InferenceConfig;
use gnet_expr::synth::{coupled_pairs, Coupling};
use gnet_fault::FaultInjector;
use gnet_obs::ingest::parse_ndjson;
use gnet_obs::model::{span_key, RunModel};
use gnet_obs::report::{analyze, KernelModel};
use gnet_trace::Recorder;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn traced_run(tag: u32) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gnet-obs-report-{}-{tag}", std::process::id()));
    let (matrix, _) = coupled_pairs(8, 220, Coupling::Linear(0.85), 13);
    let config = InferenceConfig {
        permutations: 4,
        threads: Some(1),
        mi_threshold: Some(0.1),
        ..InferenceConfig::default()
    };
    infer_network_distributed_traced(
        &matrix,
        &config,
        4,
        &FaultInjector::none(),
        &Recorder::disabled(),
        Duration::from_secs(5),
        &dir,
    )
    .expect("fault-free traced run succeeds");
    dir
}

/// Multiset of span identities (rank, name, raw start, duration).
fn span_multiset(model: &RunModel) -> BTreeMap<(u64, String, u64, u64), usize> {
    let mut set = BTreeMap::new();
    for t in &model.ranks {
        for s in &t.spans {
            *set.entry(span_key(t.rank(), s)).or_insert(0) += 1;
        }
    }
    set
}

#[test]
fn merged_timeline_conserves_every_raw_span() {
    let dir = traced_run(1);
    let model = RunModel::from_dir(&dir).expect("trace dir loads");
    assert_eq!(model.rank_count(), 4);

    // Ground truth: parse each raw stream independently of the model.
    let mut raw = BTreeMap::new();
    for r in 0..4u64 {
        let text = std::fs::read_to_string(dir.join(format!("rank-{r}.ndjson")))
            .expect("raw stream readable");
        let trace = parse_ndjson(&text).expect("raw stream parses");
        for s in &trace.spans {
            *raw.entry(span_key(r, s)).or_insert(0) += 1;
        }
    }
    assert!(!raw.is_empty(), "a traced run produces spans");
    assert_eq!(
        span_multiset(&model),
        raw,
        "the merged model's span union must equal the raw inputs exactly"
    );
    // The aligned view preserves cardinality too (alignment shifts, it
    // never drops or duplicates).
    assert_eq!(
        model.aligned_spans().len(),
        raw.values().sum::<usize>(),
        "aligned timeline has one entry per raw span"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_has_critical_path_load_and_attribution() {
    let dir = traced_run(2);
    let model = RunModel::from_dir(&dir).expect("trace dir loads");
    // A synthetic kernel model keeps the test deterministic and fast
    // (live calibration is exercised by `gnet trace-report` itself).
    let report = analyze(
        &model,
        Some(KernelModel {
            ns_per_pair: 5_000.0,
            threads: 1,
        }),
    );

    // The distributed path stamps the run shape too, so live
    // calibration works on cluster traces.
    let config = report.config.as_ref().expect("run.config stamped");
    assert_eq!(config.genes, 16, "coupled_pairs(8, ..) makes 8 gene pairs");
    assert_eq!(config.samples, 220);
    assert_eq!(config.scheduler, "ring");

    // Load: all four ranks accounted for, with busy time inside the run.
    assert_eq!(report.ranks.len(), 4);
    for r in &report.ranks {
        assert!(r.busy_us > 0, "rank {} did work", r.rank);
        assert!(r.busy_us <= report.makespan_us);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        assert!(r.pairs.is_some(), "rank {} reports pairs", r.rank);
    }
    assert!(report.imbalance >= 1.0);

    // Critical path: non-empty, time-ordered, inside the makespan.
    assert!(!report.critical_path.is_empty());
    for w in report.critical_path.windows(2) {
        assert!(
            w[0].end_us() <= w[1].start_us,
            "critical path spans must not overlap"
        );
    }
    assert!(report.critical_path_us > 0);
    assert!(report.critical_path_us <= report.makespan_us);

    // Attribution: the distributed compute stages appear, rounds are
    // collapsed, shares sum to 1, and MI-bearing stages carry the
    // percent-of-model column.
    assert!(!report.attribution.is_empty());
    let stages: Vec<&str> = report
        .attribution
        .iter()
        .map(|a| a.stage.as_str())
        .collect();
    assert!(
        stages.contains(&"rank.round"),
        "rounds collapse into one stage"
    );
    assert!(stages.contains(&"rank.diag"));
    let share_sum: f64 = report.attribution.iter().map(|a| a.share).sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-9,
        "shares sum to 1, got {share_sum}"
    );
    let mi = report
        .attribution
        .iter()
        .find(|a| a.stage == "rank.round")
        .expect("rank.round attributed");
    assert!(mi.measured_pairs_per_s.expect("measured throughput") > 0.0);
    assert!(mi.modeled_pairs_per_s.expect("modeled throughput") > 0.0);
    assert!(mi.percent_of_model.expect("percent of model") > 0.0);

    // The text rendering carries the table headers end-to-end.
    let text = report.render_text();
    for needle in [
        "per-rank load",
        "critical path",
        "perf attribution",
        "% model",
    ] {
        assert!(text.contains(needle), "report text must contain `{needle}`");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chrome_export_of_a_real_run_is_loadable_json() {
    let dir = traced_run(3);
    let model = RunModel::from_dir(&dir).expect("trace dir loads");
    let json = gnet_obs::chrome::to_chrome_json(&model);
    // The unit tests validate the schema shape; here we check the
    // export of a *real* multi-rank run stays parseable and covers all
    // four process lanes.
    for r in 0..4 {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"rank {r}\"}}")),
            "process_name metadata for rank {r}"
        );
    }
    assert!(json.starts_with("{\"traceEvents\":["));
    let folded = gnet_obs::flame::to_folded(&model);
    for r in 0..4 {
        assert!(
            folded.lines().any(|l| l.starts_with(&format!("rank-{r};"))),
            "flamegraph subtree for rank {r}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
