//! Per-gene B-spline weight matrices in the two layouts the MI kernels use.
//!
//! For a gene with `m` normalized samples, the estimator needs the basis
//! weights of every sample. The paper's central data-layout insight is that
//! the *same* information stored two ways has very different kernels:
//!
//! * [`SparseWeights`] — `m × k` weights plus a first-bin index per sample.
//!   Minimal memory and flops; the joint-histogram update is a `k × k`
//!   scatter per sample, which does not vectorize (gather/scatter on KNC is
//!   slow). This is the layout behind the scalar baseline kernel.
//! * [`DenseWeights`] — `m × b` with zeros outside the `k`-wide window,
//!   stored row-major (sample-major). The joint histogram for a pair is
//!   then `P = Xᵀ·Y / m`, a small dense GEMM whose inner loop streams over
//!   samples with FMA lanes — the restructuring that unlocks the Phi's
//!   512-bit unit. Rows are padded to a lane multiple so kernels need no
//!   tail handling.

use crate::basis::{BsplineBasis, MAX_ORDER};
use gnet_simd::lanes::F32x16;

/// Compact per-gene weight matrix: `k` weights + first-bin index per sample.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseWeights {
    /// Spline order `k` (weights per sample).
    order: usize,
    /// Number of bins `b` (bound for `first_bin[s] + k`).
    bins: usize,
    /// Number of samples `m`.
    samples: usize,
    /// `m` first-bin indices.
    first_bin: Vec<u16>,
    /// `m × k` weights, sample-major.
    weights: Vec<f32>,
}

impl SparseWeights {
    /// Compute the weight matrix of one gene from its normalized samples
    /// (each in `[0, 1]`; rank transformation upstream guarantees this).
    pub fn from_normalized(values: &[f32], basis: &BsplineBasis) -> Self {
        let k = basis.order();
        let mut first_bin = Vec::with_capacity(values.len());
        let mut weights = Vec::with_capacity(values.len() * k);
        for &x in values {
            let z = basis.sample_to_domain(x);
            let (first, w) = basis.eval_nonzero(z);
            first_bin.push(u16::try_from(first).expect("first + order <= bins <= 64 fits u16"));
            weights.extend_from_slice(&w[..k]);
        }
        Self {
            order: k,
            bins: basis.bins(),
            samples: values.len(),
            first_bin,
            weights,
        }
    }

    /// Spline order `k`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of bins `b`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// First-bin index of sample `s`.
    #[inline(always)]
    pub fn first_bin(&self, s: usize) -> usize {
        self.first_bin[s] as usize // cast-ok: u16 to usize widens losslessly
    }

    /// The `k` weights of sample `s`.
    #[inline(always)]
    pub fn sample_weights(&self, s: usize) -> &[f32] {
        &self.weights[s * self.order..(s + 1) * self.order]
    }

    /// Marginal bin distribution `p[u] = (1/m) Σ_s w_s[u]`.
    pub fn marginal(&self) -> Vec<f32> {
        let mut p = vec![0.0f32; self.bins];
        for s in 0..self.samples {
            let fb = self.first_bin(s);
            for (j, &w) in self.sample_weights(s).iter().enumerate() {
                p[fb + j] += w;
            }
        }
        // cast-ok: sample counts are far below f32's 2^24 exact-integer range
        let inv_m = 1.0 / self.samples as f32;
        for v in &mut p {
            *v *= inv_m;
        }
        p
    }

    /// Reorder samples by a permutation: sample `s` of the result is sample
    /// `perm[s]` of `self`. Used by the permutation-testing null.
    ///
    /// # Panics
    /// Panics if `perm.len() != samples` or an index is out of range.
    pub fn permuted(&self, perm: &[u32]) -> Self {
        assert_eq!(perm.len(), self.samples, "permutation length mismatch");
        let k = self.order;
        let mut first_bin = Vec::with_capacity(self.samples);
        let mut weights = Vec::with_capacity(self.samples * k);
        for &src in perm {
            let s = src as usize; // cast-ok: u32 to usize widens losslessly
            first_bin.push(self.first_bin[s]);
            weights.extend_from_slice(self.sample_weights(s));
        }
        Self {
            first_bin,
            weights,
            ..*self
        }
    }

    /// Expand into the dense, lane-padded layout.
    pub fn to_dense(&self) -> DenseWeights {
        let mut dense = DenseWeights::zeroed(self.samples, self.bins);
        for s in 0..self.samples {
            let fb = self.first_bin(s);
            let row = dense.row_mut(s);
            for (j, &w) in self.sample_weights(s).iter().enumerate() {
                row[fb + j] = w;
            }
        }
        dense
    }

    /// Approximate heap footprint in bytes (used by the tile-size planner).
    pub fn heap_bytes(&self) -> usize {
        self.first_bin.len() * core::mem::size_of::<u16>()
            + self.weights.len() * core::mem::size_of::<f32>()
    }

    /// The flat first-bin index array (`m` entries) — for wire codecs.
    pub fn first_bins_flat(&self) -> &[u16] {
        &self.first_bin
    }

    /// The flat weight array (`m × k` entries, sample-major) — for wire
    /// codecs.
    pub fn weights_flat(&self) -> &[f32] {
        &self.weights
    }

    /// Reassemble from raw parts (the inverse of the flat accessors),
    /// validating every invariant. Used by the cluster substrate to
    /// deserialize shipped weight matrices.
    ///
    /// # Panics
    /// Panics on any shape or range violation.
    pub fn from_raw_parts(
        order: usize,
        bins: usize,
        samples: usize,
        first_bin: Vec<u16>,
        weights: Vec<f32>,
    ) -> Self {
        match Self::try_from_raw_parts(order, bins, samples, first_bin, weights) {
            Ok(w) => w,
            Err(reason) => panic!("{reason}"),
        }
    }

    /// Fallible [`Self::from_raw_parts`] for codecs that must map corrupt
    /// on-disk weight sections to typed decode errors instead of panicking.
    ///
    /// # Errors
    /// Returns a description of the first shape or range violation.
    pub fn try_from_raw_parts(
        order: usize,
        bins: usize,
        samples: usize,
        first_bin: Vec<u16>,
        weights: Vec<f32>,
    ) -> Result<Self, String> {
        if !(1..=crate::basis::MAX_ORDER).contains(&order) {
            return Err(format!("bad order {order}"));
        }
        if bins < order {
            return Err(format!("bins {bins} below order {order}"));
        }
        if first_bin.len() != samples {
            return Err(format!(
                "one first-bin index per sample: got {} for {samples} samples",
                first_bin.len()
            ));
        }
        if weights.len() != samples * order {
            return Err(format!(
                "k weights per sample: got {} for {samples} samples at order {order}",
                weights.len()
            ));
        }
        for &fb in &first_bin {
            // cast-ok: u16 to usize widens losslessly
            if fb as usize + order > bins {
                return Err(format!(
                    "first bin {fb} overruns the {bins}-bin grid at order {order}"
                ));
            }
        }
        Ok(Self {
            order,
            bins,
            samples,
            first_bin,
            weights,
        })
    }
}

/// Dense, zero-padded per-gene weight matrix (`m` rows × `b` columns, each
/// row padded to a multiple of the lane width).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseWeights {
    samples: usize,
    bins: usize,
    /// Row stride ≥ bins, a multiple of `F32x16::LANES`.
    stride: usize,
    /// `samples × stride`, row-major; padding columns are zero.
    data: Vec<f32>,
}

impl DenseWeights {
    /// All-zero matrix with lane-padded rows.
    pub fn zeroed(samples: usize, bins: usize) -> Self {
        let lanes = F32x16::LANES;
        let stride = bins.div_ceil(lanes) * lanes;
        Self {
            samples,
            bins,
            stride,
            data: vec![0.0; samples * stride],
        }
    }

    /// Number of samples `m` (rows).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of bins `b` (meaningful columns).
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Padded row stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `s` including padding columns.
    #[inline(always)]
    pub fn row(&self, s: usize) -> &[f32] {
        &self.data[s * self.stride..(s + 1) * self.stride]
    }

    /// Mutable row `s` including padding columns.
    #[inline(always)]
    pub fn row_mut(&mut self, s: usize) -> &mut [f32] {
        &mut self.data[s * self.stride..(s + 1) * self.stride]
    }

    /// Whole backing slice (rows × stride).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Column `u` gathered into a contiguous vector (samples-long). The
    /// vectorized joint kernel uses column views to stream over samples.
    pub fn column(&self, u: usize) -> Vec<f32> {
        assert!(u < self.bins, "column {u} out of range");
        (0..self.samples)
            .map(|s| self.data[s * self.stride + u])
            .collect()
    }

    /// Marginal bin distribution `p[u] = (1/m) Σ_s row_s[u]`.
    pub fn marginal(&self) -> Vec<f32> {
        let mut p = vec![0.0f32; self.bins];
        for s in 0..self.samples {
            let row = self.row(s);
            for (u, acc) in p.iter_mut().enumerate() {
                *acc += row[u];
            }
        }
        // cast-ok: sample counts are far below f32's 2^24 exact-integer range
        let inv_m = 1.0 / self.samples as f32;
        for v in &mut p {
            *v *= inv_m;
        }
        p
    }

    /// Reorder rows by a permutation: row `s` of the result is row
    /// `perm[s]` of `self`.
    ///
    /// # Panics
    /// Panics if `perm.len() != samples`.
    pub fn permuted(&self, perm: &[u32]) -> Self {
        assert_eq!(perm.len(), self.samples, "permutation length mismatch");
        let mut out = Self::zeroed(self.samples, self.bins);
        for (dst, &src) in perm.iter().enumerate() {
            let src_row = self.row(src as usize).to_vec();
            out.row_mut(dst).copy_from_slice(&src_row);
        }
        out
    }

    /// Column-major transpose of the padded matrix: `stride` rows of
    /// `samples_padded` entries, samples padded to a lane multiple. This is
    /// the layout the batched pair kernel streams over (lanes run across
    /// samples).
    pub fn transposed_columns(&self) -> TransposedWeights {
        let lanes = F32x16::LANES;
        let spad = self.samples.div_ceil(lanes) * lanes;
        let mut data = vec![0.0f32; self.bins * spad];
        for s in 0..self.samples {
            let row = self.row(s);
            for u in 0..self.bins {
                data[u * spad + s] = row[u];
            }
        }
        TransposedWeights {
            bins: self.bins,
            samples: self.samples,
            samples_padded: spad,
            data,
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }
}

/// Column-major (bin-major) weight matrix: for each bin `u`, a contiguous,
/// zero-padded vector of that bin's weight across all samples.
///
/// `P[u][v] = Σ_s X.col(u)[s] · Y.col(v)[s]` becomes a plain lane dot
/// product of two contiguous streams — the exact shape of the paper's
/// vectorized inner loop.
#[derive(Clone, Debug, PartialEq)]
pub struct TransposedWeights {
    bins: usize,
    samples: usize,
    samples_padded: usize,
    /// `bins × samples_padded`, bin-major.
    data: Vec<f32>,
}

impl TransposedWeights {
    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of live samples (excluding padding).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Padded sample count (a lane multiple).
    pub fn samples_padded(&self) -> usize {
        self.samples_padded
    }

    /// The zero-padded sample stream of bin `u`.
    #[inline(always)]
    pub fn bin_stream(&self, u: usize) -> &[f32] {
        &self.data[u * self.samples_padded..(u + 1) * self.samples_padded]
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }
}

/// Scratch-reusing batch conversion: weight matrices for many genes at once
/// from a row-major `genes × samples` matrix of normalized values.
pub fn sparse_weights_for_genes(
    normalized: &[f32],
    genes: usize,
    samples: usize,
    basis: &BsplineBasis,
) -> Vec<SparseWeights> {
    assert_eq!(normalized.len(), genes * samples, "matrix shape mismatch");
    let _ = MAX_ORDER; // layout invariant documented in `basis`
    (0..genes)
        .map(|g| SparseWeights::from_normalized(&normalized[g * samples..(g + 1) * samples], basis))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn demo_values() -> Vec<f32> {
        (0..37).map(|i| i as f32 / 36.0).collect()
    }

    #[test]
    fn sparse_marginal_is_probability_vector() {
        let basis = BsplineBasis::tinge_default();
        let w = SparseWeights::from_normalized(&demo_values(), &basis);
        let p = w.marginal();
        assert_eq!(p.len(), 10);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "marginal sums to {sum}");
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dense_and_sparse_marginals_agree() {
        let basis = BsplineBasis::new(4, 12);
        let w = SparseWeights::from_normalized(&demo_values(), &basis);
        let d = w.to_dense();
        let ps = w.marginal();
        let pd = d.marginal();
        for (a, b) in ps.iter().zip(&pd) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn dense_rows_are_lane_padded_with_zeros() {
        let basis = BsplineBasis::tinge_default();
        let w = SparseWeights::from_normalized(&demo_values(), &basis).to_dense();
        assert_eq!(w.stride() % F32x16::LANES, 0);
        for s in 0..w.samples() {
            for &v in &w.row(s)[w.bins()..] {
                assert_eq!(v, 0.0, "padding column must stay zero");
            }
        }
    }

    #[test]
    fn identity_permutation_is_noop() {
        let basis = BsplineBasis::tinge_default();
        let w = SparseWeights::from_normalized(&demo_values(), &basis);
        let m = u32::try_from(w.samples()).expect("test sample count fits u32");
        let id: Vec<u32> = (0..m).collect();
        assert_eq!(w.permuted(&id), w);
        let d = w.to_dense();
        assert_eq!(d.permuted(&id), d);
    }

    #[test]
    fn permutation_preserves_marginal() {
        let basis = BsplineBasis::tinge_default();
        let w = SparseWeights::from_normalized(&demo_values(), &basis);
        let m = u32::try_from(w.samples()).expect("test sample count fits u32");
        let perm: Vec<u32> = (0..m).map(|i| (i * 7 + 3) % m).collect(); // 37 prime ⇒ bijection
        let p0 = w.marginal();
        let p1 = w.permuted(&perm).marginal();
        for (a, b) in p0.iter().zip(&p1) {
            assert!(
                (a - b).abs() < 1e-6,
                "marginal must be permutation-invariant"
            );
        }
    }

    #[test]
    #[should_panic(expected = "permutation length mismatch")]
    fn wrong_permutation_length_panics() {
        let basis = BsplineBasis::tinge_default();
        let w = SparseWeights::from_normalized(&demo_values(), &basis);
        let _ = w.permuted(&[0, 1, 2]);
    }

    #[test]
    fn transposed_columns_match_column_views() {
        let basis = BsplineBasis::new(3, 10);
        let d = SparseWeights::from_normalized(&demo_values(), &basis).to_dense();
        let t = d.transposed_columns();
        assert_eq!(t.samples_padded() % F32x16::LANES, 0);
        for u in 0..d.bins() {
            let col = d.column(u);
            let stream = t.bin_stream(u);
            assert_eq!(&stream[..col.len()], &col[..]);
            assert!(stream[col.len()..].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn batch_conversion_matches_individual() {
        let basis = BsplineBasis::tinge_default();
        let g0: Vec<f32> = (0..20).map(|i| i as f32 / 19.0).collect();
        let g1: Vec<f32> = (0..20).map(|i| ((i * i) % 20) as f32 / 19.0).collect();
        let mut flat = g0.clone();
        flat.extend_from_slice(&g1);
        let batch = sparse_weights_for_genes(&flat, 2, 20, &basis);
        assert_eq!(batch[0], SparseWeights::from_normalized(&g0, &basis));
        assert_eq!(batch[1], SparseWeights::from_normalized(&g1, &basis));
    }

    #[test]
    fn heap_bytes_are_sane() {
        let basis = BsplineBasis::tinge_default();
        let w = SparseWeights::from_normalized(&demo_values(), &basis);
        assert_eq!(w.heap_bytes(), 37 * 2 + 37 * 3 * 4);
        let d = w.to_dense();
        assert_eq!(d.heap_bytes(), 37 * d.stride() * 4);
    }

    proptest! {
        #[test]
        fn prop_sample_weights_sum_to_one(
            values in proptest::collection::vec(0.0f32..=1.0, 1..100),
            order in 1usize..=5,
        ) {
            let basis = BsplineBasis::new(order, 10);
            let w = SparseWeights::from_normalized(&values, &basis);
            for s in 0..w.samples() {
                let sum: f32 = w.sample_weights(s).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(w.first_bin(s) + order <= w.bins());
            }
        }

        #[test]
        fn prop_dense_rows_partition_unity(
            values in proptest::collection::vec(0.0f32..=1.0, 1..100),
            order in 1usize..=5,
        ) {
            // The dense layout stores the same partition of unity as the
            // sparse one: each row's live cells sum to 1, every cell
            // outside the sample's k-wide window — including the lane
            // padding — is exactly 0.0 (bitwise; the kernels' entropy-
            // over-the-whole-slice shortcut depends on it).
            let basis = BsplineBasis::new(order, 10);
            let w = SparseWeights::from_normalized(&values, &basis);
            let d = w.to_dense();
            for s in 0..d.samples() {
                let row = d.row(s);
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4, "row {s} sums to {sum}");
                let fb = w.first_bin(s);
                for (u, &v) in row.iter().enumerate() {
                    if u < fb || u >= fb + order {
                        prop_assert!(
                            v.to_bits() == 0.0f32.to_bits(),
                            "row {s} col {u} outside the window holds {v}"
                        );
                    } else {
                        prop_assert!(v.to_bits() == w.sample_weights(s)[u - fb].to_bits());
                    }
                }
            }
        }

        #[test]
        fn prop_dense_roundtrip_marginal(values in proptest::collection::vec(0.0f32..=1.0, 1..80)) {
            let basis = BsplineBasis::tinge_default();
            let w = SparseWeights::from_normalized(&values, &basis);
            let ps = w.marginal();
            let pd = w.to_dense().marginal();
            for (a, b) in ps.iter().zip(&pd) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
