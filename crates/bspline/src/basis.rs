//! Open uniform B-spline basis over `b` bins (Cox–de Boor recursion).
//!
//! Following Daub et al., for `b` basis functions of order `k` the knot
//! vector has `b + k` entries:
//!
//! ```text
//! t_i = 0                for i < k
//! t_i = i - k + 1        for k ≤ i < b
//! t_i = b - k + 1        for i ≥ b
//! ```
//!
//! so the domain is `[0, b - k + 1]` and a normalized sample `x ∈ [0, 1]`
//! maps to `z = x · (b - k + 1)`. At any `z`, at most `k` consecutive basis
//! functions are non-zero and they sum to one (partition of unity), which is
//! what lets the weighted histogram remain a probability distribution.

/// Largest supported spline order. TINGe uses `k = 3`; we allow up to 8 so
/// ablations over the order are possible without changing storage layouts.
pub const MAX_ORDER: usize = 8;

/// An order-`k` B-spline basis over `b` bins with an open uniform knot
/// vector, plus scratch-free evaluation routines.
#[derive(Clone, Debug, PartialEq)]
pub struct BsplineBasis {
    order: usize,
    bins: usize,
    /// `bins + order` knots, non-decreasing.
    knots: Vec<f32>,
}

impl BsplineBasis {
    /// Create a basis with `bins` basis functions of order `order`.
    ///
    /// ```
    /// use gnet_bspline::BsplineBasis;
    /// let basis = BsplineBasis::new(3, 10);
    /// // Partition of unity at any sample point:
    /// let w = basis.eval_all(basis.sample_to_domain(0.37));
    /// assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    /// ```
    ///
    /// # Panics
    /// Panics if `order == 0`, `order > MAX_ORDER`, or `bins < order`
    /// (fewer bins than the order leaves no interior span).
    pub fn new(order: usize, bins: usize) -> Self {
        assert!(order >= 1, "spline order must be at least 1");
        assert!(
            order <= MAX_ORDER,
            "spline order {order} exceeds MAX_ORDER={MAX_ORDER}"
        );
        assert!(
            bins >= order,
            "need at least as many bins ({bins}) as the order ({order})"
        );
        assert!(
            bins <= 64,
            "more than 64 bins is outside the estimator's useful range"
        );
        let mut knots = Vec::with_capacity(bins + order);
        for i in 0..bins + order {
            let t = if i < order {
                0.0
            } else if i < bins {
                (i - order + 1) as f32 // cast-ok: i < bins <= 64, exact in f32
            } else {
                (bins - order + 1) as f32 // cast-ok: bins <= 64, exact in f32
            };
            knots.push(t);
        }
        Self { order, bins, knots }
    }

    /// The TINGe default: order 3, 10 bins.
    pub fn tinge_default() -> Self {
        Self::new(3, 10)
    }

    /// Spline order `k`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of bins / basis functions `b`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Upper end of the knot domain, `b - k + 1`.
    pub fn domain_max(&self) -> f32 {
        (self.bins - self.order + 1) as f32 // cast-ok: bins <= 64, exact in f32
    }

    /// Knot vector (length `b + k`).
    pub fn knots(&self) -> &[f32] {
        &self.knots
    }

    /// Map a normalized sample `x ∈ [0, 1]` into the knot domain.
    /// Values outside `[0, 1]` are clamped — upstream rank transformation
    /// guarantees the range, so clamping only absorbs rounding noise.
    pub fn sample_to_domain(&self, x: f32) -> f32 {
        x.clamp(0.0, 1.0) * self.domain_max()
    }

    /// Evaluate **all** `b` basis functions at `z` via the Cox–de Boor
    /// recursion. Returns a freshly allocated vector; prefer
    /// [`Self::eval_all_into`] in hot paths.
    pub fn eval_all(&self, z: f32) -> Vec<f32> {
        let mut out = vec![0.0; self.bins];
        self.eval_all_into(z, &mut out);
        out
    }

    /// Evaluate all `b` basis functions at `z` into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != bins`.
    pub fn eval_all_into(&self, z: f32, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.bins,
            "output buffer must have one slot per bin"
        );
        let k = self.order;
        let n_knots = self.knots.len();
        let z = z.clamp(0.0, self.domain_max());

        // Order-1 indicator functions over every knot interval. The final
        // non-empty interval is treated as closed so z == domain_max lands
        // in the last basis function instead of nowhere.
        let mut scratch = [0.0f32; 2 * MAX_ORDER + 64];
        let buf = &mut scratch[..n_knots - 1];
        let last_span = self.last_nonempty_span();
        for (i, slot) in buf.iter_mut().enumerate() {
            let t0 = self.knots[i];
            let t1 = self.knots[i + 1];
            let inside = (z >= t0 && z < t1) || (i == last_span && z >= t0 && z <= t1);
            *slot = if inside && t0 < t1 { 1.0 } else { 0.0 };
        }

        // Raise the order: B_{i,ord} from B_{i,ord-1} and B_{i+1,ord-1},
        // with the 0/0 = 0 convention for repeated knots.
        for ord in 2..=k {
            for i in 0..n_knots - ord {
                let denom_l = self.knots[i + ord - 1] - self.knots[i];
                let denom_r = self.knots[i + ord] - self.knots[i + 1];
                let left = if denom_l > 0.0 {
                    (z - self.knots[i]) / denom_l * buf[i]
                } else {
                    0.0
                };
                let right = if denom_r > 0.0 {
                    (self.knots[i + ord] - z) / denom_r * buf[i + 1]
                } else {
                    0.0
                };
                buf[i] = left + right;
            }
        }

        out.copy_from_slice(&buf[..self.bins]);
    }

    /// Evaluate the (at most `k`) non-zero basis functions at `z`.
    ///
    /// Returns `(first, weights)` where `weights[j]` is the value of basis
    /// function `first + j` and `first + k ≤ bins`. Weights sum to 1.
    pub fn eval_nonzero(&self, z: f32) -> (usize, [f32; MAX_ORDER]) {
        let mut full = [0.0f32; 64];
        debug_assert!(self.bins <= 64, "eval_nonzero scratch assumes ≤ 64 bins");
        self.eval_all_into(z, &mut full[..self.bins]);

        // At z in span [t_j, t_{j+1}), the non-zero functions are
        // j-k+1 ..= j; clamp the window into [0, bins - k].
        let span = self.find_span(z);
        let first = span
            .saturating_sub(self.order - 1)
            .min(self.bins - self.order);
        let mut w = [0.0f32; MAX_ORDER];
        w[..self.order].copy_from_slice(&full[first..first + self.order]);
        (first, w)
    }

    /// Index `i` of the knot span `[t_i, t_{i+1})` containing `z`, clamped
    /// to non-empty spans.
    fn find_span(&self, z: f32) -> usize {
        let z = z.clamp(0.0, self.domain_max());
        let last = self.last_nonempty_span();
        let mut i = self.order - 1; // first non-empty span starts at t_{k-1}
        while i < last && z >= self.knots[i + 1] {
            i += 1;
        }
        i
    }

    /// Index of the last non-empty knot span.
    fn last_nonempty_span(&self) -> usize {
        // Knots repeat at the tail; the last non-empty span is
        // [t_{b-1}, t_b) = [b-k, b-k+1).
        self.bins - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn knot_vector_matches_daub_construction() {
        let b = BsplineBasis::new(3, 10);
        assert_eq!(
            b.knots(),
            &[0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 8.0, 8.0]
        );
        assert_eq!(b.domain_max(), 8.0);
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_rejected() {
        let _ = BsplineBasis::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_ORDER")]
    fn huge_order_rejected() {
        let _ = BsplineBasis::new(9, 20);
    }

    #[test]
    #[should_panic(expected = "at least as many bins")]
    fn too_few_bins_rejected() {
        let _ = BsplineBasis::new(4, 3);
    }

    #[test]
    fn order_one_is_plain_histogram() {
        // Order-1 B-splines are the indicator functions of the bins, so the
        // estimator degenerates to the classic equal-width histogram.
        let b = BsplineBasis::new(1, 8);
        for (x, expected_bin) in [
            (0.0, 0),
            (0.124, 0),
            (0.126, 1),
            (0.5, 4),
            (0.99, 7),
            (1.0, 7),
        ] {
            let z = b.sample_to_domain(x);
            let vals = b.eval_all(z);
            for (i, v) in vals.iter().enumerate() {
                if i == expected_bin {
                    assert_eq!(*v, 1.0, "x={x} should activate bin {expected_bin}");
                } else {
                    assert_eq!(*v, 0.0, "x={x} bin {i} should be empty");
                }
            }
        }
    }

    #[test]
    fn partition_of_unity_at_sample_points() {
        for order in 1..=4 {
            let b = BsplineBasis::new(order, 10);
            for s in 0..=1000 {
                let x = s as f32 / 1000.0;
                let z = b.sample_to_domain(x);
                let sum: f32 = b.eval_all(z).iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-5,
                    "order {order}, x={x}: weights sum to {sum}"
                );
            }
        }
    }

    #[test]
    fn endpoints_are_interpolatory() {
        // Open knot vectors make the first/last basis function reach 1 at
        // the domain ends.
        let b = BsplineBasis::new(3, 10);
        let at0 = b.eval_all(0.0);
        assert!((at0[0] - 1.0).abs() < 1e-6);
        assert!(at0[1..].iter().all(|&v| v.abs() < 1e-6));
        let at_end = b.eval_all(b.domain_max());
        assert!((at_end[9] - 1.0).abs() < 1e-6, "got {at_end:?}");
        assert!(at_end[..9].iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn quadratic_midspan_value_is_exact() {
        // For order 3 on an interior span, the uniform quadratic B-spline at
        // the middle of its central span takes value 3/4 (the classic
        // quadratic cardinal B-spline peak).
        let b = BsplineBasis::new(3, 10);
        // Basis function i=4 has support [t4, t7] = [2, 5]; its central span
        // midpoint is 3.5.
        let vals = b.eval_all(3.5);
        assert!((vals[4] - 0.75).abs() < 1e-6, "got {}", vals[4]);
        assert!((vals[3] - 0.125).abs() < 1e-6);
        assert!((vals[5] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn eval_nonzero_matches_full_evaluation() {
        for order in 1..=5 {
            let b = BsplineBasis::new(order, 12);
            for s in 0..=500 {
                let x = s as f32 / 500.0;
                let z = b.sample_to_domain(x);
                let full = b.eval_all(z);
                let (first, w) = b.eval_nonzero(z);
                assert!(first + order <= b.bins());
                for (i, &fv) in full.iter().enumerate() {
                    let in_window = i >= first && i < first + order;
                    let wv = if in_window { w[i - first] } else { 0.0 };
                    assert!(
                        (fv - wv).abs() < 1e-6,
                        "order {order} x={x} bin {i}: full={fv} window={wv}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_samples_clamp() {
        let b = BsplineBasis::new(3, 10);
        assert_eq!(b.sample_to_domain(-0.5), 0.0);
        assert_eq!(b.sample_to_domain(1.5), b.domain_max());
        // Evaluation beyond the domain clamps rather than returning zeros.
        let v = b.eval_all(1e9);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn prop_partition_of_unity(order in 1usize..=6, bins in 6usize..=24, x in 0.0f32..=1.0) {
            prop_assume!(bins >= order);
            let b = BsplineBasis::new(order, bins);
            let sum: f32 = b.eval_all(b.sample_to_domain(x)).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }

        #[test]
        fn prop_weights_nonnegative(order in 1usize..=6, bins in 6usize..=24, x in 0.0f32..=1.0) {
            prop_assume!(bins >= order);
            let b = BsplineBasis::new(order, bins);
            for v in b.eval_all(b.sample_to_domain(x)) {
                prop_assert!(v >= -1e-6);
            }
        }

        #[test]
        fn prop_nonzero_window_sums_to_one(order in 1usize..=6, x in 0.0f32..=1.0) {
            let b = BsplineBasis::new(order, 16);
            let (_, w) = b.eval_nonzero(b.sample_to_domain(x));
            let s: f32 = w[..order].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
