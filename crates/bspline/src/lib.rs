//! B-spline basis machinery for the Daub et al. mutual-information estimator.
//!
//! TINGe — and therefore the IPDPS 2014 single-chip implementation this
//! repository reproduces — estimates mutual information with the
//! *generalized indicator function* approach of Daub et al. (BMC
//! Bioinformatics 2004): instead of assigning each sample to exactly one of
//! `b` histogram bins, a sample is spread over up to `k` adjacent bins with
//! weights given by order-`k` B-spline basis functions. This removes the
//! hard bin-boundary artifacts of the naive histogram estimator while
//! keeping the plug-in entropy formulas unchanged.
//!
//! The crate provides:
//!
//! * [`BsplineBasis`] — the open uniform knot vector over `b` bins, Cox–de
//!   Boor evaluation, and the `[0,1] → knot domain` sample mapping;
//! * [`SparseWeights`] — the per-gene `m × k` weight matrix (plus first-bin
//!   indices), the compact layout the scalar MI kernel consumes;
//! * [`DenseWeights`] — the per-gene `m × b` zero-padded layout whose
//!   columns make the joint-histogram accumulation a dense, lane-friendly
//!   `Bᵀ·B` product, which is exactly the restructuring the paper uses to
//!   reach the Phi's 512-bit vector unit.
//!
//! The two layouts are interconvertible and are tested to produce identical
//! marginals and joint histograms.

#![warn(missing_docs)]

pub mod basis;
pub mod weights;

pub use basis::{BsplineBasis, MAX_ORDER};
pub use weights::{DenseWeights, SparseWeights};
