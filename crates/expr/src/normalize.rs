//! Profile normalizations applied before MI estimation.
//!
//! TINGe's preprocessing replaces each gene's raw expression profile with
//! its **rank transform**: sample values are replaced by their rank mapped
//! uniformly onto `[0, 1]` (ties receive the average of their ranks). This
//! makes the estimator invariant to any monotone rescaling of the raw data
//! — exactly the property the paper relies on when it precomputes one
//! B-spline weight matrix per gene and reuses it for every pair.

use crate::matrix::ExpressionMatrix;

/// Rank-transform one profile in place of a fresh vector: value `v` becomes
/// `(rank(v) - 1) / (m - 1) ∈ [0, 1]`, average-ranked over ties.
///
/// A constant profile (all values tied) maps to all `0.5`, and a
/// single-sample profile maps to `[0.5]`.
pub fn rank_transform_profile(values: &[f32]) -> Vec<f32> {
    rank_from_order(values, &rank_sort_order(values))
}

/// The sort permutation the rank transform is built on: sample indices
/// ordered by `(value, index)`. NaNs compare `Equal` (rejected upstream, but
/// ordered deterministically by index anyway). Exposed separately from
/// [`rank_from_order`] so an incremental update can *merge* a stored order
/// with the order of newly appended samples instead of re-sorting — since
/// appended indices are all larger than stored ones, a stable old-first
/// merge reproduces this function's output exactly.
pub fn rank_sort_order(values: &[f32]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..values.len() as u32).collect();
    order.sort_by(|&a, &b| {
        values[a as usize]
            .partial_cmp(&values[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Finish the rank transform given the `(value, index)` sort permutation of
/// `values` (from [`rank_sort_order`] or an incremental merge): tie groups
/// receive the average of their 1-based ranks, then ranks are mapped onto
/// `[0, 1]`. `rank_from_order(v, &rank_sort_order(v))` is bitwise-identical
/// to [`rank_transform_profile`].
///
/// # Panics
/// Panics if `order.len() != values.len()`.
pub fn rank_from_order(values: &[f32], order: &[u32]) -> Vec<f32> {
    let m = values.len();
    assert_eq!(order.len(), m, "one order entry per sample");
    if m == 0 {
        return Vec::new();
    }
    if m == 1 {
        return vec![0.5];
    }
    let mut ranks = vec![0.0f64; m];
    let mut i = 0;
    while i < m {
        // Extend over the tie group [i, j).
        let mut j = i + 1;
        while j < m && values[order[j] as usize] == values[order[i] as usize] {
            j += 1;
        }
        // Average rank of the group, 1-based.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx as usize] = avg_rank;
        }
        i = j;
    }

    let denom = (m - 1) as f64;
    ranks
        .iter()
        .map(|&r| (((r - 1.0) / denom) as f32).clamp(0.0, 1.0))
        .collect()
}

/// Rank-transform every gene of a matrix (the TINGe preprocessing stage).
pub fn rank_transform(matrix: &ExpressionMatrix) -> ExpressionMatrix {
    let mut out = matrix.clone();
    for g in 0..matrix.genes() {
        let transformed = rank_transform_profile(matrix.gene(g));
        out.gene_mut(g).copy_from_slice(&transformed);
    }
    out
}

/// Z-score each gene (mean 0, unit variance). Constant genes become all
/// zeros. Used by the Pearson-correlation baseline.
pub fn z_score(matrix: &ExpressionMatrix) -> ExpressionMatrix {
    let mut out = matrix.clone();
    let m = matrix.samples();
    for g in 0..matrix.genes() {
        let row = out.gene_mut(g);
        let mean = row.iter().map(|&v| v as f64).sum::<f64>() / m as f64;
        let var = row.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / m as f64;
        let sd = var.sqrt();
        if sd > 0.0 {
            for v in row.iter_mut() {
                *v = ((*v as f64 - mean) / sd) as f32;
            }
        } else {
            row.fill(0.0);
        }
    }
    out
}

/// Remove batch effects by per-batch, per-gene centering: within each
/// batch, each gene's values are shifted to the gene's overall mean. This
/// is the standard first-line correction for compendium data aggregated
/// from many labs, and it must run *before* the rank transform (a global
/// per-batch shift re-orders ranks across batches and induces spurious
/// all-pairs dependence that no downstream estimator can undo).
///
/// `batch_labels[s]` gives the batch of sample `s` (any small integers).
///
/// # Panics
/// Panics if `batch_labels.len() != matrix.samples()`.
pub fn center_batches(matrix: &ExpressionMatrix, batch_labels: &[u32]) -> ExpressionMatrix {
    assert_eq!(
        batch_labels.len(),
        matrix.samples(),
        "one batch label per sample"
    );
    let m = matrix.samples();
    let max_batch = batch_labels.iter().copied().max().unwrap_or(0) as usize;
    let mut out = matrix.clone();
    let mut batch_count = vec![0usize; max_batch + 1];
    for &b in batch_labels {
        batch_count[b as usize] += 1;
    }
    let mut batch_sum = vec![0.0f64; max_batch + 1];
    for g in 0..matrix.genes() {
        let row = out.gene_mut(g);
        let grand = row.iter().map(|&v| v as f64).sum::<f64>() / m as f64;
        batch_sum.fill(0.0);
        for (s, &v) in row.iter().enumerate() {
            batch_sum[batch_labels[s] as usize] += v as f64;
        }
        for (s, v) in row.iter_mut().enumerate() {
            let b = batch_labels[s] as usize;
            let batch_mean = batch_sum[b] / batch_count[b] as f64;
            *v = (*v as f64 - batch_mean + grand) as f32;
        }
    }
    out
}

/// Quantile-normalize across samples: every sample (array) is forced onto
/// the same value distribution — the average of the per-sample sorted
/// profiles — which is the standard microarray normalization applied
/// before any compendium analysis. Each sample's gene *ranking* is
/// preserved; only the values move. Ties within a sample receive the mean
/// of their target quantiles.
pub fn quantile_normalize(matrix: &ExpressionMatrix) -> ExpressionMatrix {
    let n = matrix.genes();
    let m = matrix.samples();
    // Reference distribution: mean of the sorted per-sample columns.
    let mut reference = vec![0.0f64; n];
    let mut column = vec![0.0f32; n];
    for s in 0..m {
        for (g, slot) in column.iter_mut().enumerate() {
            *slot = matrix.get(g, s);
        }
        column.sort_by(f32::total_cmp);
        for (r, &v) in column.iter().enumerate() {
            reference[r] += v as f64;
        }
    }
    for v in &mut reference {
        *v /= m as f64;
    }

    let mut out = matrix.clone();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for s in 0..m {
        order.clear();
        order.extend(0..n as u32);
        order.sort_by(|&a, &b| {
            matrix
                .get(a as usize, s)
                .total_cmp(&matrix.get(b as usize, s))
                .then(a.cmp(&b))
        });
        // Assign reference quantiles; average over tie groups so tied
        // genes stay tied.
        let mut r = 0;
        while r < n {
            let mut r2 = r + 1;
            let v = matrix.get(order[r] as usize, s);
            while r2 < n && matrix.get(order[r2] as usize, s) == v {
                r2 += 1;
            }
            let avg: f64 = reference[r..r2].iter().sum::<f64>() / (r2 - r) as f64;
            for &g in &order[r..r2] {
                out.set(g as usize, s, avg as f32);
            }
            r = r2;
        }
    }
    out
}

/// Min–max normalize each gene to `[0, 1]`. Constant genes become all 0.5.
/// This is the naive alternative to the rank transform; it is kept for the
/// estimator-sensitivity ablation.
pub fn min_max_normalize(matrix: &ExpressionMatrix) -> ExpressionMatrix {
    let mut out = matrix.clone();
    for g in 0..matrix.genes() {
        let row = out.gene_mut(g);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in row.iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi > lo {
            let inv = 1.0 / (hi - lo);
            for v in row.iter_mut() {
                *v = (*v - lo) * inv;
            }
        } else {
            row.fill(0.5);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MissingPolicy;
    use proptest::prelude::*;

    #[test]
    fn rank_transform_simple_ordering() {
        let r = rank_transform_profile(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![1.0, 0.0, 0.5]);
    }

    #[test]
    fn rank_transform_handles_ties_with_average_rank() {
        // Values [5, 5, 1, 9]: ranks are (2.5, 2.5, 1, 4) → normalized
        // ((r-1)/3): (0.5, 0.5, 0, 1).
        let r = rank_transform_profile(&[5.0, 5.0, 1.0, 9.0]);
        assert_eq!(r, vec![0.5, 0.5, 0.0, 1.0]);
    }

    #[test]
    fn constant_profile_maps_to_half() {
        let r = rank_transform_profile(&[7.0; 5]);
        assert_eq!(r, vec![0.5; 5]);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(rank_transform_profile(&[]).is_empty());
        assert_eq!(rank_transform_profile(&[42.0]), vec![0.5]);
        assert!(rank_sort_order(&[]).is_empty());
        assert_eq!(rank_from_order(&[42.0], &[0]), vec![0.5]);
    }

    #[test]
    fn rank_from_order_composes_to_rank_transform() {
        // The decomposition exists for incremental updates; its composition
        // must stay bitwise-identical to the one-shot transform.
        let profiles: [&[f32]; 4] = [
            &[30.0, 10.0, 20.0],
            &[5.0, 5.0, 1.0, 9.0],
            &[7.0; 5],
            &[0.3, -1.2, 5.5, 2.0, 0.0, 7.7, -1.2, 0.3],
        ];
        for values in profiles {
            let order = rank_sort_order(values);
            let composed = rank_from_order(values, &order);
            let direct = rank_transform_profile(values);
            assert_eq!(
                composed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn rank_transform_is_monotone_invariant() {
        let base = vec![0.3f32, -1.2, 5.5, 2.0, 0.0, 7.7];
        let mapped: Vec<f32> = base.iter().map(|&v| (v * 2.0 + 3.0).exp()).collect();
        assert_eq!(
            rank_transform_profile(&base),
            rank_transform_profile(&mapped)
        );
    }

    #[test]
    fn matrix_rank_transform_covers_all_genes() {
        let m = ExpressionMatrix::from_rows(
            &[vec![3.0, 1.0, 2.0], vec![10.0, 10.0, 0.0]],
            MissingPolicy::Error,
        )
        .unwrap();
        let t = rank_transform(&m);
        assert_eq!(t.gene(0), &[1.0, 0.0, 0.5]);
        assert_eq!(t.gene(1), &[0.75, 0.75, 0.0]);
    }

    #[test]
    fn z_score_mean_and_variance() {
        let m =
            ExpressionMatrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]], MissingPolicy::Error).unwrap();
        let z = z_score(&m);
        let row = z.gene(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn z_score_constant_gene_becomes_zero() {
        let m = ExpressionMatrix::from_rows(&[vec![5.0; 4]], MissingPolicy::Error).unwrap();
        assert_eq!(z_score(&m).gene(0), &[0.0; 4]);
    }

    #[test]
    fn min_max_covers_range() {
        let m = ExpressionMatrix::from_rows(&[vec![2.0, 6.0, 4.0]], MissingPolicy::Error).unwrap();
        assert_eq!(min_max_normalize(&m).gene(0), &[0.0, 1.0, 0.5]);
        let c = ExpressionMatrix::from_rows(&[vec![3.0; 3]], MissingPolicy::Error).unwrap();
        assert_eq!(min_max_normalize(&c).gene(0), &[0.5; 3]);
    }

    #[test]
    fn quantile_normalize_equalizes_sample_distributions() {
        // Three samples with very different scales.
        let m = ExpressionMatrix::from_rows(
            &[
                vec![1.0, 100.0, -5.0],
                vec![2.0, 300.0, -4.0],
                vec![3.0, 200.0, -6.0],
                vec![4.0, 400.0, -3.0],
            ],
            MissingPolicy::Error,
        )
        .unwrap();
        let qn = quantile_normalize(&m);
        // Every sample's sorted values must now be identical.
        let sorted_col = |s: usize| -> Vec<f32> {
            let mut c: Vec<f32> = (0..4).map(|g| qn.get(g, s)).collect();
            c.sort_by(f32::total_cmp);
            c
        };
        let c0 = sorted_col(0);
        assert_eq!(c0, sorted_col(1));
        assert_eq!(c0, sorted_col(2));
        // Rankings within each sample are preserved: sample 0 was already
        // ascending in gene order.
        for g in 0..3 {
            assert!(qn.get(g, 0) < qn.get(g + 1, 0));
        }
        // Sample 1's ordering (gene 0 < 2 < 1 < 3) survives.
        assert!(qn.get(0, 1) < qn.get(2, 1));
        assert!(qn.get(2, 1) < qn.get(1, 1));
        assert!(qn.get(1, 1) < qn.get(3, 1));
    }

    #[test]
    fn quantile_normalize_averages_ties() {
        let m = ExpressionMatrix::from_rows(
            &[vec![5.0, 1.0], vec![5.0, 2.0], vec![9.0, 3.0]],
            MissingPolicy::Error,
        )
        .unwrap();
        let qn = quantile_normalize(&m);
        // The two tied genes in sample 0 must stay tied.
        assert_eq!(qn.get(0, 0), qn.get(1, 0));
        assert!(qn.get(2, 0) > qn.get(0, 0));
    }

    #[test]
    fn quantile_normalize_is_idempotent() {
        let m = ExpressionMatrix::from_rows(
            &[
                vec![3.0, 7.0, 1.0],
                vec![9.0, 2.0, 5.0],
                vec![4.0, 6.0, 8.0],
            ],
            MissingPolicy::Error,
        )
        .unwrap();
        let once = quantile_normalize(&m);
        let twice = quantile_normalize(&once);
        for g in 0..3 {
            for s in 0..3 {
                assert!(
                    (once.get(g, s) - twice.get(g, s)).abs() < 1e-5,
                    "({g},{s}): {} vs {}",
                    once.get(g, s),
                    twice.get(g, s)
                );
            }
        }
    }

    #[test]
    fn center_batches_removes_a_pure_batch_shift() {
        // Gene values 1..6 with batch 1 shifted by +10: centering must
        // recover the unshifted profile exactly (up to f32).
        let clean = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let labels = vec![0u32, 0, 0, 1, 1, 1];
        let mut shifted = clean.clone();
        for v in &mut shifted[3..6] {
            *v += 10.0;
        }
        let m = ExpressionMatrix::from_rows(&[shifted], MissingPolicy::Error).unwrap();
        let fixed = center_batches(&m, &labels);
        // Per-batch means removed, grand mean restored: both batches now
        // share the gene's (shifted) grand mean offset.
        let row = fixed.gene(0);
        let b0: f32 = row[..3].iter().sum::<f32>() / 3.0;
        let b1: f32 = row[3..].iter().sum::<f32>() / 3.0;
        assert!(
            (b0 - b1).abs() < 1e-4,
            "batch means must agree: {b0} vs {b1}"
        );
        // Within-batch structure (differences) is untouched.
        assert!((row[1] - row[0] - 1.0).abs() < 1e-5);
        assert!((row[5] - row[4] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn center_batches_is_identity_for_single_batch() {
        let m = ExpressionMatrix::from_rows(&[vec![3.0, 1.0, 2.0]], MissingPolicy::Error).unwrap();
        let out = center_batches(&m, &[0, 0, 0]);
        for (a, b) in out.gene(0).iter().zip(m.gene(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "one batch label per sample")]
    fn center_batches_checks_label_length() {
        let m = ExpressionMatrix::from_rows(&[vec![1.0, 2.0]], MissingPolicy::Error).unwrap();
        let _ = center_batches(&m, &[0]);
    }

    proptest! {
        #[test]
        fn prop_rank_output_in_unit_interval(
            values in proptest::collection::vec(-1e6f32..1e6, 2..200)
        ) {
            for v in rank_transform_profile(&values) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn prop_rank_includes_endpoints_when_untied(
            values in proptest::collection::vec(-1e6f32..1e6, 2..100)
        ) {
            // With all-distinct values the min maps to 0 and max to 1.
            let mut distinct = values.clone();
            distinct.sort_by(f32::total_cmp);
            distinct.dedup();
            prop_assume!(distinct.len() == values.len());
            let r = rank_transform_profile(&values);
            let lo = r.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = r.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(lo, 0.0);
            prop_assert_eq!(hi, 1.0);
        }

        #[test]
        fn prop_rank_preserves_order(
            values in proptest::collection::vec(-1e3f32..1e3, 2..100)
        ) {
            let r = rank_transform_profile(&values);
            for i in 0..values.len() {
                for j in 0..values.len() {
                    if values[i] < values[j] {
                        prop_assert!(r[i] < r[j]);
                    } else if values[i] == values[j] {
                        prop_assert_eq!(r[i], r[j]);
                    }
                }
            }
        }
    }
}
