//! Flat row-major expression matrix storage.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How to treat missing (NaN) expression values on construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissingPolicy {
    /// Reject matrices containing any missing value.
    Error,
    /// Replace each gene's missing values with that gene's mean over the
    /// present values (the standard microarray-compendium fallback).
    MeanImpute,
    /// Replace missing values with zero (useful for already-centred data).
    ZeroFill,
}

/// Errors produced while building or mutating an expression matrix.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixError {
    /// Data length does not equal `genes * samples`.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// A missing value was found under [`MissingPolicy::Error`].
    MissingValue {
        /// Gene (row) index of the offending entry.
        gene: usize,
        /// Sample (column) index of the offending entry.
        sample: usize,
    },
    /// A gene row consists entirely of missing values, so imputation has no
    /// information to work with.
    AllMissingGene {
        /// Gene (row) index.
        gene: usize,
    },
    /// A non-finite (infinite) value was found.
    NonFinite {
        /// Gene (row) index of the offending entry.
        gene: usize,
        /// Sample (column) index of the offending entry.
        sample: usize,
    },
    /// Gene-name count does not match the number of rows.
    NameCountMismatch {
        /// Expected name count (rows).
        expected: usize,
        /// Provided name count.
        got: usize,
    },
    /// The matrix has zero genes or zero samples.
    Empty,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match genes*samples = {expected}"
                )
            }
            Self::MissingValue { gene, sample } => {
                write!(f, "missing value at gene {gene}, sample {sample}")
            }
            Self::AllMissingGene { gene } => {
                write!(f, "gene {gene} has no observed values to impute from")
            }
            Self::NonFinite { gene, sample } => {
                write!(f, "non-finite value at gene {gene}, sample {sample}")
            }
            Self::NameCountMismatch { expected, got } => {
                write!(f, "{got} gene names provided for {expected} genes")
            }
            Self::Empty => write!(f, "matrix must have at least one gene and one sample"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// An `n × m` expression matrix: `n` genes (rows) × `m` samples (columns),
/// stored flat and row-major so each gene is a contiguous slice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpressionMatrix {
    genes: usize,
    samples: usize,
    gene_names: Vec<String>,
    data: Vec<f32>,
}

impl ExpressionMatrix {
    /// Build from flat row-major data, applying `policy` to NaN entries.
    ///
    /// Infinite values are always rejected — they indicate a corrupted
    /// input rather than a biological missing measurement.
    pub fn from_flat(
        genes: usize,
        samples: usize,
        mut data: Vec<f32>,
        policy: MissingPolicy,
    ) -> Result<Self, MatrixError> {
        if genes == 0 || samples == 0 {
            return Err(MatrixError::Empty);
        }
        if data.len() != genes * samples {
            return Err(MatrixError::ShapeMismatch {
                expected: genes * samples,
                got: data.len(),
            });
        }
        for g in 0..genes {
            let row = &mut data[g * samples..(g + 1) * samples];
            // Infinities are rejected outright.
            for (s, v) in row.iter().enumerate() {
                if v.is_infinite() {
                    return Err(MatrixError::NonFinite { gene: g, sample: s });
                }
            }
            match policy {
                MissingPolicy::Error => {
                    if let Some(s) = row.iter().position(|v| v.is_nan()) {
                        return Err(MatrixError::MissingValue { gene: g, sample: s });
                    }
                }
                MissingPolicy::ZeroFill => {
                    for v in row.iter_mut() {
                        if v.is_nan() {
                            *v = 0.0;
                        }
                    }
                }
                MissingPolicy::MeanImpute => {
                    let mut sum = 0.0f64;
                    let mut count = 0usize;
                    for &v in row.iter() {
                        if !v.is_nan() {
                            sum += v as f64;
                            count += 1;
                        }
                    }
                    if count == 0 {
                        return Err(MatrixError::AllMissingGene { gene: g });
                    }
                    if count < samples {
                        let mean = (sum / count as f64) as f32;
                        for v in row.iter_mut() {
                            if v.is_nan() {
                                *v = mean;
                            }
                        }
                    }
                }
            }
        }
        let gene_names = (0..genes).map(|g| format!("G{g:05}")).collect();
        Ok(Self {
            genes,
            samples,
            gene_names,
            data,
        })
    }

    /// Build from per-gene rows (each row one gene's profile).
    pub fn from_rows(rows: &[Vec<f32>], policy: MissingPolicy) -> Result<Self, MatrixError> {
        if rows.is_empty() {
            return Err(MatrixError::Empty);
        }
        let samples = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * samples);
        for (g, row) in rows.iter().enumerate() {
            if row.len() != samples {
                return Err(MatrixError::ShapeMismatch {
                    expected: samples,
                    got: row.len().max(g), // row length is the informative part
                });
            }
            data.extend_from_slice(row);
        }
        Self::from_flat(rows.len(), samples, data, policy)
    }

    /// Zero-filled matrix (no missing-value handling needed).
    pub fn zeroed(genes: usize, samples: usize) -> Result<Self, MatrixError> {
        Self::from_flat(
            genes,
            samples,
            vec![0.0; genes * samples],
            MissingPolicy::Error,
        )
    }

    /// Replace the default (`G00000`-style) gene names.
    pub fn set_gene_names(&mut self, names: Vec<String>) -> Result<(), MatrixError> {
        if names.len() != self.genes {
            return Err(MatrixError::NameCountMismatch {
                expected: self.genes,
                got: names.len(),
            });
        }
        self.gene_names = names;
        Ok(())
    }

    /// Number of genes (rows).
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// Number of samples (columns).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Gene names, one per row.
    pub fn gene_names(&self) -> &[String] {
        &self.gene_names
    }

    /// The contiguous expression profile of gene `g`.
    #[inline(always)]
    pub fn gene(&self, g: usize) -> &[f32] {
        &self.data[g * self.samples..(g + 1) * self.samples]
    }

    /// Mutable profile of gene `g`.
    #[inline(always)]
    pub fn gene_mut(&mut self, g: usize) -> &mut [f32] {
        &mut self.data[g * self.samples..(g + 1) * self.samples]
    }

    /// Single entry accessor.
    #[inline(always)]
    pub fn get(&self, g: usize, s: usize) -> f32 {
        debug_assert!(s < self.samples);
        self.data[g * self.samples + s]
    }

    /// Single entry mutator.
    #[inline(always)]
    pub fn set(&mut self, g: usize, s: usize, v: f32) {
        debug_assert!(s < self.samples);
        self.data[g * self.samples + s] = v;
    }

    /// Whole backing slice, row-major.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Consume into the backing vector.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// A new matrix containing only the selected gene rows (in the given
    /// order). Useful for sub-sampling experiments (R5 gene sweeps).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_genes(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.samples);
        let mut names = Vec::with_capacity(indices.len());
        for &g in indices {
            data.extend_from_slice(self.gene(g));
            names.push(self.gene_names[g].clone());
        }
        Self {
            genes: indices.len(),
            samples: self.samples,
            gene_names: names,
            data,
        }
    }

    /// A new matrix containing only the first `m` samples of every gene.
    /// Useful for sample-count sweeps (R6).
    ///
    /// # Panics
    /// Panics if `m` is zero or exceeds the sample count.
    pub fn truncate_samples(&self, m: usize) -> Self {
        assert!(
            m >= 1 && m <= self.samples,
            "sample truncation out of range"
        );
        let mut data = Vec::with_capacity(self.genes * m);
        for g in 0..self.genes {
            data.extend_from_slice(&self.gene(g)[..m]);
        }
        Self {
            genes: self.genes,
            samples: m,
            gene_names: self.gene_names.clone(),
            data,
        }
    }

    /// Heap footprint of the expression data in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_shape_checks() {
        assert_eq!(
            ExpressionMatrix::from_flat(2, 3, vec![0.0; 5], MissingPolicy::Error),
            Err(MatrixError::ShapeMismatch {
                expected: 6,
                got: 5
            })
        );
        assert_eq!(
            ExpressionMatrix::from_flat(0, 3, vec![], MissingPolicy::Error),
            Err(MatrixError::Empty)
        );
    }

    #[test]
    fn row_access_is_contiguous_and_correct() {
        let m =
            ExpressionMatrix::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.], MissingPolicy::Error)
                .unwrap();
        assert_eq!(m.gene(0), &[1., 2., 3.]);
        assert_eq!(m.gene(1), &[4., 5., 6.]);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn missing_policy_error_reports_location() {
        let err =
            ExpressionMatrix::from_flat(2, 2, vec![1.0, 2.0, f32::NAN, 4.0], MissingPolicy::Error)
                .unwrap_err();
        assert_eq!(err, MatrixError::MissingValue { gene: 1, sample: 0 });
    }

    #[test]
    fn mean_impute_fills_with_row_mean() {
        let m = ExpressionMatrix::from_flat(
            1,
            4,
            vec![2.0, f32::NAN, 4.0, f32::NAN],
            MissingPolicy::MeanImpute,
        )
        .unwrap();
        assert_eq!(m.gene(0), &[2.0, 3.0, 4.0, 3.0]);
    }

    #[test]
    fn mean_impute_rejects_all_missing_gene() {
        let err =
            ExpressionMatrix::from_flat(1, 2, vec![f32::NAN, f32::NAN], MissingPolicy::MeanImpute)
                .unwrap_err();
        assert_eq!(err, MatrixError::AllMissingGene { gene: 0 });
    }

    #[test]
    fn zero_fill_policy() {
        let m =
            ExpressionMatrix::from_flat(1, 3, vec![1.0, f32::NAN, 3.0], MissingPolicy::ZeroFill)
                .unwrap();
        assert_eq!(m.gene(0), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn infinities_always_rejected() {
        let err =
            ExpressionMatrix::from_flat(1, 2, vec![1.0, f32::INFINITY], MissingPolicy::MeanImpute)
                .unwrap_err();
        assert_eq!(err, MatrixError::NonFinite { gene: 0, sample: 1 });
    }

    #[test]
    fn default_names_then_custom_names() {
        let mut m = ExpressionMatrix::zeroed(3, 2).unwrap();
        assert_eq!(m.gene_names(), &["G00000", "G00001", "G00002"]);
        assert!(m
            .set_gene_names(vec![
                "AT1G01010".into(),
                "AT1G01020".into(),
                "AT1G01030".into()
            ])
            .is_ok());
        assert_eq!(m.gene_names()[0], "AT1G01010");
        assert!(m.set_gene_names(vec!["x".into()]).is_err());
    }

    #[test]
    fn select_genes_reorders_rows_and_names() {
        let mut m =
            ExpressionMatrix::from_flat(3, 2, vec![1., 2., 3., 4., 5., 6.], MissingPolicy::Error)
                .unwrap();
        m.set_gene_names(vec!["a".into(), "b".into(), "c".into()])
            .unwrap();
        let sub = m.select_genes(&[2, 0]);
        assert_eq!(sub.genes(), 2);
        assert_eq!(sub.gene(0), &[5., 6.]);
        assert_eq!(sub.gene(1), &[1., 2.]);
        assert_eq!(sub.gene_names(), &["c", "a"]);
    }

    #[test]
    fn truncate_samples_keeps_prefix() {
        let m =
            ExpressionMatrix::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.], MissingPolicy::Error)
                .unwrap();
        let t = m.truncate_samples(2);
        assert_eq!(t.samples(), 2);
        assert_eq!(t.gene(0), &[1., 2.]);
        assert_eq!(t.gene(1), &[4., 5.]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn truncate_to_zero_panics() {
        let m = ExpressionMatrix::zeroed(1, 3).unwrap();
        let _ = m.truncate_samples(0);
    }

    #[test]
    fn from_rows_checks_ragged_input() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(ExpressionMatrix::from_rows(&rows, MissingPolicy::Error).is_err());
    }

    #[test]
    fn error_display_messages() {
        let e = MatrixError::MissingValue { gene: 3, sample: 7 };
        assert!(e.to_string().contains("gene 3"));
        assert!(MatrixError::Empty.to_string().contains("at least one"));
    }
}
