// cast-ok (crate-wide): expression values are f32 and gene/sample indices
// are u32 by design (the paper's scale is ~15k genes × ~3k samples), so
// narrowing from f64 accumulators and usize counters is the intended
// representation, not an accident.
#![allow(clippy::cast_possible_truncation)]

//! Gene expression matrices and the preprocessing stage of the pipeline.
//!
//! The inference pipeline consumes an `n × m` matrix of expression values —
//! `n` genes (rows) by `m` experiments/samples (columns) — stored flat and
//! row-major so each gene's profile is one contiguous cache-friendly slice.
//! This crate owns:
//!
//! * [`ExpressionMatrix`] — the storage type, with validation and
//!   missing-value policies;
//! * [`normalize`] — the rank transformation TINGe applies before MI
//!   estimation (distribution-free, maps every profile onto a uniform grid
//!   in `[0, 1]`), plus z-score and min–max alternatives;
//! * [`stats`] — per-gene summary statistics and correlation measures used
//!   by the baseline methods and the data generators' tests;
//! * [`io`] — TSV interchange and a compact binary snapshot format.

#![warn(missing_docs)]

pub mod io;
pub mod matrix;
pub mod normalize;
pub mod stats;
pub mod synth;

pub use matrix::{ExpressionMatrix, MissingPolicy};
pub use normalize::{min_max_normalize, rank_transform, z_score};
