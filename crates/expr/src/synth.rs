//! Light-weight synthetic expression matrices for tests and benchmarks.
//!
//! These generators produce matrices with *controlled pairwise structure*
//! (independent noise, exactly correlated pairs, nonlinearly coupled pairs)
//! so the MI estimator's behaviour can be asserted analytically. The
//! mechanistic whole-network generator lives in `gnet-grnsim`; this module
//! is for micro-scale, statistically transparent inputs.

use crate::matrix::{ExpressionMatrix, MissingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a standard normal via Box–Muller from two uniforms.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// A `genes × samples` matrix of i.i.d. standard-normal noise — every pair
/// is independent, so a correct significance test should report (almost) no
/// edges.
pub fn independent_gaussian(genes: usize, samples: usize, seed: u64) -> ExpressionMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..genes * samples).map(|_| normal(&mut rng)).collect();
    ExpressionMatrix::from_flat(genes, samples, data, MissingPolicy::Error)
        .expect("generator produces finite values")
}

/// A matrix of i.i.d. uniform `[0, 1)` noise.
pub fn independent_uniform(genes: usize, samples: usize, seed: u64) -> ExpressionMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..genes * samples).map(|_| rng.gen::<f32>()).collect();
    ExpressionMatrix::from_flat(genes, samples, data, MissingPolicy::Error)
        .expect("generator produces finite values")
}

/// Kind of planted dependence between a gene pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Coupling {
    /// `y = ρ·x + sqrt(1-ρ²)·ε` — linear with correlation `ρ`.
    Linear(f32),
    /// `y = x² + σ·ε` — strong MI, near-zero Pearson when x is symmetric.
    Quadratic(f32),
    /// `y = sin(2πx·cycles) + σ·ε` — oscillatory dependence.
    Sinusoidal {
        /// Number of full periods across the x range.
        cycles: f32,
        /// Additive noise scale `σ`.
        noise: f32,
    },
}

/// A matrix where consecutive gene pairs `(2i, 2i+1)` carry the requested
/// coupling and everything across pairs is independent.
///
/// Requires an even number of genes. The returned ground-truth edge list
/// pairs `(2i, 2i+1)` for every `i`.
pub fn coupled_pairs(
    pairs: usize,
    samples: usize,
    coupling: Coupling,
    seed: u64,
) -> (ExpressionMatrix, Vec<(u32, u32)>) {
    let genes = pairs * 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; genes * samples];
    let mut truth = Vec::with_capacity(pairs);
    for p in 0..pairs {
        let gx = 2 * p;
        let gy = 2 * p + 1;
        for s in 0..samples {
            let x = normal(&mut rng);
            let e = normal(&mut rng);
            let y = match coupling {
                Coupling::Linear(rho) => rho * x + (1.0 - rho * rho).max(0.0).sqrt() * e,
                Coupling::Quadratic(noise) => x * x + noise * e,
                Coupling::Sinusoidal { cycles, noise } => {
                    (2.0 * std::f32::consts::PI * cycles * x).sin() + noise * e
                }
            };
            data[gx * samples + s] = x;
            data[gy * samples + s] = y;
        }
        truth.push((gx as u32, gy as u32));
    }
    let matrix = ExpressionMatrix::from_flat(genes, samples, data, MissingPolicy::Error)
        .expect("generator produces finite values");
    (matrix, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    #[test]
    fn independent_gaussian_is_deterministic_per_seed() {
        let a = independent_gaussian(4, 16, 7);
        let b = independent_gaussian(4, 16, 7);
        let c = independent_gaussian(4, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let m = independent_gaussian(1, 20_000, 42);
        let s = crate::stats::summarize(m.gene(0));
        assert!(s.mean.abs() < 0.05, "mean {}", s.mean);
        assert!((s.variance - 1.0).abs() < 0.05, "variance {}", s.variance);
    }

    #[test]
    fn uniform_range() {
        let m = independent_uniform(2, 1000, 3);
        for g in 0..2 {
            for &v in m.gene(g) {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn linear_coupling_produces_requested_correlation() {
        let (m, truth) = coupled_pairs(3, 5000, Coupling::Linear(0.8), 11);
        assert_eq!(m.genes(), 6);
        assert_eq!(truth, vec![(0, 1), (2, 3), (4, 5)]);
        for &(x, y) in &truth {
            let r = pearson(m.gene(x as usize), m.gene(y as usize));
            assert!((r - 0.8).abs() < 0.05, "pair ({x},{y}) correlation {r}");
        }
        // Cross-pair genes are independent.
        let r_cross = pearson(m.gene(0), m.gene(2));
        assert!(r_cross.abs() < 0.1, "cross-pair correlation {r_cross}");
    }

    #[test]
    fn quadratic_coupling_hides_from_pearson() {
        let (m, _) = coupled_pairs(1, 8000, Coupling::Quadratic(0.05), 13);
        let r = pearson(m.gene(0), m.gene(1));
        assert!(
            r.abs() < 0.1,
            "quadratic coupling should defeat Pearson, got {r}"
        );
        // …but y clearly depends on x: variance of y given |x| small differs
        // from overall. Proxy check: correlation of x² with y is high.
        let x2: Vec<f32> = m.gene(0).iter().map(|v| v * v).collect();
        let r2 = pearson(&x2, m.gene(1));
        assert!(r2 > 0.9, "x² vs y correlation {r2}");
    }

    #[test]
    fn sinusoidal_coupling_runs() {
        let (m, truth) = coupled_pairs(
            2,
            256,
            Coupling::Sinusoidal {
                cycles: 1.5,
                noise: 0.1,
            },
            5,
        );
        assert_eq!(m.genes(), 4);
        assert_eq!(truth.len(), 2);
    }
}
