//! Per-gene summary statistics and correlation measures.
//!
//! Pearson correlation backs the correlation-network baseline compared
//! against the MI network (extension experiments), and the summaries feed
//! the data generators' sanity tests. Accumulations run in `f64` regardless
//! of storage precision so long profiles do not lose mass.

use crate::matrix::ExpressionMatrix;
use crate::normalize::rank_transform_profile;

/// Summary statistics of one expression profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (divides by `m`).
    pub variance: f64,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
}

/// Compute a [`ProfileSummary`] with a single Welford pass.
pub fn summarize(values: &[f32]) -> ProfileSummary {
    assert!(!values.is_empty(), "cannot summarize an empty profile");
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        let x = v as f64;
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
        min = min.min(v);
        max = max.max(v);
    }
    ProfileSummary {
        mean,
        variance: m2 / values.len() as f64,
        min,
        max,
    }
}

/// Pearson correlation coefficient of two equal-length profiles.
///
/// Returns 0 when either profile is constant (no linear association is
/// definable), which is the convention the correlation-network baseline
/// needs to avoid spurious ±1 edges from flat genes.
///
/// # Panics
/// Panics if the profiles differ in length or are empty.
pub fn pearson(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    assert!(!x.is_empty(), "pearson: empty profiles");
    let m = x.len() as f64;
    let mean_x = x.iter().map(|&v| v as f64).sum::<f64>() / m;
    let mean_y = y.iter().map(|&v| v as f64).sum::<f64>() / m;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..x.len() {
        let dx = x[i] as f64 - mean_x;
        let dy = y[i] as f64 - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    // Sums of squares are non-negative; <= 0.0 is the exact constant-profile
    // guard without comparing floats for equality.
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Spearman rank correlation: Pearson on the rank-transformed profiles.
pub fn spearman(x: &[f32], y: &[f32]) -> f64 {
    let rx = rank_transform_profile(x);
    let ry = rank_transform_profile(y);
    pearson(&rx, &ry)
}

/// Indices of genes whose variance falls below `threshold` — candidates for
/// filtering before network construction (near-constant genes carry no MI
/// signal but cost as much as any other).
pub fn low_variance_genes(matrix: &ExpressionMatrix, threshold: f64) -> Vec<usize> {
    (0..matrix.genes())
        .filter(|&g| summarize(matrix.gene(g)).variance < threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MissingPolicy;

    #[test]
    fn summary_of_known_profile() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    #[should_panic(expected = "empty profile")]
    fn summary_of_empty_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn pearson_perfectly_correlated() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f32> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_profile_is_zero() {
        assert_eq!(pearson(&[1.0; 4], &[1.0, 2.0, 3.0, 4.0]), 0.0);
    }

    #[test]
    fn pearson_independent_axes() {
        // Symmetric cross pattern has zero linear correlation.
        let x = [1.0, -1.0, 0.0, 0.0];
        let y = [0.0, 0.0, 1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn spearman_detects_monotone_nonlinear_relation() {
        let x: Vec<f32> = (1..=20).map(|i| i as f32).collect();
        let y: Vec<f32> = x.iter().map(|&v| v.powi(3)).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-6);
        // Pearson of the same data is noticeably below 1.
        assert!(pearson(&x, &y) < 0.97);
    }

    #[test]
    fn low_variance_filter() {
        let m = ExpressionMatrix::from_rows(
            &[
                vec![1.0, 1.0, 1.0],
                vec![0.0, 10.0, 20.0],
                vec![2.0, 2.0, 2.1],
            ],
            MissingPolicy::Error,
        )
        .unwrap();
        assert_eq!(low_variance_genes(&m, 0.01), vec![0, 2]);
        assert_eq!(low_variance_genes(&m, 1e-9), vec![0]);
    }
}
