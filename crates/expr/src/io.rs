//! Expression-matrix interchange: TSV text and a compact binary snapshot.
//!
//! The TSV dialect matches the common microarray-compendium export: an
//! optional header line (`gene<TAB>sample names…`), then one line per gene
//! (`name<TAB>v1<TAB>v2…`). `NA`, `NaN`, and empty fields denote missing
//! values and are materialized as `f32::NAN` for the matrix's
//! [`MissingPolicy`](crate::matrix::MissingPolicy) to resolve.
//!
//! The binary snapshot (`GNEX` format) exists because the headline-scale
//! matrix (15,575 × 3,137 ≈ 49M floats) takes noticeable time to re-parse
//! from text between experiments.

use crate::matrix::{ExpressionMatrix, MatrixError, MissingPolicy};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from parsing or serializing expression matrices.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Text parse failure with line number (1-based) and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parsed data violated a matrix invariant.
    Matrix(MatrixError),
    /// Binary snapshot is corrupt or has the wrong magic/version.
    BadSnapshot(&'static str),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            Self::Matrix(e) => write!(f, "matrix error: {e}"),
            Self::BadSnapshot(why) => write!(f, "bad snapshot: {why}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<MatrixError> for IoError {
    fn from(e: MatrixError) -> Self {
        Self::Matrix(e)
    }
}

fn parse_field(field: &str, line: usize) -> Result<f32, IoError> {
    let t = field.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("na") || t.eq_ignore_ascii_case("nan") {
        return Ok(f32::NAN);
    }
    t.parse::<f32>().map_err(|_| IoError::Parse {
        line,
        message: format!("cannot parse expression value {t:?}"),
    })
}

/// Read a TSV expression matrix. `has_header` skips the first line.
pub fn read_tsv<R: Read>(
    reader: R,
    has_header: bool,
    policy: MissingPolicy,
) -> Result<ExpressionMatrix, IoError> {
    let buf = BufReader::new(reader);
    let mut names = Vec::new();
    let mut rows: Vec<f32> = Vec::new();
    let mut samples: Option<usize> = None;
    let mut genes = 0usize;

    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 && has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let name = fields.next().ok_or_else(|| IoError::Parse {
            line: lineno,
            message: "empty line".into(),
        })?;
        let mut count = 0usize;
        for field in fields {
            rows.push(parse_field(field, lineno)?);
            count += 1;
        }
        match samples {
            None => {
                if count == 0 {
                    return Err(IoError::Parse {
                        line: lineno,
                        message: "gene row has no expression values".into(),
                    });
                }
                samples = Some(count);
            }
            Some(expected) if expected != count => {
                return Err(IoError::Parse {
                    line: lineno,
                    message: format!("expected {expected} values, found {count}"),
                });
            }
            _ => {}
        }
        names.push(name.to_string());
        genes += 1;
    }

    let samples = samples.ok_or(IoError::Matrix(MatrixError::Empty))?;
    let mut matrix = ExpressionMatrix::from_flat(genes, samples, rows, policy)?;
    matrix.set_gene_names(names)?;
    Ok(matrix)
}

/// Write a TSV expression matrix with a header line.
pub fn write_tsv<W: Write>(matrix: &ExpressionMatrix, mut writer: W) -> Result<(), IoError> {
    write!(writer, "gene")?;
    for s in 0..matrix.samples() {
        write!(writer, "\tS{s:04}")?;
    }
    writeln!(writer)?;
    for g in 0..matrix.genes() {
        write!(writer, "{}", matrix.gene_names()[g])?;
        for &v in matrix.gene(g) {
            if v.is_nan() {
                write!(writer, "\tNA")?;
            } else {
                write!(writer, "\t{v}")?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

const SNAPSHOT_MAGIC: &[u8; 4] = b"GNEX";
const SNAPSHOT_VERSION: u8 = 1;

/// Serialize to the compact `GNEX` binary snapshot.
pub fn to_snapshot(matrix: &ExpressionMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + matrix.heap_bytes()
            + matrix
                .gene_names()
                .iter()
                .map(|n| n.len() + 4)
                .sum::<usize>(),
    );
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u8(SNAPSHOT_VERSION);
    buf.put_u32_le(matrix.genes() as u32);
    buf.put_u32_le(matrix.samples() as u32);
    for name in matrix.gene_names() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    for &v in matrix.as_flat() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserialize a `GNEX` binary snapshot.
pub fn from_snapshot(mut bytes: Bytes) -> Result<ExpressionMatrix, IoError> {
    if bytes.remaining() < 13 {
        return Err(IoError::BadSnapshot("truncated header"));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != SNAPSHOT_MAGIC {
        return Err(IoError::BadSnapshot("wrong magic"));
    }
    if bytes.get_u8() != SNAPSHOT_VERSION {
        return Err(IoError::BadSnapshot("unsupported version"));
    }
    let genes = bytes.get_u32_le() as usize;
    let samples = bytes.get_u32_le() as usize;
    let mut names = Vec::with_capacity(genes);
    for _ in 0..genes {
        if bytes.remaining() < 4 {
            return Err(IoError::BadSnapshot("truncated name table"));
        }
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len {
            return Err(IoError::BadSnapshot("truncated name"));
        }
        let name_bytes = bytes.split_to(len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| IoError::BadSnapshot("gene name is not UTF-8"))?
            .to_string();
        names.push(name);
    }
    if bytes.remaining() != genes * samples * 4 {
        return Err(IoError::BadSnapshot("payload size mismatch"));
    }
    let mut data = Vec::with_capacity(genes * samples);
    for _ in 0..genes * samples {
        data.push(bytes.get_f32_le());
    }
    // Snapshots may legitimately contain NaNs; keep them for the caller's
    // policy by using ZeroFill only when... no: preserve exactly. Snapshots
    // are written from already-validated matrices, so Error policy holds
    // unless the source had imputable NaNs, which were resolved pre-write.
    let mut matrix = ExpressionMatrix::from_flat(genes, samples, data, MissingPolicy::Error)?;
    matrix.set_gene_names(names)?;
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_matrix() -> ExpressionMatrix {
        let mut m = ExpressionMatrix::from_rows(
            &[vec![1.5, 2.5, 3.5], vec![-1.0, 0.0, 1.0]],
            MissingPolicy::Error,
        )
        .unwrap();
        m.set_gene_names(vec!["AT1G01010".into(), "AT1G01020".into()])
            .unwrap();
        m
    }

    #[test]
    fn tsv_roundtrip() {
        let m = demo_matrix();
        let mut out = Vec::new();
        write_tsv(&m, &mut out).unwrap();
        let parsed = read_tsv(&out[..], true, MissingPolicy::Error).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn tsv_without_header() {
        let text = "g1\t1.0\t2.0\ng2\t3.0\t4.0\n";
        let m = read_tsv(text.as_bytes(), false, MissingPolicy::Error).unwrap();
        assert_eq!(m.genes(), 2);
        assert_eq!(m.gene(1), &[3.0, 4.0]);
        assert_eq!(m.gene_names(), &["g1", "g2"]);
    }

    #[test]
    fn tsv_missing_values_respect_policy() {
        let text = "g1\t1.0\tNA\t3.0\n";
        let err = read_tsv(text.as_bytes(), false, MissingPolicy::Error);
        assert!(err.is_err());
        let m = read_tsv(text.as_bytes(), false, MissingPolicy::MeanImpute).unwrap();
        assert_eq!(m.gene(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn tsv_ragged_rows_rejected_with_line_number() {
        let text = "g1\t1.0\t2.0\ng2\t3.0\n";
        match read_tsv(text.as_bytes(), false, MissingPolicy::Error) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn tsv_bad_number_reported() {
        let text = "g1\t1.0\toops\n";
        match read_tsv(text.as_bytes(), false, MissingPolicy::Error) {
            Err(IoError::Parse { message, .. }) => assert!(message.contains("oops")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn tsv_skips_blank_lines() {
        let text = "g1\t1.0\n\n\ng2\t2.0\n";
        let m = read_tsv(text.as_bytes(), false, MissingPolicy::Error).unwrap();
        assert_eq!(m.genes(), 2);
    }

    #[test]
    fn snapshot_roundtrip() {
        let m = demo_matrix();
        let bytes = to_snapshot(&m);
        let back = from_snapshot(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let m = demo_matrix();
        let bytes = to_snapshot(&m);

        // Wrong magic.
        let mut bad = BytesMut::from(&bytes[..]);
        bad[0] = b'X';
        assert!(matches!(
            from_snapshot(bad.freeze()),
            Err(IoError::BadSnapshot("wrong magic"))
        ));

        // Truncated payload.
        let truncated = bytes.slice(..bytes.len() - 3);
        assert!(from_snapshot(truncated).is_err());

        // Empty input.
        assert!(from_snapshot(Bytes::new()).is_err());
    }

    #[test]
    fn snapshot_rejects_wrong_version() {
        let m = demo_matrix();
        let mut raw = BytesMut::from(&to_snapshot(&m)[..]);
        raw[4] = 99;
        assert!(matches!(
            from_snapshot(raw.freeze()),
            Err(IoError::BadSnapshot("unsupported version"))
        ));
    }

    #[test]
    fn nan_written_as_na_token() {
        let m = ExpressionMatrix::from_flat(1, 2, vec![1.0, f32::NAN], MissingPolicy::ZeroFill)
            .unwrap();
        // ZeroFill resolved the NaN, so write a literal NaN via set().
        let mut m2 = m;
        m2.set(0, 1, f32::NAN);
        let mut out = Vec::new();
        write_tsv(&m2, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\tNA"));
    }
}
