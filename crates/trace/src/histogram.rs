//! Fixed-bucket latency histogram.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts
//! observations with `value_us <= 2^i`, for `i` in `0..=25` (1 µs up to
//! ~33.5 s), plus one overflow bucket. Power-of-two bounds make
//! `observe` branch-free (a leading-zeros instruction) and keep the
//! struct a fixed 28-word array — cheap to merge across threads and to
//! snapshot under a lock.

/// Number of bounded buckets (upper bounds `2^0 .. 2^25` µs).
const BOUNDED: usize = 26;

/// A fixed-bucket histogram of microsecond latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BOUNDED + 1],
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Total number of buckets, including the overflow bucket.
    pub const BUCKETS: usize = BOUNDED + 1;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; BOUNDED + 1],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Upper bound (inclusive, in µs) of bucket `i`, or `None` for the
    /// overflow bucket.
    #[must_use]
    pub fn bucket_bound_us(i: usize) -> Option<u64> {
        (i < BOUNDED).then(|| 1u64 << i)
    }

    /// Record one observation of `value_us` microseconds.
    pub fn observe_us(&mut self, value_us: u64) {
        let idx = if value_us <= 1 {
            0
        } else {
            // Index of the first power of two >= value: ceil(log2(v)).
            let ceil_log2 = 64 - (value_us - 1).leading_zeros() as usize;
            ceil_log2.min(BOUNDED)
        };
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
        self.min_us = self.min_us.min(value_us);
        self.max_us = self.max_us.max(value_us);
    }

    /// Add every observation of `other` into `self`.
    ///
    /// Merging an empty histogram is the identity (in either direction):
    /// the empty side contributes no counts, and its `min`/`max`
    /// sentinels (`u64::MAX`/`0`) are absorbing under `min`/`max`. Bucket
    /// and total counts saturate instead of overflowing, mirroring
    /// [`observe_us`](Self::observe_us)'s saturating sum.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, µs.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Smallest observation, µs (`None` when empty).
    #[must_use]
    pub fn min_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_us)
    }

    /// Largest observation, µs (`None` when empty).
    #[must_use]
    pub fn max_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_us)
    }

    /// Mean observation, µs (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`) in µs: the
    /// bound of the first bucket whose cumulative count reaches
    /// `q × count`, clamped to the observed maximum. The clamp makes
    /// single-sample histograms and `q = 1.0` exact (the bucket bound can
    /// only overshoot the true quantile, never undershoot it, and no
    /// observation exceeds `max_us`). Overflow-bucket quantiles report
    /// the observed max.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // cast-ok: rank ≤ count, which fits u64
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                return Some(Self::bucket_bound_us(i).map_or(self.max_us, |b| b.min(self.max_us)));
            }
        }
        Some(self.max_us)
    }

    /// Per-bucket counts, in bound order (overflow last).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let mut h = Histogram::new();
        h.observe_us(0); // bucket 0 (<= 1)
        h.observe_us(1); // bucket 0
        h.observe_us(2); // bucket 1 (<= 2)
        h.observe_us(3); // bucket 2 (<= 4)
        h.observe_us(1024); // bucket 10
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[2], 1);
        assert_eq!(h.bucket_counts()[10], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_us(), 1030);
        assert_eq!(h.min_us(), Some(0));
        assert_eq!(h.max_us(), Some(1024));
    }

    #[test]
    fn huge_values_go_to_overflow() {
        let mut h = Histogram::new();
        h.observe_us(u64::MAX);
        assert_eq!(h.bucket_counts()[Histogram::BUCKETS - 1], 1);
        assert_eq!(h.quantile_us(0.5), Some(u64::MAX));
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1000] {
            h.observe_us(v);
        }
        // p50 over ten ordered values ranks at the 5th (= 16 → bucket
        // bound 16).
        assert_eq!(h.quantile_us(0.5), Some(16));
        // 1000 lands in the 1024 bucket, but the quantile clamps to the
        // observed max — p100 is exact.
        assert_eq!(h.quantile_us(1.0), Some(1000));
        assert!(h.quantile_us(0.0).is_some());
        assert!((h.mean_us() - 151.1).abs() < 0.5);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        for v in [0u64, 1, 3, 1000, 1 << 25, (1 << 25) + 1, u64::MAX] {
            let mut h = Histogram::new();
            h.observe_us(v);
            for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
                assert_eq!(h.quantile_us(q), Some(v), "v={v}, q={q}");
            }
        }
    }

    #[test]
    fn top_bucket_saturation_is_exact() {
        // 2^25 µs is the bound of the last bounded bucket; anything above
        // goes to overflow, whose quantile is the observed max.
        let mut h = Histogram::new();
        h.observe_us(1 << 25);
        assert_eq!(h.bucket_counts()[BOUNDED - 1], 1);
        assert_eq!(h.quantile_us(1.0), Some(1 << 25));
        h.observe_us((1 << 25) + 1);
        assert_eq!(h.bucket_counts()[BOUNDED], 1);
        assert_eq!(h.quantile_us(1.0), Some((1 << 25) + 1));
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        let mut h = Histogram::new();
        h.observe_us(7);
        h.observe_us(4096);
        let reference = h.clone();
        // Non-empty ← empty.
        h.merge(&Histogram::new());
        assert_eq!(h, reference);
        // Empty ← non-empty.
        let mut empty = Histogram::new();
        empty.merge(&reference);
        assert_eq!(empty, reference);
        // Empty ← empty stays empty (min/max sentinels untouched).
        let mut e2 = Histogram::new();
        e2.merge(&Histogram::new());
        assert_eq!(e2, Histogram::new());
        assert_eq!(e2.quantile_us(0.5), None);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = Histogram::new();
        a.observe_us(1);
        // Force the count fields near the ceiling.
        a.count = u64::MAX - 1;
        a.counts[0] = u64::MAX - 1;
        a.sum_us = u64::MAX - 1;
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.bucket_counts()[0], u64::MAX);
        assert_eq!(a.sum_us(), u64::MAX);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe_us(5);
        a.observe_us(500);
        b.observe_us(50);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum_us(), 555);
        assert_eq!(merged.min_us(), Some(5));
        assert_eq!(merged.max_us(), Some(500));
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.min_us(), None);
        assert_eq!(h.max_us(), None);
        assert_eq!(h.mean_us(), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Histogram over a slice of observations, one `observe_us` each.
        fn of(values: &[u64]) -> Histogram {
            let mut h = Histogram::new();
            for &v in values {
                h.observe_us(v);
            }
            h
        }

        /// Deterministic Fisher–Yates driven by a SplitMix64 stream, so a
        /// generated `seed` picks an arbitrary merge order.
        fn shuffle<T>(items: &mut [T], mut seed: u64) {
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for i in (1..items.len()).rev() {
                #[allow(clippy::cast_possible_truncation)]
                // cast-ok: the modulus is an in-bounds index
                let j = (next() % (i as u64 + 1)) as usize;
                items.swap(i, j);
            }
        }

        proptest! {
            /// Merging per-chunk histograms in ANY order reproduces the
            /// histogram of the concatenated observations exactly —
            /// including when some chunks are empty.
            #[test]
            fn prop_merge_order_is_irrelevant(
                chunks in proptest::collection::vec(
                    proptest::collection::vec(0u64..=u64::MAX, 0..12),
                    0..8,
                ),
                seed in any::<u64>(),
            ) {
                let all: Vec<u64> = chunks.iter().flatten().copied().collect();
                let expected = of(&all);
                let mut parts: Vec<Histogram> =
                    chunks.iter().map(|c| of(c)).collect();
                shuffle(&mut parts, seed);
                let mut merged = Histogram::new();
                for p in &parts {
                    merged.merge(p);
                }
                prop_assert_eq!(&merged, &expected);
                // Quantiles agree too (same representation ⇒ same answers).
                for q in [0.0, 0.5, 0.95, 1.0] {
                    prop_assert_eq!(merged.quantile_us(q), expected.quantile_us(q));
                }
            }

            /// A single observation answers every quantile exactly.
            #[test]
            fn prop_single_sample_quantiles_exact(
                v in 0u64..=u64::MAX,
                q in 0.0f64..=1.0,
            ) {
                let mut h = Histogram::new();
                h.observe_us(v);
                prop_assert_eq!(h.quantile_us(q), Some(v));
            }

            /// Quantiles never exceed the observed max and p100 hits it.
            #[test]
            fn prop_quantiles_bounded_by_max(
                values in proptest::collection::vec(0u64..=u64::MAX, 1..40),
            ) {
                let h = of(&values);
                let max = *values.iter().max().expect("non-empty by construction");
                for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
                    let est = h.quantile_us(q).expect("non-empty histogram");
                    prop_assert!(est <= max, "q={} est={} max={}", q, est, max);
                }
                prop_assert_eq!(h.quantile_us(1.0), Some(max));
            }
        }
    }
}
