//! Fixed-bucket latency histogram.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts
//! observations with `value_us <= 2^i`, for `i` in `0..=25` (1 µs up to
//! ~33.5 s), plus one overflow bucket. Power-of-two bounds make
//! `observe` branch-free (a leading-zeros instruction) and keep the
//! struct a fixed 28-word array — cheap to merge across threads and to
//! snapshot under a lock.

/// Number of bounded buckets (upper bounds `2^0 .. 2^25` µs).
const BOUNDED: usize = 26;

/// A fixed-bucket histogram of microsecond latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BOUNDED + 1],
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Total number of buckets, including the overflow bucket.
    pub const BUCKETS: usize = BOUNDED + 1;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; BOUNDED + 1],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Upper bound (inclusive, in µs) of bucket `i`, or `None` for the
    /// overflow bucket.
    #[must_use]
    pub fn bucket_bound_us(i: usize) -> Option<u64> {
        (i < BOUNDED).then(|| 1u64 << i)
    }

    /// Record one observation of `value_us` microseconds.
    pub fn observe_us(&mut self, value_us: u64) {
        let idx = if value_us <= 1 {
            0
        } else {
            // Index of the first power of two >= value: ceil(log2(v)).
            let ceil_log2 = 64 - (value_us - 1).leading_zeros() as usize;
            ceil_log2.min(BOUNDED)
        };
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
        self.min_us = self.min_us.min(value_us);
        self.max_us = self.max_us.max(value_us);
    }

    /// Add every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, µs.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Smallest observation, µs (`None` when empty).
    #[must_use]
    pub fn min_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_us)
    }

    /// Largest observation, µs (`None` when empty).
    #[must_use]
    pub fn max_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_us)
    }

    /// Mean observation, µs (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`) in µs: the
    /// bound of the first bucket whose cumulative count reaches
    /// `q × count`. Overflow-bucket quantiles report the observed max.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // cast-ok: rank ≤ count, which fits u64
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(Self::bucket_bound_us(i).unwrap_or(self.max_us));
            }
        }
        Some(self.max_us)
    }

    /// Per-bucket counts, in bound order (overflow last).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let mut h = Histogram::new();
        h.observe_us(0); // bucket 0 (<= 1)
        h.observe_us(1); // bucket 0
        h.observe_us(2); // bucket 1 (<= 2)
        h.observe_us(3); // bucket 2 (<= 4)
        h.observe_us(1024); // bucket 10
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[2], 1);
        assert_eq!(h.bucket_counts()[10], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_us(), 1030);
        assert_eq!(h.min_us(), Some(0));
        assert_eq!(h.max_us(), Some(1024));
    }

    #[test]
    fn huge_values_go_to_overflow() {
        let mut h = Histogram::new();
        h.observe_us(u64::MAX);
        assert_eq!(h.bucket_counts()[Histogram::BUCKETS - 1], 1);
        assert_eq!(h.quantile_us(0.5), Some(u64::MAX));
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1000] {
            h.observe_us(v);
        }
        // p50 over ten ordered values ranks at the 5th (= 16 → bucket
        // bound 16).
        assert_eq!(h.quantile_us(0.5), Some(16));
        assert_eq!(h.quantile_us(1.0), Some(1024)); // bound of 1000's bucket
        assert!(h.quantile_us(0.0).is_some());
        assert!((h.mean_us() - 151.1).abs() < 0.5);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe_us(5);
        a.observe_us(500);
        b.observe_us(50);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum_us(), 555);
        assert_eq!(merged.min_us(), Some(5));
        assert_eq!(merged.max_us(), Some(500));
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.min_us(), None);
        assert_eq!(h.max_us(), None);
        assert_eq!(h.mean_us(), 0.0);
    }
}
