//! Line-buffered stderr diagnostics shared by every rank and thread.
//!
//! Multi-process runs (`gnet worker` meshes) and multi-threaded harnesses all
//! write human-facing diagnostics to stderr. Bare `eprintln!` calls issue one
//! `write` syscall per formatting fragment, so two ranks printing at once can
//! interleave *partial* lines. Everything user-facing funnels through this
//! module instead: the message is fully formatted into a `String` first, then
//! emitted with a single `write_all` under a process-wide mutex, so concurrent
//! writers can interleave only whole messages.
//!
//! Two entry points cover the two shapes of diagnostic output:
//! [`diag_line`] appends a trailing newline (ordinary log lines), while
//! [`diag_chunk`] writes the text exactly as given (carriage-return progress
//! bars that repaint in place).
//!
//! Both are best-effort: stderr write errors are ignored, matching the
//! behaviour of `eprintln!` on a closed descriptor, and a poisoned lock is
//! recovered rather than propagated — losing a diagnostic must never take the
//! computation down with it.

use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// Process-wide serialization point for stderr diagnostics.
static DIAG: Mutex<()> = Mutex::new(());

/// Write `text` and a trailing newline to stderr as one atomic chunk.
///
/// Use this for ordinary diagnostic lines ("status listening on …",
/// rank-tagged warnings). The full line is emitted with a single `write_all`
/// under the process-wide diagnostics lock, so lines from concurrent threads
/// never interleave mid-line.
pub fn diag_line(text: &str) {
    let mut buf = String::with_capacity(text.len() + 1);
    buf.push_str(text);
    buf.push('\n');
    write_locked(buf.as_bytes());
}

/// Write `text` to stderr exactly as given, as one atomic chunk.
///
/// Use this for in-place progress repaints that begin with `\r` and carry no
/// trailing newline. The chunk is emitted with a single `write_all` under the
/// same lock as [`diag_line`], so a repaint can never split another line.
pub fn diag_chunk(text: &str) {
    write_locked(text.as_bytes());
}

fn write_locked(bytes: &[u8]) {
    let _guard = DIAG.lock().unwrap_or_else(PoisonError::into_inner);
    let mut err = std::io::stderr().lock();
    // Diagnostics are best-effort: a closed or full stderr must not abort the
    // run, so write errors are deliberately dropped.
    let _ = err.write_all(bytes);
    let _ = err.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_calls_do_not_panic_or_deadlock() {
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for n in 0..16 {
                        if n % 2 == 0 {
                            diag_chunk(&format!("\r[test-diag {i}] chunk {n}"));
                        } else {
                            diag_line(&format!("[test-diag {i}] line {n}"));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("diag writer thread panicked");
        }
        diag_chunk("\r");
        diag_line("[test-diag] done");
    }
}
