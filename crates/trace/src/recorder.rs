//! The [`Recorder`] handle and its record types.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A typed field value attached to an [event](Recorder::event).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (NaN/inf render as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

/// A completed span, relative to the recorder's epoch.
#[derive(Clone, Debug)]
pub(crate) struct SpanRecord {
    pub(crate) name: String,
    pub(crate) start_us: u64,
    pub(crate) dur_us: u64,
}

/// A point-in-time event.
#[derive(Clone, Debug)]
pub(crate) struct EventRecord {
    pub(crate) name: String,
    pub(crate) t_us: u64,
    pub(crate) fields: Vec<(String, Value)>,
}

/// Progress of a tiled run, delivered to the progress sink installed via
/// [`Recorder::enabled_with_progress`].
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Work items completed so far.
    pub done: usize,
    /// Total work items.
    pub total: usize,
    /// Wall time since the recorder's epoch.
    pub elapsed: Duration,
}

impl Progress {
    /// Estimated time remaining, extrapolating the mean rate so far.
    /// `None` before the first completed item.
    #[must_use]
    pub fn eta(&self) -> Option<Duration> {
        if self.done == 0 || self.total <= self.done {
            return (self.total <= self.done).then_some(Duration::ZERO);
        }
        let per_item = self.elapsed.as_secs_f64() / self.done as f64;
        Some(Duration::from_secs_f64(
            per_item * (self.total - self.done) as f64,
        ))
    }

    /// Completed fraction in `0.0..=1.0`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }
}

type ProgressSink = Box<dyn Fn(Progress) + Send + Sync>;

/// A live sink for metric updates, fed *incrementally* as instrumented
/// code records counters and latency observations.
///
/// The trace buffer inside an enabled [`Recorder`] is post-hoc: it is
/// only read after the run, by the NDJSON/JSON exporters. A
/// `MetricsSink` is the live counterpart — install one with
/// [`Recorder::with_metrics`] and every
/// [`counter_add`](Recorder::counter_add) /
/// [`observe_us`](Recorder::observe_us) call is forwarded to it at
/// record time, whether or not the recorder itself is enabled. The
/// canonical implementation is `gnet-telemetry`'s `MetricsRegistry`
/// (atomics all the way down), which makes the forwarding cheap enough
/// for instrumented hot paths.
///
/// Implementations must tolerate concurrent calls from many threads.
pub trait MetricsSink: Send + Sync {
    /// Add `delta` to the named monotonic counter.
    fn counter_add(&self, name: &str, delta: u64);
    /// Record one microsecond observation into the named histogram.
    fn observe_us(&self, name: &str, value_us: u64);
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    pub(crate) events: Mutex<Vec<EventRecord>>,
    pub(crate) counters: Mutex<BTreeMap<String, u64>>,
    pub(crate) histograms: Mutex<BTreeMap<String, Histogram>>,
    progress: Option<ProgressSink>,
}

/// Cheap, cloneable handle to a trace buffer — or to nothing.
///
/// The default/[`disabled`](Recorder::disabled) handle is inert: every
/// record method returns after one branch, so instrumented code pays
/// nothing when tracing is off. An [`enabled`](Recorder::enabled) handle
/// shares one buffer across clones; recording is `&self` and thread-safe
/// (mutex-protected, called at tile granularity — never per pair).
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    /// Live metrics sink, orthogonal to the trace buffer: a disabled
    /// recorder with a sink still forwards counters/observations.
    metrics: Option<Arc<dyn MetricsSink>>,
}

/// RAII guard for a span: records `[creation, drop)` against the
/// recorder it came from. Inert when the recorder is disabled.
pub struct Span {
    ctx: Option<(Arc<Inner>, String, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.ctx.take() {
            let start_us = duration_us(start.duration_since(inner.epoch));
            let dur_us = duration_us(start.elapsed());
            lock(&inner.spans).push(SpanRecord {
                name,
                start_us,
                dur_us,
            });
        }
    }
}

/// Truncating conversion to whole microseconds (saturating at `u64::MAX`,
/// ~585 millennia).
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Mutex acquisition that survives a poisoned lock: trace buffers hold
/// plain data, so a panicked recording thread leaves them merely
/// incomplete, never structurally invalid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Recorder {
    /// The inert handle: records nothing, costs one branch per call.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            inner: None,
            metrics: None,
        }
    }

    /// A live recorder with a fresh buffer; its epoch is `now`.
    #[must_use]
    pub fn enabled() -> Self {
        Self::build(None)
    }

    /// A live recorder that additionally forwards [`Progress`] updates
    /// (tiles done / total / elapsed) to `sink`. The sink is called from
    /// worker threads after every completed work item — it should be
    /// cheap and rate-limit its own output.
    #[must_use]
    pub fn enabled_with_progress(sink: impl Fn(Progress) + Send + Sync + 'static) -> Self {
        Self::build(Some(Box::new(sink)))
    }

    fn build(progress: Option<ProgressSink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                progress,
            })),
            metrics: None,
        }
    }

    /// Attach a live [`MetricsSink`]: every subsequent
    /// [`counter_add`](Self::counter_add) and
    /// [`observe_us`](Self::observe_us) on this handle (and its clones)
    /// is forwarded to `sink` at record time. Works on disabled handles
    /// too — live telemetry does not require post-hoc tracing.
    #[must_use]
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Is this handle recording?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall time since the recorder's epoch (zero when disabled).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |i| i.epoch.elapsed())
    }

    /// Start a span; it records itself when the guard drops.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        Span {
            ctx: self
                .inner
                .as_ref()
                .map(|i| (Arc::clone(i), name.to_string(), Instant::now())),
        }
    }

    /// Record a point event with typed fields, stamped on the real clock.
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let Some(inner) = &self.inner else { return };
        let t_us = duration_us(inner.epoch.elapsed());
        self.event_at_us(name, t_us, fields);
    }

    /// Record a point event at an explicit timestamp (µs since epoch) —
    /// used by the simulator to emit *simulated-time* events.
    pub fn event_at_us(&self, name: &str, t_us: u64, fields: &[(&str, Value)]) {
        let Some(inner) = &self.inner else { return };
        lock(&inner.events).push(EventRecord {
            name: name.to_string(),
            t_us,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    /// Add `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(sink) = &self.metrics {
            sink.counter_add(name, delta);
        }
        let Some(inner) = &self.inner else { return };
        *lock(&inner.counters).entry(name.to_string()).or_insert(0) += delta;
    }

    /// Record a latency observation into the named histogram.
    pub fn observe(&self, name: &str, latency: Duration) {
        self.observe_us(name, duration_us(latency));
    }

    /// Record a raw microsecond observation into the named histogram.
    pub fn observe_us(&self, name: &str, value_us: u64) {
        if let Some(sink) = &self.metrics {
            sink.observe_us(name, value_us);
        }
        let Some(inner) = &self.inner else { return };
        lock(&inner.histograms)
            .entry(name.to_string())
            .or_default()
            .observe_us(value_us);
    }

    /// Forward a progress update to the installed sink, if any.
    pub fn progress(&self, done: usize, total: usize) {
        let Some(inner) = &self.inner else { return };
        if let Some(sink) = &inner.progress {
            sink(Progress {
                done,
                total,
                elapsed: inner.epoch.elapsed(),
            });
        }
    }

    /// Current value of a counter (`None` when disabled or never set).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        lock(&inner.counters).get(name).copied()
    }

    /// Snapshot of a histogram (`None` when disabled or never observed).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.as_ref()?;
        lock(&inner.histograms).get(name).cloned()
    }

    /// Number of completed spans so far (0 when disabled).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(&i.spans).len())
    }

    /// Number of recorded events with the given name (0 when disabled).
    #[must_use]
    pub fn event_count(&self, name: &str) -> usize {
        self.inner.as_ref().map_or(0, |i| {
            lock(&i.events).iter().filter(|e| e.name == name).count()
        })
    }

    pub(crate) fn inner(&self) -> Option<&Arc<Inner>> {
        self.inner.as_ref()
    }

    pub(crate) fn lock_of<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        lock(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter_add("x", 5);
        rec.observe_us("h", 100);
        rec.event("e", &[("k", Value::U64(1))]);
        let _span = rec.span("s");
        rec.progress(1, 2);
        assert_eq!(rec.counter("x"), None);
        assert_eq!(rec.span_count(), 0);
        assert!(rec.histogram("h").is_none());
        assert_eq!(rec.elapsed(), Duration::ZERO);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let rec = Recorder::enabled();
        let other = rec.clone();
        rec.counter_add("tiles", 3);
        other.counter_add("tiles", 4);
        assert_eq!(rec.counter("tiles"), Some(7));
    }

    #[test]
    fn spans_record_on_drop() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("stage.prep");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(rec.span_count(), 1);
    }

    #[test]
    fn histograms_observe_durations() {
        let rec = Recorder::enabled();
        rec.observe("tile_us", Duration::from_micros(7));
        rec.observe("tile_us", Duration::from_micros(900));
        let h = rec.histogram("tile_us").expect("histogram was observed");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us(), 907);
    }

    #[test]
    fn progress_sink_receives_updates() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let rec = Recorder::enabled_with_progress(move |p| {
            assert!(p.done <= p.total);
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        rec.progress(1, 4);
        rec.progress(2, 4);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn progress_eta_extrapolates() {
        let p = Progress {
            done: 2,
            total: 6,
            elapsed: Duration::from_secs(4),
        };
        let eta = p.eta().expect("eta defined after first item");
        assert!((eta.as_secs_f64() - 8.0).abs() < 1e-9);
        assert!((p.fraction() - 1.0 / 3.0).abs() < 1e-12);
        let done = Progress {
            done: 6,
            total: 6,
            elapsed: Duration::from_secs(4),
        };
        assert_eq!(done.eta(), Some(Duration::ZERO));
        let fresh = Progress {
            done: 0,
            total: 6,
            elapsed: Duration::ZERO,
        };
        assert_eq!(fresh.eta(), None);
    }

    #[test]
    fn metrics_sink_is_fed_even_when_disabled() {
        use std::sync::atomic::{AtomicU64, Ordering};
        #[derive(Default)]
        struct Tally {
            counts: AtomicU64,
            observed: AtomicU64,
        }
        impl MetricsSink for Tally {
            fn counter_add(&self, _name: &str, delta: u64) {
                // ordering: test tally, read after the calls return.
                self.counts.fetch_add(delta, Ordering::Relaxed);
            }
            fn observe_us(&self, _name: &str, value_us: u64) {
                // ordering: test tally, as above.
                self.observed.fetch_add(value_us, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(Tally::default());
        let rec = Recorder::disabled().with_metrics(Arc::clone(&sink) as Arc<dyn MetricsSink>);
        assert!(!rec.is_enabled(), "metrics do not imply tracing");
        rec.counter_add("pairs", 3);
        rec.clone().counter_add("pairs", 4);
        rec.observe_us("lat", 250);
        // ordering: reads after the single-threaded calls above.
        assert_eq!(sink.counts.load(Ordering::Relaxed), 7);
        assert_eq!(sink.observed.load(Ordering::Relaxed), 250);
        // An enabled recorder feeds both the sink and its own buffer.
        let both = Recorder::enabled().with_metrics(Arc::clone(&sink) as Arc<dyn MetricsSink>);
        both.counter_add("pairs", 5);
        assert_eq!(both.counter("pairs"), Some(5));
        // ordering: as above.
        assert_eq!(sink.counts.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn simulated_time_events_keep_their_timestamps() {
        let rec = Recorder::enabled();
        rec.event_at_us("sim.tile", 123_456, &[("thread", Value::U64(3))]);
        let mut out = Vec::new();
        rec.write_ndjson(&mut out).expect("vec sink cannot fail");
        let text = String::from_utf8(out).expect("ndjson output is utf-8");
        assert!(text.contains("\"t_us\":123456"), "{text}");
    }
}
