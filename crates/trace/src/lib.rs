//! Lightweight, std-only tracing and metrics for the pipeline.
//!
//! The paper's whole claim is a wall-clock number, so the reproduction
//! needs to *explain* its own timings, not just report three coarse stage
//! durations. This crate provides the instrumentation layer every other
//! crate records into:
//!
//! * **Spans** — monotonic wall-time intervals (`stage.prep`,
//!   `stage.mi`, …) captured via an RAII guard.
//! * **Counters** — named monotonic `u64` totals (`mi.joints_evaluated`,
//!   `scheduler.claims.t3`, …).
//! * **Histograms** — fixed power-of-two-bucket latency histograms in
//!   microseconds (`scheduler.tile_us`), mergeable and quantile-queryable.
//! * **Events** — point-in-time records with typed fields
//!   (`checkpoint.chunk`, `sim.tile`), timestamped either on the real
//!   monotonic clock or with caller-supplied *simulated* time.
//!
//! Everything hangs off a cheap, cloneable [`Recorder`] handle. The
//! default handle is **disabled**: every record call is a single
//! `Option` branch and no allocation, so instrumented hot paths cost
//! nothing in production runs (the acceptance budget is < 2% pipeline
//! overhead with tracing off — in practice it is unmeasurable, because
//! the pipeline only records at tile granularity).
//!
//! Exports: [`Recorder::write_ndjson`] streams every span/event/counter/
//! histogram as one JSON object per line (the `--trace` file);
//! [`Recorder::metrics_json`] renders a single summary document (the
//! `--metrics` file) that `gnet infer`, the `repro` harness, and CI all
//! share, so benchmark trajectories come from one instrumentation source.
//!
//! The crate is deliberately std-only (no serde, no clocks beyond
//! `Instant`): it sits below every other crate in the workspace graph.

#![warn(missing_docs)]

mod diag;
mod eta;
mod export;
mod histogram;
mod recorder;

pub use diag::{diag_chunk, diag_line};
pub use eta::EwmaEta;
pub use export::escape_json;
pub use histogram::Histogram;
pub use recorder::{MetricsSink, Progress, Recorder, Span, Value};
