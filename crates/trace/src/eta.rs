//! Smoothed ETA estimation for progress reporting.
//!
//! The naive ETA in [`Progress::eta`](crate::Progress::eta) extrapolates
//! the *mean* rate since the epoch, which reacts sluggishly to phase
//! changes (a run that warms up slowly then speeds up keeps
//! over-predicting for its whole tail) and jitters when driven from the
//! instantaneous rate instead. [`EwmaEta`] sits between the two: it feeds
//! the per-item cost of each completed *chunk* of work (the delta between
//! consecutive progress updates) into an exponentially weighted moving
//! average, so the estimate tracks the current regime while damping
//! chunk-to-chunk noise.

use crate::recorder::Progress;
use std::time::Duration;

/// Exponentially weighted moving-average ETA over chunk durations.
///
/// Feed every [`Progress`] update to [`update`](Self::update); each
/// update contributes one observation — the average per-item duration of
/// the chunk completed since the previous update — weighted `alpha` into
/// the running average. `eta()` then extrapolates the smoothed per-item
/// cost over the remaining items.
///
/// Updates that move time forward without completing items (or that go
/// backwards, e.g. after a resume re-bases `done`) leave the average
/// untouched, so a stalled pipeline reports its last believable estimate
/// instead of diverging.
#[derive(Clone, Debug)]
pub struct EwmaEta {
    alpha: f64,
    /// Smoothed seconds per work item; `None` until the first chunk.
    per_item: Option<f64>,
    last_done: usize,
    last_elapsed: Duration,
    total: usize,
    done: usize,
}

impl EwmaEta {
    /// Default smoothing factor: each new chunk carries 20% of the
    /// estimate, so the half-life is ~3 chunks — responsive without
    /// letting one slow tile swing the readout.
    pub const DEFAULT_ALPHA: f64 = 0.2;

    /// An estimator with the default smoothing factor.
    #[must_use]
    pub fn new() -> Self {
        Self::with_alpha(Self::DEFAULT_ALPHA)
    }

    /// An estimator weighting each new chunk observation by `alpha`
    /// (clamped to `(0, 1]`; `1.0` degenerates to the instantaneous
    /// chunk rate).
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(f64::EPSILON, 1.0)
        } else {
            Self::DEFAULT_ALPHA
        };
        Self {
            alpha,
            per_item: None,
            last_done: 0,
            last_elapsed: Duration::ZERO,
            total: 0,
            done: 0,
        }
    }

    /// Absorb one progress update. Returns the new ETA (same as
    /// [`eta`](Self::eta)) for callers that render immediately.
    pub fn update(&mut self, p: Progress) -> Option<Duration> {
        self.total = p.total;
        self.done = p.done;
        if p.done > self.last_done && p.elapsed >= self.last_elapsed {
            let items = (p.done - self.last_done) as f64;
            let span = (p.elapsed - self.last_elapsed).as_secs_f64();
            let observed = span / items;
            self.per_item = Some(match self.per_item {
                None => observed,
                Some(prev) => self.alpha * observed + (1.0 - self.alpha) * prev,
            });
        }
        // Re-base unconditionally: when `done` went backwards
        // (restart/resume) the next chunk measures against the new point
        // instead of polluting the average with a negative span.
        self.last_done = p.done;
        self.last_elapsed = p.elapsed;
        self.eta()
    }

    /// Estimated time remaining: smoothed per-item cost × items left.
    /// `None` before the first completed chunk; zero once done.
    #[must_use]
    pub fn eta(&self) -> Option<Duration> {
        if self.total > 0 && self.total <= self.done {
            return Some(Duration::ZERO);
        }
        let per_item = self.per_item?;
        let remaining = self.total.saturating_sub(self.done) as f64;
        Some(Duration::from_secs_f64(
            (per_item * remaining).clamp(0.0, f64::from(u32::MAX)),
        ))
    }

    /// The current smoothed per-item duration, if any chunk completed.
    #[must_use]
    pub fn per_item(&self) -> Option<Duration> {
        self.per_item.map(Duration::from_secs_f64)
    }
}

impl Default for EwmaEta {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(done: usize, total: usize, secs: f64) -> Progress {
        Progress {
            done,
            total,
            elapsed: Duration::from_secs_f64(secs),
        }
    }

    #[test]
    fn first_chunk_seeds_the_average() {
        let mut e = EwmaEta::new();
        assert_eq!(e.eta(), None);
        let eta = e.update(p(10, 100, 5.0)).expect("one chunk completed");
        // 0.5 s/item × 90 remaining.
        assert!((eta.as_secs_f64() - 45.0).abs() < 1e-9, "{eta:?}");
    }

    #[test]
    fn ewma_tracks_a_regime_change_faster_than_the_mean_rate() {
        // Synthetic series: 5 chunks of 10 items at 1 s/chunk, then the
        // run slows 10× — 5 chunks of 10 items at 10 s/chunk.
        let mut e = EwmaEta::with_alpha(0.5);
        let mut t = 0.0;
        let mut done = 0;
        for _ in 0..5 {
            t += 1.0;
            done += 10;
            e.update(p(done, 200, t));
        }
        for _ in 0..5 {
            t += 10.0;
            done += 10;
            e.update(p(done, 200, t));
        }
        let ewma_eta = e.eta().expect("chunks observed").as_secs_f64();
        let mean_eta = p(done, 200, t).eta().expect("mean defined").as_secs_f64();
        // Truth: 100 items left at 1 s/item = 100 s. Mean-rate says 55 s.
        assert!((mean_eta - 55.0).abs() < 1e-6, "{mean_eta}");
        assert!(
            ewma_eta > 90.0,
            "EWMA should be near the new regime, got {ewma_eta}"
        );
        assert!(ewma_eta > mean_eta, "EWMA must adapt faster than the mean");
    }

    #[test]
    fn smoothing_damps_single_outliers() {
        // Steady 1 s chunks with one 20 s hiccup: the instantaneous rate
        // would multiply the ETA by 20; the EWMA moves by only alpha.
        let mut e = EwmaEta::with_alpha(0.2);
        let mut t = 0.0;
        let mut done = 0;
        for i in 0..10 {
            t += if i == 5 { 20.0 } else { 1.0 };
            done += 10;
            e.update(p(done, 1000, t));
        }
        let per_item = e.per_item().expect("chunks observed").as_secs_f64();
        // Steady-state 0.1 s/item; the outlier (2 s/item) decays by
        // 0.8^4 ≈ 0.41 over the four chunks after it:
        // ≈ 0.1 + 0.2·1.9·0.41 ≈ 0.256.
        assert!(per_item < 0.35, "outlier over-weighted: {per_item}");
        assert!(per_item > 0.1, "outlier ignored entirely: {per_item}");
    }

    #[test]
    fn stalls_and_rebasing_do_not_corrupt_the_estimate() {
        let mut e = EwmaEta::new();
        e.update(p(10, 100, 1.0));
        let before = e.per_item();
        // Time advances, no items complete (stall): average unchanged.
        e.update(p(10, 100, 5.0));
        assert_eq!(e.per_item(), before);
        // `done` goes backwards (resume re-based): absorbed silently.
        e.update(p(4, 100, 6.0));
        assert_eq!(e.per_item(), before);
        // Next real chunk measures against the re-based point.
        let eta = e.update(p(8, 100, 7.0)).expect("chunk completed");
        assert!(eta.as_secs_f64() > 0.0);
    }

    #[test]
    fn completion_reports_zero() {
        let mut e = EwmaEta::new();
        e.update(p(50, 100, 2.0));
        assert_eq!(e.update(p(100, 100, 4.0)), Some(Duration::ZERO));
    }

    #[test]
    fn degenerate_alphas_are_clamped() {
        let a = EwmaEta::with_alpha(f64::NAN);
        assert!((a.alpha - EwmaEta::DEFAULT_ALPHA).abs() < 1e-12);
        let b = EwmaEta::with_alpha(7.0);
        assert!((b.alpha - 1.0).abs() < 1e-12);
        let c = EwmaEta::with_alpha(-1.0);
        assert!(c.alpha > 0.0);
    }
}
