//! NDJSON / JSON rendering of a recorder's buffers.
//!
//! Hand-rolled on purpose: the crate is std-only so it can sit below
//! everything else in the workspace graph. The schema (documented in
//! DESIGN.md §9) is a stable contract shared by `gnet infer --trace/
//! --metrics`, the `repro` harness, and the CI metrics artifact.

use crate::histogram::Histogram;
use crate::recorder::{EventRecord, Recorder, SpanRecord, Value};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn escape_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => escape_json(out, s),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn span_line(out: &mut String, s: &SpanRecord) {
    out.push_str("{\"type\":\"span\",\"name\":");
    escape_json(out, &s.name);
    let _ = write!(
        out,
        ",\"start_us\":{},\"dur_us\":{}}}",
        s.start_us, s.dur_us
    );
}

fn event_line(out: &mut String, e: &EventRecord) {
    out.push_str("{\"type\":\"event\",\"name\":");
    escape_json(out, &e.name);
    let _ = write!(out, ",\"t_us\":{}", e.t_us);
    if !e.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json(out, k);
            out.push(':');
            push_value(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

fn histogram_body(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum_us\":{},\"mean_us\":{:.3},\"min_us\":{},\"max_us\":{},\
         \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"buckets\":[",
        h.count(),
        h.sum_us(),
        h.mean_us(),
        h.min_us().unwrap_or(0),
        h.max_us().unwrap_or(0),
        h.quantile_us(0.50).unwrap_or(0),
        h.quantile_us(0.95).unwrap_or(0),
        h.quantile_us(0.99).unwrap_or(0),
    );
    let mut first = true;
    for (i, &c) in h.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue; // sparse render: empty buckets carry no information
        }
        if !first {
            out.push(',');
        }
        first = false;
        match Histogram::bucket_bound_us(i) {
            Some(bound) => {
                let _ = write!(out, "{{\"le_us\":{bound},\"count\":{c}}}");
            }
            None => {
                let _ = write!(out, "{{\"le_us\":null,\"count\":{c}}}");
            }
        }
    }
    out.push_str("]}");
}

impl Recorder {
    /// Stream the full trace as NDJSON: one meta line, then one line per
    /// span, event, counter, and histogram. A disabled recorder writes
    /// only the meta line.
    ///
    /// # Errors
    /// Propagates write errors from `w`.
    pub fn write_ndjson<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.write_ndjson_with_meta(w, &[])
    }

    /// [`write_ndjson`](Self::write_ndjson) with extra key/value pairs
    /// appended to the meta line — the hook distributed runs use to stamp
    /// each rank's stream with its rank id and clock offset without
    /// changing the schema version. Keys must not collide with the
    /// built-in meta keys (`type`, `format`, `version`, `elapsed_us`);
    /// collisions are the caller's bug and render as duplicate JSON keys.
    ///
    /// # Errors
    /// Propagates write errors from `w`.
    pub fn write_ndjson_with_meta<W: Write>(
        &self,
        w: &mut W,
        extra_meta: &[(&str, Value)],
    ) -> io::Result<()> {
        let mut line = String::with_capacity(256);
        line.push_str("{\"type\":\"meta\",\"format\":\"gnet-trace\",\"version\":1");
        let _ = write!(
            line,
            ",\"elapsed_us\":{}",
            u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
        );
        for (k, v) in extra_meta {
            line.push(',');
            escape_json(&mut line, k);
            line.push(':');
            push_value(&mut line, v);
        }
        line.push('}');
        writeln!(w, "{line}")?;
        let Some(inner) = self.inner() else {
            return Ok(());
        };
        for s in Self::lock_of(&inner.spans).iter() {
            line.clear();
            span_line(&mut line, s);
            writeln!(w, "{line}")?;
        }
        for e in Self::lock_of(&inner.events).iter() {
            line.clear();
            event_line(&mut line, e);
            writeln!(w, "{line}")?;
        }
        for (name, value) in Self::lock_of(&inner.counters).iter() {
            line.clear();
            line.push_str("{\"type\":\"counter\",\"name\":");
            escape_json(&mut line, name);
            let _ = write!(line, ",\"value\":{value}}}");
            writeln!(w, "{line}")?;
        }
        for (name, h) in Self::lock_of(&inner.histograms).iter() {
            line.clear();
            line.push_str("{\"type\":\"histogram\",\"name\":");
            escape_json(&mut line, name);
            line.push_str(",\"data\":");
            histogram_body(&mut line, h);
            line.push('}');
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Render the metrics summary as one JSON document: every span,
    /// counter, and histogram summary (events are trace-only detail). A
    /// disabled recorder renders an empty-but-valid document.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"format\":\"gnet-trace-metrics\",\"version\":1,\"spans\":[");
        if let Some(inner) = self.inner() {
            for (i, s) in Self::lock_of(&inner.spans).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                escape_json(&mut out, &s.name);
                let _ = write!(
                    out,
                    ",\"start_us\":{},\"dur_us\":{}}}",
                    s.start_us, s.dur_us
                );
            }
            out.push_str("],\"counters\":{");
            for (i, (name, value)) in Self::lock_of(&inner.counters).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_json(&mut out, name);
                let _ = write!(out, ":{value}");
            }
            out.push_str("},\"histograms\":{");
            for (i, (name, h)) in Self::lock_of(&inner.histograms).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_json(&mut out, name);
                out.push(':');
                histogram_body(&mut out, h);
            }
            out.push_str("},\"events\":");
            let _ = write!(out, "{}", Self::lock_of(&inner.events).len());
        } else {
            out.push_str("],\"counters\":{},\"histograms\":{},\"events\":0");
        }
        out.push('}');
        out
    }

    /// Write [`metrics_json`](Self::metrics_json) to `w` with a trailing
    /// newline.
    ///
    /// # Errors
    /// Propagates write errors from `w`.
    pub fn write_metrics_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{}", self.metrics_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_recorder() -> Recorder {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("stage.prep");
        }
        rec.counter_add("mi.pairs", 28);
        rec.observe("scheduler.tile_us", Duration::from_micros(33));
        rec.event(
            "checkpoint.chunk",
            &[
                ("tiles_done", Value::U64(4)),
                ("note", Value::Str("a \"quoted\" name\n".into())),
                ("bad", Value::F64(f64::NAN)),
            ],
        );
        rec
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        let mut out = String::new();
        escape_json(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn ndjson_lines_are_self_contained_objects() {
        let rec = sample_recorder();
        let mut out = Vec::new();
        rec.write_ndjson(&mut out).expect("vec sink cannot fail");
        let text = String::from_utf8(out).expect("ndjson output is utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 5, "{text}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"type\":\"histogram\""));
        assert!(text.contains("\"type\":\"event\""));
        // NaN must not leak into the JSON.
        assert!(text.contains("\"bad\":null"), "{text}");
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn metrics_json_summarizes_everything() {
        let rec = sample_recorder();
        let json = rec.metrics_json();
        assert!(json.contains("\"mi.pairs\":28"), "{json}");
        assert!(json.contains("\"scheduler.tile_us\""), "{json}");
        assert!(json.contains("\"events\":1"), "{json}");
        assert!(json.contains("\"p95_us\""), "{json}");
    }

    #[test]
    fn extra_meta_fields_land_on_the_meta_line() {
        let rec = Recorder::enabled();
        let mut out = Vec::new();
        rec.write_ndjson_with_meta(
            &mut out,
            &[
                ("rank", Value::U64(3)),
                ("clock_offset_us", Value::I64(-42)),
            ],
        )
        .expect("vec sink cannot fail");
        let text = String::from_utf8(out).expect("utf-8");
        let meta = text.lines().next().expect("meta line present");
        assert!(meta.contains("\"rank\":3"), "{meta}");
        assert!(meta.contains("\"clock_offset_us\":-42"), "{meta}");
        assert!(meta.ends_with('}'), "{meta}");
    }

    #[test]
    fn disabled_recorder_exports_valid_empty_documents() {
        let rec = Recorder::disabled();
        let json = rec.metrics_json();
        assert!(json.contains("\"counters\":{}"), "{json}");
        let mut out = Vec::new();
        rec.write_ndjson(&mut out).expect("vec sink cannot fail");
        assert_eq!(String::from_utf8(out).expect("utf-8").lines().count(), 1);
    }

    #[test]
    fn exports_parse_with_serde_json_shapes() {
        // Cheap structural validation without a parser dependency: every
        // brace/bracket balances in each NDJSON line and in the summary.
        fn balanced(s: &str) -> bool {
            let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
            for c in s.chars() {
                if in_str {
                    match (escaped, c) {
                        (true, _) => escaped = false,
                        (false, '\\') => escaped = true,
                        (false, '"') => in_str = false,
                        _ => {}
                    }
                    continue;
                }
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                if depth < 0 {
                    return false;
                }
            }
            depth == 0 && !in_str
        }
        let rec = sample_recorder();
        assert!(balanced(&rec.metrics_json()));
        let mut out = Vec::new();
        rec.write_ndjson(&mut out).expect("vec sink cannot fail");
        for line in String::from_utf8(out).expect("utf-8").lines() {
            assert!(balanced(line), "{line}");
        }
    }
}
