//! The MI computation as per-pair operation counts.

use crate::machine::MachineModel;
use serde::{Deserialize, Serialize};

/// Which kernel class the workload runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum KernelClass {
    /// Scalar scattered `k × k` kernel on sparse weights.
    ScalarSparse,
    /// Dense row-FMA kernel on lane-padded weights.
    #[default]
    VectorDense,
}

impl KernelClass {
    /// Stable short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::ScalarSparse => "scalar",
            Self::VectorDense => "vector",
        }
    }
}

/// Cycles charged per grid cell of the entropy reduction (xlogx + add),
/// scalar form. The vector form divides by the lane count.
const ENTROPY_CYCLES_PER_CELL: f64 = 10.0;

/// Cycles per weight-matrix element during per-gene preparation (rank
/// transform + Cox–de Boor), a second-order term checked against the
/// pipeline's measured preprocessing share.
const PREP_CYCLES_PER_ELEMENT: f64 = 40.0;

/// A complete description of one network-construction run, sufficient to
/// derive its operation counts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Number of genes `n`.
    pub genes: usize,
    /// Number of samples `m`.
    pub samples: usize,
    /// Spline order `k`.
    pub order: usize,
    /// Bins `b`.
    pub bins: usize,
    /// Null permutations `q`.
    pub q: usize,
    /// Kernel the run uses.
    pub kernel: KernelClass,
}

impl WorkloadModel {
    /// The headline configuration: Arabidopsis dimensions with the TINGe
    /// estimator defaults and 30 shared permutations.
    ///
    /// ```
    /// use gnet_phi::{MachineModel, WorkloadModel};
    /// let w = WorkloadModel::arabidopsis_headline();
    /// assert_eq!(w.pairs(), 121_282_525); // 15,575 × 15,574 / 2
    /// // The Phi gains far more from vectorization than the Xeon:
    /// let phi = w.vectorization_speedup(&MachineModel::xeon_phi_5110p());
    /// let xeon = w.vectorization_speedup(&MachineModel::xeon_e5_2670_2s());
    /// assert!(phi > 2.0 * xeon);
    /// ```
    pub fn arabidopsis_headline() -> Self {
        Self {
            genes: 15_575,
            samples: 3_137,
            order: 3,
            bins: 10,
            q: 30,
            kernel: KernelClass::VectorDense,
        }
    }

    /// Total gene pairs `n(n−1)/2`.
    pub fn pairs(&self) -> u64 {
        let n = self.genes as u64;
        n * (n - 1) / 2
    }

    /// Joint-entropy evaluations per pair (observed + `q` nulls).
    pub fn joints_per_pair(&self) -> u64 {
        self.q as u64 + 1
    }

    /// Bins padded to the lane width of `machine` (the dense layout).
    pub fn bins_padded(&self, machine: &MachineModel) -> usize {
        let lanes = machine.vector.f32_lanes.max(1);
        self.bins.div_ceil(lanes) * lanes
    }

    /// Cycles one thread at full core throughput needs for one pair
    /// (observed MI plus all nulls), on `machine`, under this kernel.
    pub fn pair_cycles(&self, machine: &MachineModel) -> f64 {
        let joints = self.joints_per_pair() as f64;
        let m = self.samples as f64;
        let k = self.order as f64;
        match self.kernel {
            KernelClass::ScalarSparse => {
                let accumulate = m * k * k * machine.scalar_mac_cycles;
                let entropy = (self.bins * self.bins) as f64 * ENTROPY_CYCLES_PER_CELL;
                joints * (accumulate + entropy)
            }
            KernelClass::VectorDense => {
                let lanes = machine.vector.f32_lanes as f64;
                let rows = (self.bins_padded(machine) as f64 / lanes).ceil();
                let accumulate =
                    m * k * rows * machine.vector_op_overhead / machine.vector.efficiency;
                let cells = (self.bins * self.bins_padded(machine)) as f64;
                let entropy = cells * ENTROPY_CYCLES_PER_CELL / lanes;
                joints * (accumulate + entropy)
            }
        }
    }

    /// Wall-clock seconds for one pair on one thread with `resident`
    /// threads sharing its core.
    pub fn pair_seconds(&self, machine: &MachineModel, resident: usize) -> f64 {
        let cycles = self.pair_cycles(machine);
        let rate = machine.clock_ghz * 1e9 * machine.thread_throughput(resident);
        cycles / rate
    }

    /// Cycles for the one-off per-gene preparation stage (rank transform,
    /// spline weights, marginal entropy) over the whole matrix.
    pub fn prep_cycles(&self) -> f64 {
        (self.genes as f64)
            * (self.samples as f64)
            * (self.bins as f64).max(1.0)
            * PREP_CYCLES_PER_ELEMENT
            / 10.0
    }

    /// Approximate DRAM traffic per pair in bytes (both weight matrices
    /// streamed once — the upper bound; tiling reduces it by the tile
    /// reuse factor). Used for the roofline check.
    pub fn pair_bytes_upper(&self, machine: &MachineModel) -> f64 {
        match self.kernel {
            KernelClass::ScalarSparse => {
                2.0 * self.samples as f64 * (self.order as f64 * 4.0 + 2.0)
            }
            KernelClass::VectorDense => {
                self.samples as f64
                    * ((self.order as f64 * 4.0 + 2.0) + self.bins_padded(machine) as f64 * 4.0)
            }
        }
    }

    /// Vectorization speedup predicted for `machine`: scalar over vector
    /// per-pair cycles (experiment R4's modeled series).
    pub fn vectorization_speedup(&self, machine: &MachineModel) -> f64 {
        let scalar = Self {
            kernel: KernelClass::ScalarSparse,
            ..*self
        };
        let vector = Self {
            kernel: KernelClass::VectorDense,
            ..*self
        };
        scalar.pair_cycles(machine) / vector.pair_cycles(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;

    fn headline() -> WorkloadModel {
        WorkloadModel::arabidopsis_headline()
    }

    #[test]
    fn pair_count_matches_formula() {
        let w = headline();
        assert_eq!(w.pairs(), 15_575u64 * 15_574 / 2);
        assert_eq!(w.joints_per_pair(), 31);
    }

    #[test]
    fn padding_matches_lane_width() {
        let w = headline();
        assert_eq!(w.bins_padded(&MachineModel::xeon_phi_5110p()), 16);
        assert_eq!(w.bins_padded(&MachineModel::xeon_e5_2670_2s()), 16);
        assert_eq!(w.bins_padded(&MachineModel::bluegene_l_1024()), 10);
    }

    #[test]
    fn phi_vectorization_speedup_is_large() {
        let w = headline();
        let s = w.vectorization_speedup(&MachineModel::xeon_phi_5110p());
        assert!(
            (6.0..14.0).contains(&s),
            "KNC vectorization gain should be order-of-magnitude, got {s:.2}"
        );
    }

    #[test]
    fn xeon_vectorization_speedup_is_smaller_but_real() {
        let w = headline();
        let phi = w.vectorization_speedup(&MachineModel::xeon_phi_5110p());
        let xeon = w.vectorization_speedup(&MachineModel::xeon_e5_2670_2s());
        assert!(xeon > 1.2, "AVX must still win, got {xeon:.2}");
        assert!(
            phi > 2.0 * xeon,
            "the Phi gain must dominate: {phi:.2} vs {xeon:.2}"
        );
    }

    #[test]
    fn scalar_kernel_costs_more_cycles_than_vector_everywhere() {
        let w = headline();
        for m in [
            MachineModel::xeon_phi_5110p(),
            MachineModel::xeon_e5_2670_2s(),
        ] {
            let scalar = WorkloadModel {
                kernel: KernelClass::ScalarSparse,
                ..w
            };
            let vector = WorkloadModel {
                kernel: KernelClass::VectorDense,
                ..w
            };
            assert!(
                scalar.pair_cycles(&m) > vector.pair_cycles(&m),
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn pair_cycles_scale_linearly_in_samples_and_q() {
        let w = headline();
        let machine = MachineModel::xeon_phi_5110p();
        let double_m = WorkloadModel {
            samples: w.samples * 2,
            ..w
        };
        let ratio = double_m.pair_cycles(&machine) / w.pair_cycles(&machine);
        assert!((ratio - 2.0).abs() < 0.05, "samples ratio {ratio}");

        let double_q = WorkloadModel { q: 61, ..w };
        let ratio_q = double_q.pair_cycles(&machine) / w.pair_cycles(&machine);
        assert!((ratio_q - 2.0).abs() < 0.05, "q ratio {ratio_q}");
    }

    #[test]
    fn pair_seconds_reflect_smt_contention() {
        let w = headline();
        let phi = MachineModel::xeon_phi_5110p();
        // 2 resident threads each run at 0.5 core rate = same per-thread
        // speed as 1 resident (KNC oddity), 4 resident are slower each.
        assert_eq!(w.pair_seconds(&phi, 1), w.pair_seconds(&phi, 2));
        assert!(w.pair_seconds(&phi, 4) > w.pair_seconds(&phi, 2));
    }

    #[test]
    fn headline_per_pair_time_is_sub_millisecond_on_phi() {
        let w = headline();
        let phi = MachineModel::xeon_phi_5110p();
        let t = w.pair_seconds(&phi, 4);
        assert!(
            t > 1e-5 && t < 5e-3,
            "per-pair time {t}s out of plausible range"
        );
    }

    #[test]
    fn kernel_names() {
        assert_eq!(KernelClass::ScalarSparse.name(), "scalar");
        assert_eq!(KernelClass::VectorDense.name(), "vector");
    }
}
