//! Energy-to-solution model (experiment R15).
//!
//! A first-order energy comparison alongside the time comparison: each
//! platform draws its published board/TDP power for the duration of the
//! simulated run, plus a host-system overhead for the coprocessor (the
//! card cannot run without a host). Energy-to-solution was a headline
//! argument for accelerators of the KNC generation, so the reproduction
//! models it next to the wall-clock results.

use crate::machine::MachineModel;
use serde::{Deserialize, Serialize};

/// Power draw of a modeled platform in watts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Active (compute) power of the platform itself.
    pub active_watts: f64,
    /// Host-system overhead drawn for the whole run (chassis, memory,
    /// and — for a coprocessor — the host CPU idling).
    pub overhead_watts: f64,
}

impl PowerModel {
    /// Published board/TDP figures for the modeled platforms; `None` if
    /// the machine has no preset power model.
    pub fn for_machine(machine: &MachineModel) -> Option<Self> {
        let name = machine.name.as_str();
        if name.contains("5110P") {
            // 225 W TDP card + ~120 W idling host system.
            Some(Self {
                active_watts: 225.0,
                overhead_watts: 120.0,
            })
        } else if name.contains("KNL") {
            // Self-hosted: 215 W TDP + platform overhead.
            Some(Self {
                active_watts: 215.0,
                overhead_watts: 80.0,
            })
        } else if name.contains("E5-2670") {
            // 2 × 115 W TDP + platform overhead.
            Some(Self {
                active_watts: 230.0,
                overhead_watts: 100.0,
            })
        } else if name.contains("Blue Gene") {
            // BG/L: ≈ 20 W per dual-core node ⇒ 512 nodes for 1,024 cores.
            Some(Self {
                active_watts: 512.0 * 20.0,
                overhead_watts: 0.0,
            })
        } else {
            None
        }
    }

    /// Total watts while running.
    pub fn total_watts(&self) -> f64 {
        self.active_watts + self.overhead_watts
    }

    /// Energy in kilojoules for a run of `wall_seconds`.
    pub fn energy_kj(&self, wall_seconds: f64) -> f64 {
        self.total_watts() * wall_seconds / 1000.0
    }
}

/// One platform's energy-to-solution row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Platform name.
    pub platform: String,
    /// Wall minutes.
    pub minutes: f64,
    /// Total draw in watts.
    pub watts: f64,
    /// Energy to solution in kilojoules.
    pub kilojoules: f64,
}

/// R15 — energy-to-solution for the headline run on every platform with a
/// power preset.
pub fn headline_energy() -> Vec<EnergyRow> {
    use crate::scenarios::{forward_projection, headline_predictions};
    let mut rows = Vec::new();
    let mut predictions = headline_predictions();
    // forward_projection re-lists KNC; take only the KNL row from it.
    predictions.extend(
        forward_projection()
            .into_iter()
            .filter(|p| p.platform.contains("KNL")),
    );
    for p in predictions {
        let machine_power = [
            MachineModel::xeon_phi_5110p(),
            MachineModel::xeon_e5_2670_2s(),
            MachineModel::bluegene_l_1024(),
            MachineModel::xeon_phi_7250_knl(),
        ]
        .into_iter()
        .find(|m| m.name == p.platform)
        .and_then(|m| PowerModel::for_machine(&m));
        if let Some(power) = machine_power {
            rows.push(EnergyRow {
                platform: p.platform.clone(),
                minutes: p.minutes,
                watts: power.total_watts(),
                kilojoules: power.energy_kj(p.minutes * 60.0),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_has_a_power_model() {
        for m in [
            MachineModel::xeon_phi_5110p(),
            MachineModel::xeon_e5_2670_2s(),
            MachineModel::bluegene_l_1024(),
            MachineModel::xeon_phi_7250_knl(),
        ] {
            let p = PowerModel::for_machine(&m).unwrap_or_else(|| panic!("{} lacks power", m.name));
            assert!(p.total_watts() > 50.0 && p.total_watts() < 20_000.0);
        }
    }

    #[test]
    fn energy_arithmetic() {
        let p = PowerModel {
            active_watts: 200.0,
            overhead_watts: 100.0,
        };
        assert_eq!(p.total_watts(), 300.0);
        assert!((p.energy_kj(1000.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn phi_wins_energy_against_the_cluster_despite_losing_time() {
        let rows = headline_energy();
        let phi = rows
            .iter()
            .find(|r| r.platform.contains("5110P"))
            .expect("phi row");
        let bgl = rows
            .iter()
            .find(|r| r.platform.contains("Blue Gene"))
            .expect("bgl row");
        assert!(phi.minutes > bgl.minutes, "cluster is faster in time");
        assert!(
            phi.kilojoules < bgl.kilojoules,
            "…but the single chip wins energy: {} kJ vs {} kJ",
            phi.kilojoules,
            bgl.kilojoules
        );
    }

    #[test]
    fn knl_dominates_knc_in_both_time_and_energy() {
        let rows = headline_energy();
        let knc = rows
            .iter()
            .find(|r| r.platform.contains("KNC"))
            .expect("knc row");
        let knl = rows
            .iter()
            .find(|r| r.platform.contains("KNL"))
            .expect("knl row");
        assert!(knl.minutes < knc.minutes);
        assert!(knl.kilojoules < knc.kilojoules);
    }
}
