//! List-scheduling simulation of a tile set over a modeled machine.
//!
//! The simulator replays exactly the decomposition the real runtime uses
//! (`gnet-parallel`'s [`TileSpace`](gnet_parallel::TileSpace) tiles and
//! scheduling policies), but instead of executing kernels it charges each
//! tile its modeled duration on the thread that runs it. Durations depend
//! on the thread's SMT residency, so thread-count sweeps reproduce the
//! saturation shape of the paper's scaling figures; dispatch charges the
//! machine's sync cost, so the static/dynamic comparison reproduces the
//! load-imbalance gap.

use crate::machine::MachineModel;
use crate::workload::WorkloadModel;
use gnet_parallel::scheduler::{assign_block, assign_cyclic};
use gnet_parallel::{SchedulerPolicy, Tile};
use gnet_trace::Recorder;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Seconds of simulated time → whole microseconds for the trace clock.
fn sim_us(secs: f64) -> u64 {
    (secs * 1e6).max(0.0) as u64
}

/// Result of one simulated run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated end-to-end wall seconds (prep + pairwise stage).
    pub wall_seconds: f64,
    /// Simulated seconds of the one-off preparation stage.
    pub prep_seconds: f64,
    /// Per-thread busy seconds in the pairwise stage.
    pub per_thread_busy: Vec<f64>,
    /// Per-thread tile counts.
    pub per_thread_tiles: Vec<usize>,
    /// Fraction of sustained bandwidth the run demands (> 1 means the
    /// roofline clamped the time).
    pub bandwidth_utilization: f64,
    /// Pairs per wall second.
    pub pair_rate: f64,
}

impl SimReport {
    /// Max-over-mean busy-time imbalance of the pairwise stage.
    pub fn imbalance(&self) -> f64 {
        if self.per_thread_busy.is_empty() {
            return 1.0;
        }
        let max = self.per_thread_busy.iter().cloned().fold(0.0, f64::max);
        let mean = self.per_thread_busy.iter().sum::<f64>() / self.per_thread_busy.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// Simulate running `tiles` of `workload` on `machine` with `threads`
/// workers under `policy`.
///
/// # Panics
/// Panics if `threads` is zero or exceeds the machine's hardware contexts.
pub fn simulate_tiles(
    tiles: &[Tile],
    machine: &MachineModel,
    workload: &WorkloadModel,
    threads: usize,
    policy: SchedulerPolicy,
) -> SimReport {
    simulate_tiles_traced(
        tiles,
        machine,
        workload,
        threads,
        policy,
        &Recorder::disabled(),
    )
}

/// [`simulate_tiles`] with an instrumentation hook. Events carry
/// *simulated* timestamps (µs of modeled time, not wall time): one
/// `sim.tile` per tile placement (thread, pairs, duration), one
/// `sim.thread` summary per worker, and a final `sim.run` summary.
///
/// # Panics
/// Panics if `threads` is zero or exceeds the machine's hardware contexts.
pub fn simulate_tiles_traced(
    tiles: &[Tile],
    machine: &MachineModel,
    workload: &WorkloadModel,
    threads: usize,
    policy: SchedulerPolicy,
    rec: &Recorder,
) -> SimReport {
    assert!(threads >= 1, "need at least one thread");
    let occupancy = machine.occupancy(threads); // validates the bound

    // Thread t sits on core t % cores; its per-pair time follows from how
    // many threads share that core.
    let pair_secs: Vec<f64> = (0..threads)
        .map(|t| {
            let resident = occupancy[t % machine.cores];
            workload.pair_seconds(machine, resident)
        })
        .collect();
    // Dispatch cost differs by policy: static assignments are computed
    // once up front (no per-tile cost); the shared counter pays one
    // cross-chip atomic round trip per tile; work stealing pays a local
    // deque operation most of the time (modeled at a third of the
    // counter's cost).
    let sync = match policy {
        SchedulerPolicy::StaticBlock | SchedulerPolicy::StaticCyclic => 0.0,
        SchedulerPolicy::DynamicCounter => machine.sync_cost_us * 1e-6,
        SchedulerPolicy::RayonSteal => machine.sync_cost_us * 1e-6 / 3.0,
    };

    let (busy, tile_counts) = match policy {
        SchedulerPolicy::StaticBlock => replay_static(
            tiles,
            &pair_secs,
            sync,
            assign_block(tiles.len(), threads),
            rec,
        ),
        SchedulerPolicy::StaticCyclic => replay_static(
            tiles,
            &pair_secs,
            sync,
            assign_cyclic(tiles.len(), threads),
            rec,
        ),
        // Work stealing behaves like ideal list scheduling at this
        // granularity; the shared counter is list scheduling by
        // construction.
        SchedulerPolicy::DynamicCounter | SchedulerPolicy::RayonSteal => {
            replay_dynamic(tiles, &pair_secs, sync, rec)
        }
    };

    let pair_wall = busy.iter().cloned().fold(0.0, f64::max);
    let prep_seconds =
        workload.prep_cycles() / (machine.clock_ghz * 1e9 * machine.aggregate_throughput(threads));

    // First-order roofline: every tile streams its touched genes from DRAM
    // once (sparse weights plus the dense expansion of its column genes).
    let bytes_per_gene = workload.samples as f64
        * ((workload.order as f64 * 4.0 + 2.0) + workload.bins_padded(machine) as f64 * 4.0);
    let total_bytes: f64 = tiles
        .iter()
        .map(|t| t.genes_touched() as f64 * bytes_per_gene)
        .sum();
    let demanded_gbs = total_bytes / pair_wall.max(1e-12) / 1e9;
    let bandwidth_utilization = demanded_gbs / machine.stream_bw_gbs;
    let clamped_wall = pair_wall * bandwidth_utilization.max(1.0);

    let total_pairs: u64 = tiles.iter().map(Tile::pair_count).sum();
    let wall_seconds = prep_seconds + clamped_wall;
    if rec.is_enabled() {
        for (t, (&b, &n)) in busy.iter().zip(&tile_counts).enumerate() {
            rec.event_at_us(
                "sim.thread",
                sim_us(b),
                &[
                    ("thread", (t as u64).into()),
                    ("busy_s", b.into()),
                    ("tiles", (n as u64).into()),
                ],
            );
        }
        rec.event_at_us(
            "sim.run",
            sim_us(wall_seconds),
            &[
                ("wall_s", wall_seconds.into()),
                ("prep_s", prep_seconds.into()),
                ("threads", (threads as u64).into()),
                ("tiles", (tiles.len() as u64).into()),
                ("pairs", total_pairs.into()),
                ("bandwidth_utilization", bandwidth_utilization.into()),
            ],
        );
    }
    SimReport {
        wall_seconds,
        prep_seconds,
        per_thread_busy: busy,
        per_thread_tiles: tile_counts,
        bandwidth_utilization,
        pair_rate: total_pairs as f64 / wall_seconds.max(1e-12),
    }
}

fn replay_static(
    tiles: &[Tile],
    pair_secs: &[f64],
    sync: f64,
    assignment: Vec<Vec<usize>>,
    rec: &Recorder,
) -> (Vec<f64>, Vec<usize>) {
    let mut busy = vec![0.0; pair_secs.len()];
    let mut counts = vec![0usize; pair_secs.len()];
    for (t, indices) in assignment.into_iter().enumerate() {
        for idx in indices {
            let start = busy[t];
            busy[t] += sync + tiles[idx].pair_count() as f64 * pair_secs[t];
            counts[t] += 1;
            emit_sim_tile(rec, t, start, busy[t], tiles[idx].pair_count());
        }
    }
    (busy, counts)
}

/// Per-tile placement event on the *simulated* clock.
fn emit_sim_tile(rec: &Recorder, thread: usize, start_s: f64, end_s: f64, pairs: u64) {
    if rec.is_enabled() {
        rec.event_at_us(
            "sim.tile",
            sim_us(start_s),
            &[
                ("thread", (thread as u64).into()),
                ("dur_us", (sim_us(end_s) - sim_us(start_s)).into()),
                ("pairs", pairs.into()),
            ],
        );
    }
}

/// Greedy list scheduling: each tile (in order) goes to the thread that
/// becomes free first — the fluid limit of both the shared-counter scheme
/// and work stealing.
fn replay_dynamic(
    tiles: &[Tile],
    pair_secs: &[f64],
    sync: f64,
    rec: &Recorder,
) -> (Vec<f64>, Vec<usize>) {
    let threads = pair_secs.len();
    let mut busy = vec![0.0f64; threads];
    let mut counts = vec![0usize; threads];
    // Min-heap over (available_time, thread). f64 isn't Ord; scale to
    // integer nanoseconds for the key and keep exact times separately.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..threads).map(|t| Reverse((0u64, t))).collect();
    for tile in tiles {
        let Reverse((_, t)) = heap.pop().expect("heap holds every thread");
        let start = busy[t];
        busy[t] += sync + tile.pair_count() as f64 * pair_secs[t];
        counts[t] += 1;
        emit_sim_tile(rec, t, start, busy[t], tile.pair_count());
        heap.push(Reverse(((busy[t] * 1e9) as u64, t)));
    }
    (busy, counts)
}

/// Convenience sweep: simulated wall seconds at each thread count
/// (dynamic policy), for speedup curves.
pub fn scaling_curve(
    tiles: &[Tile],
    machine: &MachineModel,
    workload: &WorkloadModel,
    thread_counts: &[usize],
) -> Vec<(usize, f64)> {
    thread_counts
        .iter()
        .map(|&t| {
            (
                t,
                simulate_tiles(tiles, machine, workload, t, SchedulerPolicy::DynamicCounter)
                    .wall_seconds,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_parallel::TileSpace;

    fn small_workload() -> WorkloadModel {
        WorkloadModel {
            genes: 256,
            samples: 500,
            order: 3,
            bins: 10,
            q: 10,
            ..WorkloadModel::arabidopsis_headline()
        }
    }

    fn tiles() -> TileSpace {
        TileSpace::new(256, 32)
    }

    #[test]
    fn more_threads_is_never_slower_under_dynamic() {
        let machine = MachineModel::xeon_phi_5110p();
        let w = small_workload();
        // Fine tiling: enough tiles that even 244 threads are not starved
        // (with fewer tiles than threads, adding SMT residents genuinely
        // slows the run — a real granularity effect, tested separately).
        let sp = TileSpace::new(256, 4);
        let curve = scaling_curve(
            sp.tiles(),
            &machine,
            &w,
            &[1, 2, 4, 8, 16, 32, 61, 122, 244],
        );
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 * 1.01,
                "wall time must not grow with threads: {:?}",
                curve
            );
        }
    }

    #[test]
    fn knc_speedup_curve_has_the_paper_shape() {
        // Near-linear to 61 threads, roughly doubling again at 122, mild
        // gains to 244 — the KNC signature.
        let machine = MachineModel::xeon_phi_5110p();
        let w = small_workload();
        let sp = TileSpace::new(512, 16);
        let curve = scaling_curve(sp.tiles(), &machine, &w, &[1, 61, 122, 244]);
        let s61 = curve[0].1 / curve[1].1;
        let s122 = curve[0].1 / curve[2].1;
        let s244 = curve[0].1 / curve[3].1;
        assert!(s61 > 45.0 && s61 <= 61.5, "61-thread speedup {s61}");
        assert!(
            s122 / s61 > 1.7,
            "second thread/core ≈ doubles: {s122} vs {s61}"
        );
        assert!(
            s244 > s122 && s244 < s122 * 1.35,
            "tail threads help modestly"
        );
    }

    #[test]
    fn dynamic_beats_static_block_with_heterogeneous_threads() {
        // 150 threads on the Phi: 28 cores run 3 SMT threads (slower each),
        // 33 run 2 — static policies give every thread the same tile count
        // regardless of its rate, dynamic adapts.
        let machine = MachineModel::xeon_phi_5110p();
        let w = small_workload();
        let sp = TileSpace::new(300, 8);
        let dynamic = simulate_tiles(
            sp.tiles(),
            &machine,
            &w,
            150,
            SchedulerPolicy::DynamicCounter,
        );
        let static_b = simulate_tiles(sp.tiles(), &machine, &w, 150, SchedulerPolicy::StaticBlock);
        assert!(
            dynamic.wall_seconds < static_b.wall_seconds,
            "dynamic {} vs static {}",
            dynamic.wall_seconds,
            static_b.wall_seconds
        );
        assert!(dynamic.imbalance() <= static_b.imbalance() + 1e-9);
    }

    #[test]
    fn all_tiles_are_charged_exactly_once() {
        let machine = MachineModel::xeon_e5_2670_2s();
        let w = small_workload();
        let sp = tiles();
        for policy in SchedulerPolicy::ALL {
            let rep = simulate_tiles(sp.tiles(), &machine, &w, 8, policy);
            let tiles_run: usize = rep.per_thread_tiles.iter().sum();
            assert_eq!(tiles_run, sp.tiles().len(), "{policy:?}");
        }
    }

    #[test]
    fn prep_time_is_small_but_positive() {
        let machine = MachineModel::xeon_phi_5110p();
        let w = small_workload();
        let rep = simulate_tiles(
            tiles().tiles(),
            &machine,
            &w,
            61,
            SchedulerPolicy::DynamicCounter,
        );
        assert!(rep.prep_seconds > 0.0);
        assert!(
            rep.prep_seconds < rep.wall_seconds * 0.2,
            "preparation must stay a minor share: {} of {}",
            rep.prep_seconds,
            rep.wall_seconds
        );
    }

    #[test]
    fn compute_bound_workload_stays_under_the_roofline() {
        let machine = MachineModel::xeon_phi_5110p();
        let w = small_workload();
        let rep = simulate_tiles(
            tiles().tiles(),
            &machine,
            &w,
            244,
            SchedulerPolicy::DynamicCounter,
        );
        assert!(
            rep.bandwidth_utilization < 1.0,
            "MI at q=10 is compute-bound, got utilization {}",
            rep.bandwidth_utilization
        );
    }

    #[test]
    fn pair_rate_is_consistent_with_wall_time() {
        let machine = MachineModel::xeon_e5_2670_2s();
        let w = small_workload();
        let sp = tiles();
        let rep = simulate_tiles(
            sp.tiles(),
            &machine,
            &w,
            16,
            SchedulerPolicy::DynamicCounter,
        );
        let expected = sp.total_pairs() as f64 / rep.wall_seconds;
        assert!((rep.pair_rate - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn traced_simulation_emits_simulated_time_events() {
        let machine = MachineModel::xeon_e5_2670_2s();
        let w = small_workload();
        let sp = tiles();
        for policy in SchedulerPolicy::ALL {
            let rec = Recorder::enabled();
            let rep = simulate_tiles_traced(sp.tiles(), &machine, &w, 8, policy, &rec);
            assert_eq!(rec.event_count("sim.tile"), sp.tiles().len(), "{policy:?}");
            assert_eq!(rec.event_count("sim.thread"), 8, "{policy:?}");
            assert_eq!(rec.event_count("sim.run"), 1, "{policy:?}");
            // Tracing must not perturb the model.
            let plain = simulate_tiles(sp.tiles(), &machine, &w, 8, policy);
            assert_eq!(rep, plain, "{policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let machine = MachineModel::xeon_phi_5110p();
        let w = small_workload();
        let _ = simulate_tiles(
            tiles().tiles(),
            &machine,
            &w,
            0,
            SchedulerPolicy::DynamicCounter,
        );
    }
}
