//! Heterogeneous host + coprocessor execution model (extension R12).
//!
//! The paper presents a Xeon solution *and* a Xeon Phi solution; the
//! natural deployment (and the stated direction of the offload ecosystem
//! the Phi shipped with) is to use both at once: split the tile set
//! between the host CPU and the coprocessor, shipping the per-gene weight
//! matrices to the card once over PCIe. This module models that split:
//! each side runs its share of tiles under its own machine model, the
//! device additionally pays the one-off transfer and launch costs, and
//! the wall time is the maximum of the two sides.

use crate::machine::MachineModel;
use crate::sim::simulate_tiles;
use crate::workload::WorkloadModel;
use gnet_parallel::{SchedulerPolicy, Tile};
use serde::{Deserialize, Serialize};

/// A host + coprocessor pairing with its interconnect.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OffloadModel {
    /// The host processor.
    pub host: MachineModel,
    /// The coprocessor.
    pub device: MachineModel,
    /// Sustained host→device transfer bandwidth (GB/s). PCIe 2.0 x16 as
    /// shipped with KNC systems sustains ≈ 6 GB/s.
    pub transfer_gbs: f64,
    /// Fixed offload launch/teardown overhead in seconds.
    pub launch_overhead_s: f64,
}

impl OffloadModel {
    /// The paper's machine pair: dual E5-2670 host + Xeon Phi 5110P.
    pub fn paper_system() -> Self {
        Self {
            host: MachineModel::xeon_e5_2670_2s(),
            device: MachineModel::xeon_phi_5110p(),
            transfer_gbs: 6.0,
            launch_overhead_s: 0.5,
        }
    }

    /// Bytes of input state the device needs: every gene's sparse weight
    /// matrix (the dense expansion is rebuilt on-card per tile, exactly as
    /// on the host).
    pub fn transfer_bytes(&self, workload: &WorkloadModel) -> f64 {
        workload.genes as f64 * workload.samples as f64 * (workload.order as f64 * 4.0 + 2.0)
    }

    /// Simulate the run with a fraction `device_share ∈ [0, 1]` of the
    /// pair work on the coprocessor. Tiles are assigned greedily by pair
    /// count until the device share is reached, mirroring how the offload
    /// runtime would carve the tile list.
    ///
    /// Returns `(wall_seconds, device_seconds, host_seconds)`.
    ///
    /// # Panics
    /// Panics if `device_share` is outside `[0, 1]`.
    pub fn simulate_split(
        &self,
        tiles: &[Tile],
        workload: &WorkloadModel,
        device_share: f64,
    ) -> (f64, f64, f64) {
        assert!(
            (0.0..=1.0).contains(&device_share),
            "share must lie in [0, 1]"
        );
        let total_pairs: u64 = tiles.iter().map(Tile::pair_count).sum();
        let target = (total_pairs as f64 * device_share) as u64;

        let mut device_tiles = Vec::new();
        let mut host_tiles = Vec::new();
        let mut shipped = 0u64;
        for t in tiles {
            if shipped < target {
                device_tiles.push(*t);
                shipped += t.pair_count();
            } else {
                host_tiles.push(*t);
            }
        }

        let device_seconds = if device_tiles.is_empty() {
            0.0
        } else {
            let compute = simulate_tiles(
                &device_tiles,
                &self.device,
                workload,
                self.device.max_threads(),
                SchedulerPolicy::DynamicCounter,
            )
            .wall_seconds;
            let transfer = self.transfer_bytes(workload) / (self.transfer_gbs * 1e9);
            compute + transfer + self.launch_overhead_s
        };
        let host_seconds = if host_tiles.is_empty() {
            0.0
        } else {
            simulate_tiles(
                &host_tiles,
                &self.host,
                workload,
                self.host.max_threads(),
                SchedulerPolicy::DynamicCounter,
            )
            .wall_seconds
        };
        (
            device_seconds.max(host_seconds),
            device_seconds,
            host_seconds,
        )
    }

    /// Sweep the device share and return `(share, wall_seconds)` rows.
    pub fn split_curve(
        &self,
        tiles: &[Tile],
        workload: &WorkloadModel,
        steps: usize,
    ) -> Vec<(f64, f64)> {
        (0..=steps)
            .map(|k| {
                let share = k as f64 / steps as f64;
                let (wall, _, _) = self.simulate_split(tiles, workload, share);
                (share, wall)
            })
            .collect()
    }

    /// The best split of the sweep.
    pub fn optimal_split(
        &self,
        tiles: &[Tile],
        workload: &WorkloadModel,
        steps: usize,
    ) -> (f64, f64) {
        self.split_curve(tiles, workload, steps)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("non-empty sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_parallel::TileSpace;

    fn setup() -> (OffloadModel, TileSpace, WorkloadModel) {
        let model = OffloadModel::paper_system();
        let workload = WorkloadModel {
            genes: 2_048,
            ..WorkloadModel::arabidopsis_headline()
        };
        let tiles = TileSpace::new(2_048, 16);
        (model, tiles, workload)
    }

    #[test]
    fn endpoints_match_single_machine_runs() {
        let (model, tiles, w) = setup();
        let (host_only, d0, h0) = model.simulate_split(tiles.tiles(), &w, 0.0);
        assert_eq!(d0, 0.0);
        assert!(h0 > 0.0);
        assert_eq!(host_only, h0);

        let (device_only, d1, h1) = model.simulate_split(tiles.tiles(), &w, 1.0);
        assert_eq!(h1, 0.0);
        assert!(d1 > 0.0);
        assert_eq!(device_only, d1);

        // The Phi side is the faster chip on this workload.
        assert!(device_only < host_only);
    }

    #[test]
    fn combined_beats_both_single_machines() {
        let (model, tiles, w) = setup();
        let (share, best) = model.optimal_split(tiles.tiles(), &w, 20);
        let (host_only, _, _) = model.simulate_split(tiles.tiles(), &w, 0.0);
        let (device_only, _, _) = model.simulate_split(tiles.tiles(), &w, 1.0);
        assert!(
            best < host_only && best < device_only,
            "{best} vs {host_only}/{device_only}"
        );
        // Optimal share tracks the device's throughput fraction (~2.3×
        // faster than the host ⇒ ~0.65–0.8 of the work).
        assert!((0.55..0.9).contains(&share), "optimal share {share}");
    }

    #[test]
    fn transfer_costs_are_charged() {
        let (mut model, tiles, w) = setup();
        let (fast, _, _) = model.simulate_split(tiles.tiles(), &w, 1.0);
        model.transfer_gbs = 0.01; // strangle the bus
        let (slow, _, _) = model.simulate_split(tiles.tiles(), &w, 1.0);
        assert!(slow > fast + 1.0, "transfer must matter: {fast} → {slow}");
    }

    #[test]
    fn curve_is_v_shaped() {
        let (model, tiles, w) = setup();
        let curve = model.split_curve(tiles.tiles(), &w, 10);
        assert_eq!(curve.len(), 11);
        let best_idx = curve
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .unwrap()
            .0;
        assert!(best_idx > 0 && best_idx < 10, "optimum must be interior");
        // Decreasing to the optimum, increasing after.
        for w2 in curve[..=best_idx].windows(2) {
            assert!(w2[1].1 <= w2[0].1 * 1.05);
        }
        for w2 in curve[best_idx..].windows(2) {
            assert!(w2[1].1 >= w2[0].1 * 0.95);
        }
    }

    #[test]
    #[should_panic(expected = "share must lie")]
    fn bad_share_rejected() {
        let (model, tiles, w) = setup();
        let _ = model.simulate_split(tiles.tiles(), &w, 1.5);
    }
}
