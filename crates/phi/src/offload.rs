//! Heterogeneous host + coprocessor execution model (extension R12).
//!
//! The paper presents a Xeon solution *and* a Xeon Phi solution; the
//! natural deployment (and the stated direction of the offload ecosystem
//! the Phi shipped with) is to use both at once: split the tile set
//! between the host CPU and the coprocessor, shipping the per-gene weight
//! matrices to the card once over PCIe. This module models that split:
//! each side runs its share of tiles under its own machine model, the
//! device additionally pays the one-off transfer and launch costs, and
//! the wall time is the maximum of the two sides.

use crate::machine::MachineModel;
use crate::sim::simulate_tiles;
use crate::workload::WorkloadModel;
use gnet_fault::{names, FaultInjector};
use gnet_parallel::{SchedulerPolicy, Tile};
use gnet_trace::{Recorder, Value};
use serde::{Deserialize, Serialize};

/// Outcome of a fault-aware offload simulation (see
/// [`OffloadModel::simulate_split_faulty`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultySplit {
    /// End-to-end wall time, including any failover work.
    pub wall_seconds: f64,
    /// Time the device side ran (until completion or loss).
    pub device_seconds: f64,
    /// Time the host spent on its originally assigned share.
    pub host_seconds: f64,
    /// Extra host time spent re-running the device's unfinished tiles.
    pub failover_seconds: f64,
    /// Device tiles completed before the loss (`None` = no loss).
    pub device_lost_after: Option<usize>,
    /// Tiles re-run on the host after the loss.
    pub failover_tiles: usize,
}

impl FaultySplit {
    /// Wall-time penalty relative to a fault-free run of the same split.
    #[must_use]
    pub fn penalty_seconds(&self, fault_free_wall: f64) -> f64 {
        (self.wall_seconds - fault_free_wall).max(0.0)
    }
}

/// A host + coprocessor pairing with its interconnect.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OffloadModel {
    /// The host processor.
    pub host: MachineModel,
    /// The coprocessor.
    pub device: MachineModel,
    /// Sustained host→device transfer bandwidth (GB/s). PCIe 2.0 x16 as
    /// shipped with KNC systems sustains ≈ 6 GB/s.
    pub transfer_gbs: f64,
    /// Fixed offload launch/teardown overhead in seconds.
    pub launch_overhead_s: f64,
}

impl OffloadModel {
    /// The paper's machine pair: dual E5-2670 host + Xeon Phi 5110P.
    pub fn paper_system() -> Self {
        Self {
            host: MachineModel::xeon_e5_2670_2s(),
            device: MachineModel::xeon_phi_5110p(),
            transfer_gbs: 6.0,
            launch_overhead_s: 0.5,
        }
    }

    /// Bytes of input state the device needs: every gene's sparse weight
    /// matrix (the dense expansion is rebuilt on-card per tile, exactly as
    /// on the host).
    pub fn transfer_bytes(&self, workload: &WorkloadModel) -> f64 {
        workload.genes as f64 * workload.samples as f64 * (workload.order as f64 * 4.0 + 2.0)
    }

    /// Simulate the run with a fraction `device_share ∈ [0, 1]` of the
    /// pair work on the coprocessor. Tiles are assigned greedily by pair
    /// count until the device share is reached, mirroring how the offload
    /// runtime would carve the tile list.
    ///
    /// Returns `(wall_seconds, device_seconds, host_seconds)`.
    ///
    /// # Panics
    /// Panics if `device_share` is outside `[0, 1]`.
    pub fn simulate_split(
        &self,
        tiles: &[Tile],
        workload: &WorkloadModel,
        device_share: f64,
    ) -> (f64, f64, f64) {
        let (device_tiles, host_tiles) = Self::partition(tiles, device_share);

        let device_seconds = if device_tiles.is_empty() {
            0.0
        } else {
            let compute = simulate_tiles(
                &device_tiles,
                &self.device,
                workload,
                self.device.max_threads(),
                SchedulerPolicy::DynamicCounter,
            )
            .wall_seconds;
            let transfer = self.transfer_bytes(workload) / (self.transfer_gbs * 1e9);
            compute + transfer + self.launch_overhead_s
        };
        let host_seconds = if host_tiles.is_empty() {
            0.0
        } else {
            simulate_tiles(
                &host_tiles,
                &self.host,
                workload,
                self.host.max_threads(),
                SchedulerPolicy::DynamicCounter,
            )
            .wall_seconds
        };
        (
            device_seconds.max(host_seconds),
            device_seconds,
            host_seconds,
        )
    }

    /// Greedy pair-count split of the tile list into (device, host)
    /// shares — how the offload runtime carves the work.
    ///
    /// # Panics
    /// Panics if `device_share` is outside `[0, 1]`.
    fn partition(tiles: &[Tile], device_share: f64) -> (Vec<Tile>, Vec<Tile>) {
        assert!(
            (0.0..=1.0).contains(&device_share),
            "share must lie in [0, 1]"
        );
        let total_pairs: u64 = tiles.iter().map(Tile::pair_count).sum();
        let target = (total_pairs as f64 * device_share) as u64;
        let mut device_tiles = Vec::new();
        let mut host_tiles = Vec::new();
        let mut shipped = 0u64;
        for t in tiles {
            if shipped < target {
                device_tiles.push(*t);
                shipped += t.pair_count();
            } else {
                host_tiles.push(*t);
            }
        }
        (device_tiles, host_tiles)
    }

    /// [`simulate_split`](Self::simulate_split) under an armed
    /// [`FaultInjector`]: if the plan schedules a device loss, the
    /// coprocessor dies after completing that many of its tiles and the
    /// host absorbs the unfinished remainder — the run degrades to
    /// host(-mostly) execution instead of failing.
    ///
    /// The model is pessimistic about overlap: the host first finishes
    /// its own share (concurrently with the device), then re-runs the
    /// orphaned tiles, so
    /// `wall = max(device_until_loss, host_own) + failover`. The device
    /// still pays transfer and launch costs — shipping the weights is
    /// what made the partial progress possible at all.
    ///
    /// With no armed injector (or no device-loss fault) this returns the
    /// fault-free split verbatim.
    ///
    /// # Panics
    /// Panics if `device_share` is outside `[0, 1]`.
    pub fn simulate_split_faulty(
        &self,
        tiles: &[Tile],
        workload: &WorkloadModel,
        device_share: f64,
        injector: &FaultInjector,
        rec: &Recorder,
    ) -> FaultySplit {
        let (device_tiles, host_tiles) = Self::partition(tiles, device_share);
        let loss_at = injector
            .device_loss_tile()
            .filter(|_| !device_tiles.is_empty());

        let device_run = |share: &[Tile]| -> f64 {
            if share.is_empty() {
                return 0.0;
            }
            let compute = simulate_tiles(
                share,
                &self.device,
                workload,
                self.device.max_threads(),
                SchedulerPolicy::DynamicCounter,
            )
            .wall_seconds;
            let transfer = self.transfer_bytes(workload) / (self.transfer_gbs * 1e9);
            compute + transfer + self.launch_overhead_s
        };
        let host_run = |share: &[Tile]| -> f64 {
            if share.is_empty() {
                return 0.0;
            }
            simulate_tiles(
                share,
                &self.host,
                workload,
                self.host.max_threads(),
                SchedulerPolicy::DynamicCounter,
            )
            .wall_seconds
        };

        let host_seconds = host_run(&host_tiles);
        match loss_at {
            None => {
                let device_seconds = device_run(&device_tiles);
                FaultySplit {
                    wall_seconds: device_seconds.max(host_seconds),
                    device_seconds,
                    host_seconds,
                    failover_seconds: 0.0,
                    device_lost_after: None,
                    failover_tiles: 0,
                }
            }
            Some(done) => {
                let done = done.min(device_tiles.len());
                let orphaned = &device_tiles[done..];
                injector.note_device_loss(done);
                let device_seconds = device_run(&device_tiles[..done]);
                let failover_seconds = host_run(orphaned);
                rec.counter_add(names::CNT_FAILOVER_TILES, orphaned.len() as u64);
                rec.event(
                    names::EVT_HOST_FALLBACK,
                    &[
                        ("device_tiles_done", Value::from(done)),
                        ("failover_tiles", Value::from(orphaned.len())),
                        ("failover_seconds", Value::from(failover_seconds)),
                    ],
                );
                FaultySplit {
                    wall_seconds: device_seconds.max(host_seconds) + failover_seconds,
                    device_seconds,
                    host_seconds,
                    failover_seconds,
                    device_lost_after: Some(done),
                    failover_tiles: orphaned.len(),
                }
            }
        }
    }

    /// Sweep the device share and return `(share, wall_seconds)` rows.
    pub fn split_curve(
        &self,
        tiles: &[Tile],
        workload: &WorkloadModel,
        steps: usize,
    ) -> Vec<(f64, f64)> {
        (0..=steps)
            .map(|k| {
                let share = k as f64 / steps as f64;
                let (wall, _, _) = self.simulate_split(tiles, workload, share);
                (share, wall)
            })
            .collect()
    }

    /// The best split of the sweep.
    pub fn optimal_split(
        &self,
        tiles: &[Tile],
        workload: &WorkloadModel,
        steps: usize,
    ) -> (f64, f64) {
        self.split_curve(tiles, workload, steps)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("non-empty sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_parallel::TileSpace;

    fn setup() -> (OffloadModel, TileSpace, WorkloadModel) {
        let model = OffloadModel::paper_system();
        let workload = WorkloadModel {
            genes: 2_048,
            ..WorkloadModel::arabidopsis_headline()
        };
        let tiles = TileSpace::new(2_048, 16);
        (model, tiles, workload)
    }

    #[test]
    fn endpoints_match_single_machine_runs() {
        let (model, tiles, w) = setup();
        let (host_only, d0, h0) = model.simulate_split(tiles.tiles(), &w, 0.0);
        assert_eq!(d0, 0.0);
        assert!(h0 > 0.0);
        assert_eq!(host_only, h0);

        let (device_only, d1, h1) = model.simulate_split(tiles.tiles(), &w, 1.0);
        assert_eq!(h1, 0.0);
        assert!(d1 > 0.0);
        assert_eq!(device_only, d1);

        // The Phi side is the faster chip on this workload.
        assert!(device_only < host_only);
    }

    #[test]
    fn combined_beats_both_single_machines() {
        let (model, tiles, w) = setup();
        let (share, best) = model.optimal_split(tiles.tiles(), &w, 20);
        let (host_only, _, _) = model.simulate_split(tiles.tiles(), &w, 0.0);
        let (device_only, _, _) = model.simulate_split(tiles.tiles(), &w, 1.0);
        assert!(
            best < host_only && best < device_only,
            "{best} vs {host_only}/{device_only}"
        );
        // Optimal share tracks the device's throughput fraction (~2.3×
        // faster than the host ⇒ ~0.65–0.8 of the work).
        assert!((0.55..0.9).contains(&share), "optimal share {share}");
    }

    #[test]
    fn transfer_costs_are_charged() {
        let (mut model, tiles, w) = setup();
        let (fast, _, _) = model.simulate_split(tiles.tiles(), &w, 1.0);
        model.transfer_gbs = 0.01; // strangle the bus
        let (slow, _, _) = model.simulate_split(tiles.tiles(), &w, 1.0);
        assert!(slow > fast + 1.0, "transfer must matter: {fast} → {slow}");
    }

    #[test]
    fn curve_is_v_shaped() {
        let (model, tiles, w) = setup();
        let curve = model.split_curve(tiles.tiles(), &w, 10);
        assert_eq!(curve.len(), 11);
        let best_idx = curve
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .unwrap()
            .0;
        assert!(best_idx > 0 && best_idx < 10, "optimum must be interior");
        // Decreasing to the optimum, increasing after.
        for w2 in curve[..=best_idx].windows(2) {
            assert!(w2[1].1 <= w2[0].1 * 1.05);
        }
        for w2 in curve[best_idx..].windows(2) {
            assert!(w2[1].1 >= w2[0].1 * 0.95);
        }
    }

    #[test]
    #[should_panic(expected = "share must lie")]
    fn bad_share_rejected() {
        let (model, tiles, w) = setup();
        let _ = model.simulate_split(tiles.tiles(), &w, 1.5);
    }

    #[test]
    fn unarmed_faulty_split_matches_fault_free() {
        let (model, tiles, w) = setup();
        let (wall, d, h) = model.simulate_split(tiles.tiles(), &w, 0.7);
        let faulty = model.simulate_split_faulty(
            tiles.tiles(),
            &w,
            0.7,
            &gnet_fault::FaultInjector::none(),
            &gnet_trace::Recorder::disabled(),
        );
        assert_eq!(faulty.wall_seconds, wall);
        assert_eq!(faulty.device_seconds, d);
        assert_eq!(faulty.host_seconds, h);
        assert_eq!(faulty.device_lost_after, None);
        assert_eq!(faulty.failover_tiles, 0);
    }

    #[test]
    fn device_loss_degrades_to_host_and_reports_the_penalty() {
        let (model, tiles, w) = setup();
        let (fault_free, _, _) = model.simulate_split(tiles.tiles(), &w, 0.7);
        let plan = gnet_fault::FaultPlan::parse("seed=3;device(tile=5)").expect("plan parses");
        let rec = gnet_trace::Recorder::enabled();
        let injector = gnet_fault::FaultInjector::from_plan_traced(&plan, &rec);
        let faulty = model.simulate_split_faulty(tiles.tiles(), &w, 0.7, &injector, &rec);
        assert_eq!(faulty.device_lost_after, Some(5));
        assert!(faulty.failover_tiles > 0, "orphaned tiles must fail over");
        assert!(faulty.failover_seconds > 0.0);
        // The run completes, slower than fault-free but never by more
        // than the cost of redoing the whole device share on the host.
        let (host_only, _, _) = model.simulate_split(tiles.tiles(), &w, 0.0);
        assert!(faulty.penalty_seconds(fault_free) > 0.0);
        assert!(
            faulty.wall_seconds < fault_free + host_only,
            "degradation must stay bounded: {} vs {}",
            faulty.wall_seconds,
            fault_free + host_only
        );
        assert_eq!(
            rec.counter(names::CNT_FAILOVER_TILES),
            Some(faulty.failover_tiles as u64)
        );
        assert_eq!(rec.event_count(names::EVT_HOST_FALLBACK), 1);
        assert_eq!(rec.event_count(names::EVT_DEVICE_LOSS), 1);
        assert_eq!(injector.faults_fired(), 1);
    }

    #[test]
    fn loss_past_the_device_share_is_a_clean_finish() {
        let (model, tiles, w) = setup();
        // The plan kills the device after more tiles than it was given:
        // the device finishes its share first, so nothing fails over —
        // but the loss is still noted (clamped to the share size).
        let plan = gnet_fault::FaultPlan::parse("seed=3;device(tile=999999)").expect("plan parses");
        let injector = gnet_fault::FaultInjector::from_plan(&plan);
        let rec = gnet_trace::Recorder::enabled();
        let faulty = model.simulate_split_faulty(tiles.tiles(), &w, 0.5, &injector, &rec);
        assert_eq!(faulty.failover_tiles, 0);
        assert_eq!(faulty.failover_seconds, 0.0);
        let (wall, _, _) = model.simulate_split(tiles.tiles(), &w, 0.5);
        assert_eq!(faulty.wall_seconds, wall);
    }
}
