//! Platform parameter sets and thread-layout arithmetic.

use gnet_simd::VectorModel;
use serde::{Deserialize, Serialize};

/// A modeled platform. All quantities are published datasheet numbers or
/// first-order microarchitectural constants; the per-kernel constants
/// (`scalar_mac_cycles`, `vector_op_overhead`) are the two fitted values
/// and are documented where they are set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable platform name.
    pub name: String,
    /// Physical cores.
    pub cores: usize,
    /// Hardware thread contexts per core.
    pub threads_per_core: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Vector unit geometry.
    pub vector: VectorModel,
    /// Aggregate core-throughput multiplier when 1, 2, … threads are
    /// resident, relative to the core's nominal peak. The KNC in-order
    /// pipeline cannot issue from one thread on consecutive cycles, which
    /// is why its single-thread entry is 0.5 — the paper's
    /// threads-per-core experiment (R3) is this vector.
    pub smt_efficiency: Vec<f64>,
    /// Average cycles per scalar multiply-accumulate in the scattered
    /// sparse kernel (covers address generation, the dependent load-add-
    /// store chain, and — on in-order cores — un-hidden latencies).
    pub scalar_mac_cycles: f64,
    /// Average machine-level operations issued per useful row-FMA in the
    /// dense vector kernel (load of the y row, FMA, store of the grid
    /// row).
    pub vector_op_overhead: f64,
    /// Sustained memory bandwidth, GB/s (roofline clamp).
    pub stream_bw_gbs: f64,
    /// Cost of one dynamic-scheduler dispatch (shared-counter round trip
    /// across the interconnect), in microseconds.
    pub sync_cost_us: f64,
    /// Per-core L2 capacity in bytes (drives the tile-size rule).
    pub l2_per_core_bytes: usize,
}

impl MachineModel {
    /// Intel Xeon Phi 5110P (Knights Corner): 60+1 cores at 1.053 GHz —
    /// modeled as the 61 usable-core configuration the paper exploits —
    /// 4 threads/core, 512-bit IMCI, 320 GB/s GDDR5 (≈160 sustained).
    ///
    /// Fitted constants: `scalar_mac_cycles = 8` reflects the in-order
    /// dual-pipe core driving a scatter-addressed dependent chain;
    /// `vector_op_overhead = 2.5` reflects one FMA plus row load/store per
    /// row update.
    pub fn xeon_phi_5110p() -> Self {
        Self {
            name: "Xeon Phi 5110P (KNC, 61c × 4t, 512-bit)".into(),
            cores: 61,
            threads_per_core: 4,
            clock_ghz: 1.1,
            vector: VectorModel::imci_512(),
            smt_efficiency: vec![0.5, 1.0, 1.12, 1.2],
            scalar_mac_cycles: 8.0,
            vector_op_overhead: 2.5,
            stream_bw_gbs: 160.0,
            sync_cost_us: 1.5,
            l2_per_core_bytes: 512 * 1024,
        }
    }

    /// Dual-socket Intel Xeon E5-2670 (Sandy Bridge): 2 × 8 cores at
    /// 2.6 GHz (2.9 sustained turbo under AVX load modeled), 2-way
    /// HyperThreading, 256-bit AVX without FMA.
    pub fn xeon_e5_2670_2s() -> Self {
        Self {
            name: "2 × Xeon E5-2670 (SNB, 16c × 2t, 256-bit)".into(),
            cores: 16,
            threads_per_core: 2,
            clock_ghz: 2.9,
            vector: VectorModel::avx_256(),
            smt_efficiency: vec![1.0, 1.25],
            scalar_mac_cycles: 3.0,
            vector_op_overhead: 2.2,
            stream_bw_gbs: 80.0,
            sync_cost_us: 0.3,
            l2_per_core_bytes: 256 * 1024,
        }
    }

    /// Intel Xeon Phi 7250 "Knights Landing" — the successor the paper's
    /// generation of KNC work fed into, included as the forward-looking
    /// projection (R14). Out-of-order cores remove the KNC one-thread
    /// issue restriction (single-thread efficiency 1.0), two AVX-512 VPUs
    /// per core double vector issue, and MCDRAM lifts the bandwidth roof.
    pub fn xeon_phi_7250_knl() -> Self {
        Self {
            name: "Xeon Phi 7250 (KNL, 68c × 4t, 2×512-bit)".into(),
            cores: 68,
            threads_per_core: 4,
            clock_ghz: 1.4,
            vector: VectorModel {
                f32_lanes: 16,
                efficiency: 0.75,
                has_fma: true,
            },
            smt_efficiency: vec![1.0, 1.3, 1.4, 1.45],
            scalar_mac_cycles: 3.5,
            // Two VPUs ⇒ roughly half the per-row-FMA cost of KNC.
            vector_op_overhead: 1.3,
            stream_bw_gbs: 400.0,
            sync_cost_us: 0.8,
            l2_per_core_bytes: 512 * 1024, // 1 MB shared per 2-core tile
        }
    }

    /// 1,024 cores of Blue Gene/L (PowerPC 440 at 0.7 GHz with the 2-wide
    /// "double hummer" FPU) — the platform of the original TINGe cluster
    /// result the paper compares against.
    pub fn bluegene_l_1024() -> Self {
        Self {
            name: "Blue Gene/L, 1024 cores (TINGe cluster baseline)".into(),
            cores: 1024,
            threads_per_core: 1,
            clock_ghz: 0.7,
            vector: VectorModel {
                f32_lanes: 2,
                efficiency: 0.8,
                has_fma: true,
            },
            smt_efficiency: vec![1.0],
            scalar_mac_cycles: 2.0,
            vector_op_overhead: 2.0,
            stream_bw_gbs: 5.5 * 1024.0 / 1000.0 * 1024.0, // aggregate; never binding
            sync_cost_us: 5.0,
            l2_per_core_bytes: 4 * 1024 * 1024,
        }
    }

    /// Maximum concurrent hardware threads.
    pub fn max_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Number of threads resident on each core when `threads` are placed
    /// with the paper's balanced affinity (spread across cores first).
    ///
    /// # Panics
    /// Panics if `threads` is zero or exceeds the machine's contexts.
    pub fn occupancy(&self, threads: usize) -> Vec<usize> {
        assert!(threads >= 1, "need at least one thread");
        assert!(
            threads <= self.max_threads(),
            "{threads} threads exceed {} contexts",
            self.max_threads()
        );
        let mut occ = vec![threads / self.cores; self.cores];
        for slot in occ.iter_mut().take(threads % self.cores) {
            *slot += 1;
        }
        occ
    }

    /// Throughput of one thread (fraction of nominal single-core peak)
    /// when `resident` threads share its core.
    pub fn thread_throughput(&self, resident: usize) -> f64 {
        assert!(
            resident >= 1 && resident <= self.threads_per_core,
            "bad residency {resident}"
        );
        self.smt_efficiency[resident - 1] / resident as f64
    }

    /// Aggregate machine throughput (in core-equivalents) at `threads`
    /// balanced across cores.
    pub fn aggregate_throughput(&self, threads: usize) -> f64 {
        self.occupancy(threads)
            .into_iter()
            .filter(|&occ| occ > 0)
            .map(|occ| self.smt_efficiency[occ - 1])
            .sum()
    }

    /// Peak single-precision GFLOP/s (informational).
    pub fn peak_gflops_f32(&self) -> f64 {
        let fma = if self.vector.has_fma { 2.0 } else { 1.0 };
        self.cores as f64 * self.clock_ghz * self.vector.f32_lanes as f64 * fma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_published_shapes() {
        let phi = MachineModel::xeon_phi_5110p();
        assert_eq!(phi.max_threads(), 244);
        assert_eq!(phi.vector.f32_lanes, 16);
        assert!(phi.peak_gflops_f32() > 2000.0, "KNC peak ≈ 2.1 TF f32");

        let xeon = MachineModel::xeon_e5_2670_2s();
        assert_eq!(xeon.max_threads(), 32);
        assert_eq!(xeon.vector.f32_lanes, 8);

        let bgl = MachineModel::bluegene_l_1024();
        assert_eq!(bgl.max_threads(), 1024);
    }

    #[test]
    fn knl_improves_on_knc_everywhere() {
        let knc = MachineModel::xeon_phi_5110p();
        let knl = MachineModel::xeon_phi_7250_knl();
        assert!(knl.peak_gflops_f32() > knc.peak_gflops_f32());
        assert!(
            knl.thread_throughput(1) > knc.thread_throughput(1),
            "KNL's OoO core removes the single-thread issue restriction"
        );
        assert!(
            knl.aggregate_throughput(knl.max_threads())
                > knc.aggregate_throughput(knc.max_threads())
        );
    }

    #[test]
    fn occupancy_balances_across_cores() {
        let phi = MachineModel::xeon_phi_5110p();
        let occ = phi.occupancy(61);
        assert!(occ.iter().all(|&o| o == 1));
        let occ2 = phi.occupancy(100);
        assert_eq!(occ2.iter().sum::<usize>(), 100);
        assert!(occ2.iter().all(|&o| o == 1 || o == 2));
        let occ4 = phi.occupancy(244);
        assert!(occ4.iter().all(|&o| o == 4));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn occupancy_rejects_oversubscription() {
        let _ = MachineModel::xeon_e5_2670_2s().occupancy(33);
    }

    #[test]
    fn knc_single_thread_per_core_runs_at_half_rate() {
        let phi = MachineModel::xeon_phi_5110p();
        assert_eq!(phi.thread_throughput(1), 0.5);
        assert_eq!(phi.thread_throughput(2), 0.5);
        // 4 threads: 1.2 aggregate → 0.3 each.
        assert!((phi.thread_throughput(4) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn aggregate_throughput_grows_then_saturates() {
        let phi = MachineModel::xeon_phi_5110p();
        let t61 = phi.aggregate_throughput(61);
        let t122 = phi.aggregate_throughput(122);
        let t183 = phi.aggregate_throughput(183);
        let t244 = phi.aggregate_throughput(244);
        assert!((t61 - 30.5).abs() < 1e-9);
        assert!((t122 - 61.0).abs() < 1e-9);
        assert!(t122 > t61 * 1.9, "2 threads/core ≈ doubles KNC throughput");
        assert!(
            t244 > t183 && t244 < t122 * 1.3,
            "3rd/4th thread help modestly"
        );
    }

    #[test]
    fn xeon_ht_gain_is_modest() {
        let xeon = MachineModel::xeon_e5_2670_2s();
        let t16 = xeon.aggregate_throughput(16);
        let t32 = xeon.aggregate_throughput(32);
        assert_eq!(t16, 16.0);
        assert!((t32 / t16 - 1.25).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let m = MachineModel::xeon_phi_5110p();
        let s = serde_json_roundtrip(&m);
        assert_eq!(s, m);
    }

    fn serde_json_roundtrip(m: &MachineModel) -> MachineModel {
        // Through the serde data model without a serde_json dependency:
        // Clone suffices to exercise derive presence; the full JSON
        // round-trip lives in the integration tests.
        m.clone()
    }
}
