//! Canned experiment scenarios over the machine models.
//!
//! Each function regenerates one of the evaluation's platform-dependent
//! series; the `repro` binary in `gnet-bench` formats them as the tables
//! recorded in EXPERIMENTS.md.

use crate::machine::MachineModel;
use crate::sim::{scaling_curve, simulate_tiles, SimReport};
use crate::workload::WorkloadModel;
use gnet_parallel::{SchedulerPolicy, TileSpace};
use serde::{Deserialize, Serialize};

/// Tile size the scenarios use for modeled runs (working set within the
/// KNC per-core L2 for headline-size genes).
pub const SCENARIO_TILE: usize = 64;

/// Tile size giving every one of `threads` workers at least ~4 tiles (the
/// granularity the dynamic scheduler needs to balance), without exceeding
/// the cache-friendly [`SCENARIO_TILE`]. Mirrors how the paper shrinks
/// tiles for scaled-down problem sizes.
pub fn tile_size_for(genes: usize, threads: usize) -> usize {
    // tiles ≈ blocks²/2 ≥ 32·threads  ⇒  blocks ≥ √(64·threads). ~32 tiles
    // per thread keeps end-of-run quantization (~3%) below the smallest
    // effect the experiments resolve (the ~7% 3→4-threads/core SMT gain).
    let blocks_needed = ((64.0 * threads as f64).sqrt().ceil() as usize).max(2);
    (genes / blocks_needed).clamp(2, SCENARIO_TILE)
}

/// Headline prediction for one platform.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeadlinePrediction {
    /// Platform name.
    pub platform: String,
    /// Threads used.
    pub threads: usize,
    /// Predicted wall minutes for the whole-genome run.
    pub minutes: f64,
    /// Pairs per second.
    pub pair_rate: f64,
}

/// R1/R9 — whole-genome Arabidopsis run (15,575 × 3,137, q = 30) on every
/// modeled platform at full thread count.
pub fn headline_predictions() -> Vec<HeadlinePrediction> {
    let workload = WorkloadModel::arabidopsis_headline();
    // Simulating 1.2e8 pairs tile-by-tile at T=64 means ~30k tiles — cheap.
    let tiles = TileSpace::new(workload.genes, SCENARIO_TILE);
    [
        MachineModel::xeon_phi_5110p(),
        MachineModel::xeon_e5_2670_2s(),
        MachineModel::bluegene_l_1024(),
    ]
    .into_iter()
    .map(|machine| {
        let threads = machine.max_threads();
        let rep = simulate_tiles(
            tiles.tiles(),
            &machine,
            &workload,
            threads,
            SchedulerPolicy::DynamicCounter,
        );
        HeadlinePrediction {
            platform: machine.name.clone(),
            threads,
            minutes: rep.wall_seconds / 60.0,
            pair_rate: rep.pair_rate,
        }
    })
    .collect()
}

/// R2 — strong-scaling speedup curves on Phi and Xeon. Returns
/// `(threads, speedup_vs_1_thread)` per platform, on a reduced gene count
/// (the curve shape is gene-count independent; the reduction keeps the
/// 1-thread baseline finite).
pub fn strong_scaling(genes: usize) -> Vec<(String, Vec<(usize, f64)>)> {
    let workload = WorkloadModel {
        genes,
        ..WorkloadModel::arabidopsis_headline()
    };
    let mut out = Vec::new();
    for machine in [
        MachineModel::xeon_phi_5110p(),
        MachineModel::xeon_e5_2670_2s(),
    ] {
        let mut counts: Vec<usize> = vec![1, 2, 4, 8, 16];
        counts.extend(
            [30, 61, 122, 183, 244, 32]
                .into_iter()
                .filter(|&t| t <= machine.max_threads()),
        );
        counts.sort_unstable();
        counts.dedup();
        let max_threads = *counts.last().expect("counts is non-empty");
        let tiles = TileSpace::new(genes, tile_size_for(genes, max_threads));
        let curve = scaling_curve(tiles.tiles(), &machine, &workload, &counts);
        let base = curve[0].1;
        let speedups = curve.into_iter().map(|(t, w)| (t, base / w)).collect();
        out.push((machine.name.clone(), speedups));
    }
    out
}

/// R3 — threads-per-core on the Phi: wall seconds using 61 cores with
/// 1–4 resident threads each.
pub fn threads_per_core(genes: usize) -> Vec<(usize, f64)> {
    let machine = MachineModel::xeon_phi_5110p();
    let workload = WorkloadModel {
        genes,
        ..WorkloadModel::arabidopsis_headline()
    };
    let tiles = TileSpace::new(genes, tile_size_for(genes, machine.max_threads()));
    (1..=machine.threads_per_core)
        .map(|tpc| {
            let threads = machine.cores * tpc;
            let rep = simulate_tiles(
                tiles.tiles(),
                &machine,
                &workload,
                threads,
                SchedulerPolicy::DynamicCounter,
            );
            (tpc, rep.wall_seconds)
        })
        .collect()
}

/// R4 (modeled rows) — vectorization speedup per platform.
pub fn vectorization_speedups() -> Vec<(String, f64)> {
    let workload = WorkloadModel::arabidopsis_headline();
    [
        MachineModel::xeon_phi_5110p(),
        MachineModel::xeon_e5_2670_2s(),
    ]
    .into_iter()
    .map(|m| {
        let s = workload.vectorization_speedup(&m);
        (m.name.clone(), s)
    })
    .collect()
}

/// R5 — wall minutes vs gene count at fixed samples (Phi, full threads).
pub fn gene_sweep(gene_counts: &[usize]) -> Vec<(usize, f64)> {
    let machine = MachineModel::xeon_phi_5110p();
    gene_counts
        .iter()
        .map(|&n| {
            let workload = WorkloadModel {
                genes: n,
                ..WorkloadModel::arabidopsis_headline()
            };
            let tiles = TileSpace::new(n, tile_size_for(n, machine.max_threads()));
            let rep = simulate_tiles(
                tiles.tiles(),
                &machine,
                &workload,
                machine.max_threads(),
                SchedulerPolicy::DynamicCounter,
            );
            (n, rep.wall_seconds / 60.0)
        })
        .collect()
}

/// R6 — wall minutes vs sample count at fixed genes (Phi, full threads).
pub fn sample_sweep(genes: usize, sample_counts: &[usize]) -> Vec<(usize, f64)> {
    let machine = MachineModel::xeon_phi_5110p();
    let tiles = TileSpace::new(genes, tile_size_for(genes, machine.max_threads()));
    sample_counts
        .iter()
        .map(|&m| {
            let workload = WorkloadModel {
                genes,
                samples: m,
                ..WorkloadModel::arabidopsis_headline()
            };
            let rep = simulate_tiles(
                tiles.tiles(),
                &machine,
                &workload,
                machine.max_threads(),
                SchedulerPolicy::DynamicCounter,
            );
            (m, rep.wall_seconds / 60.0)
        })
        .collect()
}

/// R7 (modeled rows) — scheduling policies on the Phi at full threads:
/// `(policy name, wall seconds, imbalance)`.
pub fn scheduler_comparison(genes: usize) -> Vec<(String, f64, f64)> {
    let machine = MachineModel::xeon_phi_5110p();
    let workload = WorkloadModel {
        genes,
        ..WorkloadModel::arabidopsis_headline()
    };
    // 200 threads: 17 cores carry 4 SMT threads, 44 carry 3, so thread
    // rates differ by ~24%. Static policies hand every thread the same
    // tile count regardless of its speed; the dynamic schemes adapt —
    // the regime the paper's shared-counter scheduler is built for.
    let threads = 200;
    let blocks = ((16.0 * threads as f64).sqrt().ceil() as usize).max(2);
    let tiles = TileSpace::new(genes, (genes / blocks).max(2));
    SchedulerPolicy::ALL
        .into_iter()
        .map(|policy| {
            let rep = simulate_tiles(tiles.tiles(), &machine, &workload, threads, policy);
            (policy.name().to_string(), rep.wall_seconds, rep.imbalance())
        })
        .collect()
}

/// R14 — forward projection: the headline run on the Knights Landing
/// successor, next to the KNC result and the paper's citation.
pub fn forward_projection() -> Vec<HeadlinePrediction> {
    let workload = WorkloadModel::arabidopsis_headline();
    let tiles = TileSpace::new(workload.genes, SCENARIO_TILE);
    [
        MachineModel::xeon_phi_5110p(),
        MachineModel::xeon_phi_7250_knl(),
    ]
    .into_iter()
    .map(|machine| {
        let threads = machine.max_threads();
        let rep = simulate_tiles(
            tiles.tiles(),
            &machine,
            &workload,
            threads,
            SchedulerPolicy::DynamicCounter,
        );
        HeadlinePrediction {
            platform: machine.name.clone(),
            threads,
            minutes: rep.wall_seconds / 60.0,
            pair_rate: rep.pair_rate,
        }
    })
    .collect()
}

/// Full simulation report for an arbitrary scenario (used by the repro
/// binary's `--verbose` mode).
pub fn simulate_scenario(
    machine: &MachineModel,
    workload: &WorkloadModel,
    tile_size: usize,
    threads: usize,
    policy: SchedulerPolicy,
) -> SimReport {
    let tiles = TileSpace::new(workload.genes, tile_size);
    simulate_tiles(tiles.tiles(), machine, workload, threads, policy)
}

/// The abstract's cited numbers, for EXPERIMENTS.md comparison rows.
pub mod paper_claims {
    /// Whole-genome runtime on one Xeon Phi, minutes (abstract, cited).
    pub const PHI_HEADLINE_MINUTES: f64 = 22.0;
    /// TINGe on 1,024 BG/L cores, minutes (paper's prior-art comparison,
    /// as reported in the TINGe TPDS paper).
    pub const BGL_1024_MINUTES: f64 = 9.0;
    /// Headline gene count.
    pub const GENES: usize = 15_575;
    /// Headline experiment count.
    pub const SAMPLES: usize = 3_137;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_lands_near_the_papers_22_minutes() {
        let preds = headline_predictions();
        let phi = &preds[0];
        assert!(phi.platform.contains("Phi"));
        assert!(
            (phi.minutes - paper_claims::PHI_HEADLINE_MINUTES).abs()
                < paper_claims::PHI_HEADLINE_MINUTES * 0.5,
            "modeled Phi headline {:.1} min should sit within ±50% of the cited 22 min",
            phi.minutes
        );
    }

    #[test]
    fn phi_beats_dual_xeon_on_the_headline() {
        let preds = headline_predictions();
        let phi = preds.iter().find(|p| p.platform.contains("Phi")).unwrap();
        let xeon = preds.iter().find(|p| p.platform.contains("E5")).unwrap();
        assert!(
            phi.minutes < xeon.minutes,
            "Phi {:.1} min must beat dual Xeon {:.1} min",
            phi.minutes,
            xeon.minutes
        );
        assert!(
            xeon.minutes / phi.minutes < 5.0,
            "…but by a single-digit factor ({:.1}× is implausible)",
            xeon.minutes / phi.minutes
        );
    }

    #[test]
    fn single_chip_is_within_a_few_x_of_the_1024_core_cluster() {
        let preds = headline_predictions();
        let phi = preds.iter().find(|p| p.platform.contains("Phi")).unwrap();
        let bgl = preds
            .iter()
            .find(|p| p.platform.contains("Blue Gene"))
            .unwrap();
        let ratio = phi.minutes / bgl.minutes;
        assert!(
            (1.0..6.0).contains(&ratio),
            "one Phi should be within a few × of 1,024 BG/L cores, got {ratio:.2}×"
        );
    }

    #[test]
    fn threads_per_core_improves_through_four() {
        let series = threads_per_core(1024);
        assert_eq!(series.len(), 4);
        assert!(series[1].1 < series[0].1 * 0.6, "2 t/c ≈ halves KNC time");
        assert!(series[3].1 < series[2].1 * 1.001, "4 t/c is the best point");
    }

    #[test]
    fn gene_sweep_is_quadratic() {
        let sweep = gene_sweep(&[1000, 2000, 4000]);
        let r1 = sweep[1].1 / sweep[0].1;
        let r2 = sweep[2].1 / sweep[1].1;
        assert!(
            (3.0..5.0).contains(&r1),
            "doubling genes ≈ 4× time, got {r1:.2}"
        );
        assert!(
            (3.0..5.0).contains(&r2),
            "doubling genes ≈ 4× time, got {r2:.2}"
        );
    }

    #[test]
    fn sample_sweep_is_linear() {
        let sweep = sample_sweep(2048, &[500, 1000, 2000]);
        let r1 = sweep[1].1 / sweep[0].1;
        let r2 = sweep[2].1 / sweep[1].1;
        assert!(
            (1.6..2.4).contains(&r1),
            "doubling samples ≈ 2× time, got {r1:.2}"
        );
        assert!(
            (1.6..2.4).contains(&r2),
            "doubling samples ≈ 2× time, got {r2:.2}"
        );
    }

    #[test]
    fn dynamic_is_best_or_tied_among_policies() {
        let rows = scheduler_comparison(1024);
        let dynamic = rows.iter().find(|r| r.0 == "dynamic").unwrap().1;
        for (name, wall, _) in &rows {
            assert!(
                dynamic <= wall * 1.001,
                "dynamic ({dynamic}) must not lose to {name} ({wall})"
            );
        }
    }

    #[test]
    fn knl_projection_beats_knc_by_single_digit_factor() {
        let preds = forward_projection();
        let knc = preds.iter().find(|p| p.platform.contains("KNC")).unwrap();
        let knl = preds.iter().find(|p| p.platform.contains("KNL")).unwrap();
        let speedup = knc.minutes / knl.minutes;
        assert!(
            (2.0..8.0).contains(&speedup),
            "KNL should be a healthy generational step, got {speedup:.1}×"
        );
    }

    #[test]
    fn scaling_shapes_differ_between_platforms() {
        let curves = strong_scaling(1024);
        let (phi_name, phi_curve) = &curves[0];
        let (xeon_name, xeon_curve) = &curves[1];
        assert!(phi_name.contains("Phi") && xeon_name.contains("E5"));
        let phi_max = phi_curve.iter().map(|&(_, s)| s).fold(0.0, f64::max);
        let xeon_max = xeon_curve.iter().map(|&(_, s)| s).fold(0.0, f64::max);
        assert!(phi_max > 100.0, "Phi peak speedup {phi_max}");
        assert!(
            xeon_max > 14.0 && xeon_max < 32.0,
            "Xeon peak speedup {xeon_max}"
        );
    }
}
