//! Machine models and tile-schedule simulation for platform experiments.
//!
//! The paper's evaluation runs on hardware this reproduction does not have
//! (a 61-core Intel Xeon Phi "Knights Corner" coprocessor, a dual-socket
//! Xeon E5, and — for the prior-art comparison — a 1,024-core Blue Gene/L).
//! Following the substitution rule recorded in DESIGN.md, this crate
//! replaces those machines with an explicit, inspectable performance
//! model:
//!
//! * [`machine`] — a platform is a small set of published parameters
//!   (cores, SMT threads and their efficiency curve, clock, vector lanes,
//!   per-MAC scalar cost, vector-op overhead, bandwidth, scheduling-sync
//!   cost) with presets for the three machines above;
//! * [`workload`] — the MI computation reduced to per-pair operation
//!   counts for each kernel (scalar sparse vs vector dense), which the
//!   machine turns into per-pair cycles;
//! * [`sim`] — list-scheduling simulation of a concrete tile set over the
//!   modeled threads under each scheduling policy, producing wall time,
//!   per-thread busy time, and load imbalance;
//! * [`calibrate`] — measures the *real* kernels from `gnet-mi` on the
//!   host so host-relative quantities (e.g. the R4 vectorization ratio,
//!   the R8 tile-size knee) come from actual execution rather than the
//!   model;
//! * [`scenarios`] — canned experiment harnesses: the headline
//!   whole-genome prediction (R1), thread scaling (R2), threads-per-core
//!   (R3), problem-size sweeps (R5/R6), scheduling policies (R7), and the
//!   platform comparison (R9).
//!
//! The model is deliberately first-order: the point is to reproduce the
//! paper's *shapes* (who wins, where scaling bends, what saturates) from
//! the same operation counts the real hardware executed, not to re-derive
//! cycle-accurate KNC behaviour.

// cast-ok (crate-wide): the performance model rounds f64 quantities (pair
// budgets, block counts, nanosecond heap keys) into integer domains on
// purpose; the values are bounded by the modeled machines' sizes.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod energy;
pub mod machine;
pub mod offload;
pub mod scenarios;
pub mod sim;
pub mod workload;

pub use machine::MachineModel;
pub use offload::{FaultySplit, OffloadModel};
pub use sim::{scaling_curve, simulate_tiles, simulate_tiles_traced, SimReport};
pub use workload::{KernelClass, WorkloadModel};
