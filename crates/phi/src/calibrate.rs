//! Host kernel calibration: measure the real `gnet-mi` kernels.
//!
//! The machine models predict *other* platforms; the host itself is
//! measured directly. These helpers time the actual scalar and vector
//! kernels over synthetic prepared genes and report nanoseconds per pair
//! (inclusive of the `q` permutation nulls). They back:
//!
//! * the host rows of the R4 vectorization experiment (measured, not
//!   modeled);
//! * the R1 headline projection for "this host" (measured pair rate ×
//!   the full pair count);
//! * sanity checks that the modeled Phi is faster than one host core by a
//!   plausible factor.

use crate::workload::KernelClass;
use gnet_bspline::BsplineBasis;
use gnet_expr::synth;
use gnet_mi::{mi_with_nulls, prepare_gene, MiKernel, MiScratch};
use gnet_permute::PermutationSet;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One measured kernel rate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelRate {
    /// Kernel measured.
    pub kernel: KernelClass,
    /// Samples per gene used.
    pub samples: usize,
    /// Permutations per pair used.
    pub q: usize,
    /// Nanoseconds per pair, inclusive of its nulls.
    pub ns_per_pair: f64,
}

impl KernelRate {
    /// Pairs per second at this rate.
    pub fn pairs_per_second(&self) -> f64 {
        1e9 / self.ns_per_pair
    }

    /// Wall seconds to process `pairs` pairs at this rate on one thread.
    pub fn seconds_for_pairs(&self, pairs: u64) -> f64 {
        pairs as f64 * self.ns_per_pair * 1e-9
    }
}

/// Measure one kernel on the host: `pairs` pair evaluations (each with
/// `q` nulls) over `genes` synthetic prepared genes of `samples` samples.
///
/// The gene set is iterated in a tile-like pattern so dense expansions are
/// reused exactly the way the pipeline reuses them.
pub fn measure_kernel(
    kernel: KernelClass,
    samples: usize,
    q: usize,
    genes: usize,
    pairs: usize,
) -> KernelRate {
    assert!(genes >= 2, "need at least two genes");
    let basis = BsplineBasis::tinge_default();
    let matrix = synth::independent_gaussian(genes, samples, 0xCA11B7A7E);
    let prepared: Vec<_> = (0..genes)
        .map(|g| prepare_gene(matrix.gene(g), &basis))
        .collect();
    let perms = PermutationSet::generate(samples, q, 7);
    let mut scratch = MiScratch::for_basis(&basis);

    let mi_kernel = match kernel {
        KernelClass::ScalarSparse => MiKernel::ScalarSparse,
        KernelClass::VectorDense => MiKernel::VectorDense,
    };

    // Dense expansions cached per column gene, mirroring the tile executor.
    let dense: Vec<_> = match kernel {
        KernelClass::VectorDense => prepared.iter().map(|p| Some(p.to_dense())).collect(),
        KernelClass::ScalarSparse => prepared.iter().map(|_| None).collect(),
    };

    // Warm-up to populate caches and fault pages.
    let mut sink = 0.0f64;
    for w in 0..pairs.min(8) {
        let (i, j) = (w % genes, (w + 1) % genes);
        let r = mi_with_nulls(
            mi_kernel,
            &prepared[i],
            &prepared[j],
            dense[j].as_ref(),
            perms.as_vecs(),
            &mut scratch,
        );
        sink += r.observed;
    }

    // Best-of-three passes: a container's vCPU can be throttled or stolen
    // mid-measurement; the minimum is the least-disturbed estimate.
    let mut best_ns_per_pair = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut done = 0usize;
        'outer: loop {
            for i in 0..genes {
                for j in i + 1..genes {
                    let r = mi_with_nulls(
                        mi_kernel,
                        &prepared[i],
                        &prepared[j],
                        dense[j].as_ref(),
                        perms.as_vecs(),
                        &mut scratch,
                    );
                    sink += r.observed;
                    done += 1;
                    if done >= pairs {
                        break 'outer;
                    }
                }
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / done as f64;
        best_ns_per_pair = best_ns_per_pair.min(ns);
    }
    std::hint::black_box(sink);

    KernelRate {
        kernel,
        samples,
        q,
        ns_per_pair: best_ns_per_pair,
    }
}

/// Measured host vectorization ratio (scalar ns over vector ns) at the
/// given problem shape — the host row of experiment R4.
pub fn host_vectorization_ratio(
    samples: usize,
    q: usize,
    pairs: usize,
) -> (KernelRate, KernelRate) {
    let scalar = measure_kernel(KernelClass::ScalarSparse, samples, q, 16, pairs);
    let vector = measure_kernel(KernelClass::VectorDense, samples, q, 16, pairs);
    (scalar, vector)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rates_are_positive_and_scale_with_samples() {
        let small = measure_kernel(KernelClass::VectorDense, 64, 2, 8, 40);
        let large = measure_kernel(KernelClass::VectorDense, 512, 2, 8, 40);
        assert!(small.ns_per_pair > 0.0);
        assert!(
            large.ns_per_pair > 2.0 * small.ns_per_pair,
            "8× samples must cost clearly more: {} vs {}",
            large.ns_per_pair,
            small.ns_per_pair
        );
    }

    #[test]
    fn rates_scale_with_permutation_count() {
        let q0 = measure_kernel(KernelClass::ScalarSparse, 128, 0, 8, 60);
        let q9 = measure_kernel(KernelClass::ScalarSparse, 128, 9, 8, 60);
        let ratio = q9.ns_per_pair / q0.ns_per_pair;
        assert!(
            ratio > 4.0,
            "q=9 does 10 joints instead of 1; expected a large ratio, got {ratio:.1}"
        );
    }

    #[test]
    fn helper_conversions() {
        let r = KernelRate {
            kernel: KernelClass::VectorDense,
            samples: 100,
            q: 0,
            ns_per_pair: 500.0,
        };
        assert!((r.pairs_per_second() - 2e6).abs() < 1.0);
        assert!((r.seconds_for_pairs(2_000_000) - 1.0).abs() < 1e-9);
    }
}
