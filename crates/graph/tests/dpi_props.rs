//! Property tests for the DPI pruning pass.
//!
//! Two algebraic laws pin the semantics documented in `dpi.rs`:
//!
//! 1. **Enumeration-order independence.** Marks are decided against the
//!    *original* weights, and a tied weakest edge is never removed (the
//!    removal test is strict), so relabeling the genes — which reorders
//!    every triangle walk and every `min_by` scan — must commute with
//!    pruning: `relabel(prune(net)) == prune(relabel(net))` down to the
//!    weight bits.
//! 2. **Tolerance monotonicity.** The removal condition
//!    `weak < second·(1−ε)` only gets harder as ε grows, and triangles
//!    are judged independently on the unpruned graph, so
//!    `kept(ε_lo) ⊆ kept(ε_hi)` whenever `ε_lo ≤ ε_hi`.
//!
//! Failing seeds persist in `proptest-regressions/dpi_props.txt` and are
//! replayed ahead of fresh cases on every run.

// cast-ok (file-wide): generated networks stay under 14 genes, so usize
// loop counters always fit the edge list's u32 vertex domain.
#![allow(clippy::cast_possible_truncation)]

use gnet_graph::dpi::dpi_prune;
use gnet_graph::{Edge, GeneNetwork};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Deterministic random network: `n` genes, each unordered pair kept with
/// probability `density`, weights drawn from a coarse grid so exact ties
/// (the interesting case for order independence) actually occur.
fn random_network(seed: u64, n: usize, density: f64) -> GeneNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            if rng.gen::<f64>() < density {
                // 16 distinct weight levels in (0, 1] — dense enough to be
                // realistic, coarse enough that triangles tie regularly.
                let w = (rng.gen_range(1..=16) as f32) / 16.0;
                edges.push(Edge::new(a, b, w));
            }
        }
    }
    GeneNetwork::from_edges(n, Vec::new(), edges)
}

/// A network's edges as a canonical comparable set, weights by bit
/// pattern so `-0.0`/`NaN` drift could not hide behind `==`.
fn edge_set(net: &GeneNetwork) -> BTreeSet<(u32, u32, u32)> {
    net.edges()
        .iter()
        .map(|e| (e.a, e.b, e.weight.to_bits()))
        .collect()
}

/// Relabel every gene through the permutation `perm` (old index → new).
fn relabel(net: &GeneNetwork, perm: &[u32]) -> GeneNetwork {
    let edges: Vec<Edge> = net
        .edges()
        .iter()
        .map(|e| Edge::new(perm[e.a as usize], perm[e.b as usize], e.weight))
        .collect();
    GeneNetwork::from_edges(net.genes(), Vec::new(), edges)
}

/// Derive a permutation of `0..n` from a seed (Fisher–Yates).
fn permutation(seed: u64, n: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48)
        .with_persistence("proptest-regressions/dpi_props.txt"))]

    /// Law 1: pruning commutes with gene relabeling, bitwise.
    #[test]
    fn prop_prune_is_enumeration_order_independent(
        seed in 0u64..10_000,
        n in 4usize..14,
        density in 0.2f64..0.9,
        eps_steps in 0u32..8,
    ) {
        let eps = eps_steps as f32 * 0.05;
        let net = random_network(seed, n, density);
        let perm = permutation(seed, n);

        let pruned_then_relabeled = relabel(&dpi_prune(&net, eps), &perm);
        let relabeled_then_pruned = dpi_prune(&relabel(&net, perm.as_slice()), eps);

        prop_assert_eq!(
            edge_set(&pruned_then_relabeled),
            edge_set(&relabeled_then_pruned),
            "prune/relabel do not commute: seed={} n={} density={} eps={}",
            seed, n, density, eps
        );
    }

    /// Law 2: a looser tolerance never removes an edge a tighter one kept.
    #[test]
    fn prop_prune_is_monotone_in_tolerance(
        seed in 0u64..10_000,
        n in 4usize..14,
        density in 0.2f64..0.9,
        lo_steps in 0u32..10,
        extra_steps in 0u32..10,
    ) {
        let eps_lo = lo_steps as f32 * 0.05;
        let eps_hi = (lo_steps + extra_steps) as f32 * 0.05;
        prop_assume!(eps_hi < 1.0);
        let net = random_network(seed, n, density);

        let kept_lo = edge_set(&dpi_prune(&net, eps_lo));
        let kept_hi = edge_set(&dpi_prune(&net, eps_hi));

        prop_assert!(
            kept_lo.is_subset(&kept_hi),
            "kept({}) ⊄ kept({}): {:?} escapes",
            eps_lo, eps_hi,
            kept_lo.difference(&kept_hi).collect::<Vec<_>>()
        );
    }
}
