//! Exhaustive corruption fuzz over the TSV edge-list reader, in the
//! style of gnet-core's `durable_fuzz.rs` sweep of the GNETCKP codec:
//! every truncation length, a bit flip at every position of every byte,
//! and oversized declared counts must surface as `Ok` (when the damage
//! happens to leave a well-formed file) or a typed [`NetIoError`] —
//! never a panic, and never an out-of-contract network.
//!
//! Unlike the binary checkpoint format there is no integrity digest
//! here: a text edge list is hand-editable by design, so many mutations
//! legitimately still parse. The contract under fuzz is therefore
//! "total, typed, and in-range", not "tamper-evident".

use gnet_graph::io::{read_edge_list, write_edge_list, NetIoError};
use gnet_graph::{Edge, GeneNetwork};

const GENES: usize = 6;

fn names() -> Vec<String> {
    (0..GENES).map(|g| format!("gene{g}")).collect()
}

/// A realistic serialized fixture: named genes, mixed weights, header.
fn fixture() -> Vec<u8> {
    let net = GeneNetwork::from_edges(
        GENES,
        names(),
        [
            Edge::new(0, 1, 0.9),
            Edge::new(0, 5, 0.125),
            Edge::new(1, 2, 0.5),
            Edge::new(2, 4, 0.0625),
            Edge::new(3, 4, 0.75),
        ],
    );
    let mut bytes = Vec::new();
    write_edge_list(&net, &mut bytes).expect("in-memory serialization cannot fail");
    bytes
}

/// Every load must be total: `Ok` with in-range edges, or a typed error.
/// A panic anywhere in the sweep fails the test by aborting it.
fn assert_total(bytes: &[u8], what: &str) {
    match read_edge_list(bytes, GENES, names()) {
        Ok(net) => {
            assert_eq!(net.genes(), GENES, "{what}");
            for e in net.edges() {
                assert!((e.b as usize) < GENES, "{what}: edge {e:?} out of range");
                assert!(e.a < e.b, "{what}: edge {e:?} not normalized");
            }
        }
        Err(NetIoError::Parse { line, .. }) => {
            assert!(line >= 1, "{what}: parse errors are 1-based");
        }
        Err(NetIoError::Io(_)) => {} // invalid UTF-8 and friends
    }
}

#[test]
fn every_truncation_length_parses_or_fails_typed() {
    let full = fixture();
    for cut in 0..=full.len() {
        assert_total(&full[..cut], &format!("truncated to {cut} bytes"));
    }
    // The untouched fixture round-trips — the sweep fuzzed, not the writer.
    let net = read_edge_list(&full[..], GENES, names()).expect("pristine fixture loads");
    assert_eq!(net.edge_count(), 5);
}

#[test]
fn every_single_bit_flip_parses_or_fails_typed() {
    let full = fixture();
    for byte in 0..full.len() {
        for bit in 0..8 {
            let mut mutated = full.clone();
            mutated[byte] ^= 1 << bit;
            assert_total(&mutated, &format!("byte {byte} bit {bit} flipped"));
        }
    }
}

#[test]
fn oversized_declared_counts_are_rejected_before_any_allocation() {
    // Indices that parse as u32 but exceed the gene count must be a
    // typed range error, not a downstream constructor panic (and never
    // an allocation sized by the declared index).
    for huge in ["6", "4294967295", "999999999"] {
        let text = format!("0\t{huge}\t0.5\n");
        match read_edge_list(text.as_bytes(), GENES, Vec::new()) {
            Err(NetIoError::Parse { line: 1, message }) => {
                assert!(message.contains("out of range"), "{huge}: {message}");
            }
            other => panic!("index {huge} must be a typed range error, got {other:?}"),
        }
    }
    // Wider than u32: the numeric fallback itself must fail typed.
    let text = "0\t18446744073709551616\t0.5\n";
    assert!(matches!(
        read_edge_list(text.as_bytes(), GENES, Vec::new()),
        Err(NetIoError::Parse { line: 1, .. })
    ));
    // A forged header declaring absurd counts is a comment, not a
    // directive: nothing is pre-allocated from it and the edges rule.
    let text = "# genes=18446744073709551615 edges=4294967295\n0\t1\t0.5\n";
    let net = read_edge_list(text.as_bytes(), GENES, Vec::new()).expect("header is advisory");
    assert_eq!(net.genes(), GENES);
    assert_eq!(net.edge_count(), 1);
}

#[test]
fn self_loops_and_short_lines_stay_typed_under_fuzz() {
    for (text, needle) in [
        ("3\t3\t0.5\n", "self-loop"),
        ("gene2\tgene2\t0.5\n", "self-loop"),
        ("0\t1\n", "3 tab-separated"),
        ("0\n", "3 tab-separated"),
    ] {
        match read_edge_list(text.as_bytes(), GENES, names()) {
            Err(NetIoError::Parse { message, .. }) => {
                assert!(message.contains(needle), "{text:?}: {message}");
            }
            other => panic!("{text:?} must fail typed, got {other:?}"),
        }
    }
}
