//! Data Processing Inequality pruning (ARACNE-style extension).
//!
//! The relevance network keeps every statistically significant pair, which
//! includes *indirect* interactions: if gene X regulates Y and Y regulates
//! Z, the pair (X, Z) often carries significant MI too. ARACNE's classic
//! refinement removes, from every closed triangle, the edge with the
//! smallest MI — justified by the data processing inequality
//! `I(X,Z) ≤ min(I(X,Y), I(Y,Z))` when X→Y→Z forms a Markov chain.
//!
//! This is a post-processing extension beyond the IPDPS 2014 paper (which
//! stops at the relevance network), included because it is the canonical
//! next step in the method lineage and gives the accuracy experiments a
//! second operating point.

use crate::network::{Edge, GeneNetwork};
use std::collections::HashSet;

/// Apply DPI pruning with tolerance `epsilon ∈ [0, 1)`: in every triangle,
/// the weakest edge is removed unless its weight is within a `(1 − ε)`
/// factor of the second-weakest (the tolerance keeps near-ties).
///
/// Edge removal is decided against the *original* weights (standard
/// ARACNE semantics: all triangles are examined on the unpruned graph,
/// marks are applied at the end), so the result is independent of
/// triangle enumeration order.
///
/// # Panics
/// Panics if `epsilon` is outside `[0, 1)`.
pub fn dpi_prune(net: &GeneNetwork, epsilon: f32) -> GeneNetwork {
    assert!((0.0..1.0).contains(&epsilon), "epsilon must lie in [0, 1)");
    let mut doomed: HashSet<(u32, u32)> = HashSet::new();

    for g in 0..net.genes() {
        let g = g as u32;
        let neigh = net.neighbors(g as usize);
        for (ai, &a) in neigh.iter().enumerate() {
            // Only examine each triangle once: demand g < a < b.
            if a <= g {
                continue;
            }
            for &b in &neigh[ai + 1..] {
                if b <= a {
                    continue;
                }
                let Some(w_ab) = net.weight(a, b) else {
                    continue;
                };
                let w_ga = net.weight(g, a).expect("a is a neighbor of g");
                let w_gb = net.weight(g, b).expect("b is a neighbor of g");

                // Identify the weakest edge of the triangle.
                let edges = [((g, a), w_ga), ((g, b), w_gb), ((a, b), w_ab)];
                let (weak_idx, &(weak_key, weak_w)) = edges
                    .iter()
                    .enumerate()
                    .min_by(|(_, (_, x)), (_, (_, y))| {
                        x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("three edges");
                let second = edges
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != weak_idx)
                    .map(|(_, (_, w))| *w)
                    .fold(f32::INFINITY, f32::min);

                if weak_w < second * (1.0 - epsilon) {
                    doomed.insert(weak_key);
                }
            }
        }
    }

    let kept: Vec<Edge> = net
        .edges()
        .iter()
        .filter(|e| !doomed.contains(&e.key()))
        .copied()
        .collect();
    GeneNetwork::from_edges(net.genes(), net.gene_names().to_vec(), kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_triangle() -> GeneNetwork {
        // X—Y strong, Y—Z strong, X—Z weak (indirect).
        GeneNetwork::from_edges(
            3,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 0.9),
                Edge::new(0, 2, 0.3),
            ],
        )
    }

    #[test]
    fn weakest_triangle_edge_is_removed() {
        let pruned = dpi_prune(&chain_triangle(), 0.0);
        assert_eq!(pruned.edge_count(), 2);
        assert!(pruned.has_edge(0, 1));
        assert!(pruned.has_edge(1, 2));
        assert!(!pruned.has_edge(0, 2), "indirect edge must fall");
    }

    #[test]
    fn tolerance_keeps_near_ties() {
        let net = GeneNetwork::from_edges(
            3,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 0.98),
                Edge::new(0, 2, 0.95),
            ],
        );
        // ε = 0.1: weakest (0.95) is within 10% of 0.98 ⇒ keep everything.
        assert_eq!(dpi_prune(&net, 0.1).edge_count(), 3);
        // ε = 0: strict inequality removes it.
        assert_eq!(dpi_prune(&net, 0.0).edge_count(), 2);
    }

    #[test]
    fn triangle_free_graph_is_unchanged() {
        let path = GeneNetwork::from_edges(
            4,
            Vec::new(),
            [
                Edge::new(0, 1, 0.5),
                Edge::new(1, 2, 0.4),
                Edge::new(2, 3, 0.3),
            ],
        );
        let pruned = dpi_prune(&path, 0.0);
        assert_eq!(pruned.edges(), path.edges());
    }

    #[test]
    fn marks_use_original_graph_not_incremental_removal() {
        // Two triangles sharing the weak edge (1,2): removing it once must
        // not change the verdict for the second triangle's own weak edge.
        let net = GeneNetwork::from_edges(
            4,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 0.9),
                Edge::new(1, 2, 0.2), // weakest in both triangles
                Edge::new(1, 3, 0.8),
                Edge::new(2, 3, 0.7),
            ],
        );
        let pruned = dpi_prune(&net, 0.0);
        assert!(!pruned.has_edge(1, 2));
        // All other edges survive: in triangle (1,2,3) the weakest was
        // also (1,2).
        assert_eq!(pruned.edge_count(), 4);
    }

    #[test]
    fn equal_weight_triangle_loses_no_edges_at_zero_epsilon() {
        // weak < second * (1-0) is false when all equal ⇒ keep all.
        let net = GeneNetwork::from_edges(
            3,
            Vec::new(),
            [
                Edge::new(0, 1, 0.5),
                Edge::new(1, 2, 0.5),
                Edge::new(0, 2, 0.5),
            ],
        );
        assert_eq!(dpi_prune(&net, 0.0).edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        let _ = dpi_prune(&chain_triangle(), 1.0);
    }
}
