//! Compact undirected weighted network storage.

use serde::{Deserialize, Serialize};

/// One undirected edge with its MI weight (nats). Endpoints are stored
/// normalized (`a < b`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: u32,
    /// Larger endpoint.
    pub b: u32,
    /// Mutual information of the pair, in nats.
    pub weight: f32,
}

impl Edge {
    /// Build an edge, normalizing endpoint order.
    ///
    /// # Panics
    /// Panics on a self-loop.
    pub fn new(i: u32, j: u32, weight: f32) -> Self {
        assert_ne!(i, j, "gene networks have no self-loops");
        if i < j {
            Self { a: i, b: j, weight }
        } else {
            Self { a: j, b: i, weight }
        }
    }

    /// Canonical `(a, b)` key.
    pub fn key(&self) -> (u32, u32) {
        (self.a, self.b)
    }
}

/// An undirected MI-weighted gene network: sorted edge list + CSR
/// adjacency.
///
/// ```
/// use gnet_graph::{Edge, GeneNetwork};
/// let net = GeneNetwork::from_edges(4, Vec::new(), [
///     Edge::new(0, 1, 0.9),
///     Edge::new(2, 1, 0.4), // endpoint order is normalized
/// ]);
/// assert_eq!(net.degree(1), 2);
/// assert_eq!(net.weight(1, 2), Some(0.4));
/// assert!(!net.has_edge(0, 3));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneNetwork {
    genes: usize,
    gene_names: Vec<String>,
    /// Sorted by `(a, b)`, unique.
    edges: Vec<Edge>,
    /// CSR offsets (genes + 1 entries) into `csr_neighbors`.
    csr_offsets: Vec<u32>,
    /// Neighbor list, both directions.
    csr_neighbors: Vec<u32>,
}

impl GeneNetwork {
    /// Build from an arbitrary edge list. Edges are normalized, sorted and
    /// deduplicated (last write wins on duplicates).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or `names.len() != genes`
    /// (pass an empty vector to get default names).
    pub fn from_edges(
        genes: usize,
        names: Vec<String>,
        raw: impl IntoIterator<Item = Edge>,
    ) -> Self {
        let gene_names = if names.is_empty() {
            (0..genes).map(|g| format!("G{g:05}")).collect()
        } else {
            assert_eq!(names.len(), genes, "one name per gene");
            names
        };
        let mut edges: Vec<Edge> = raw
            .into_iter()
            .inspect(|e| {
                assert!((e.b as usize) < genes, "edge endpoint {} out of range", e.b);
                assert!(e.a < e.b, "edges must be normalized (Edge::new does this)");
            })
            .collect();
        edges.sort_by_key(Edge::key);
        edges.dedup_by(|later, earlier| {
            if later.key() == earlier.key() {
                earlier.weight = later.weight;
                true
            } else {
                false
            }
        });

        // CSR over both directions.
        let mut degree = vec![0u32; genes];
        for e in &edges {
            degree[e.a as usize] += 1;
            degree[e.b as usize] += 1;
        }
        let mut csr_offsets = Vec::with_capacity(genes + 1);
        let mut acc = 0u32;
        csr_offsets.push(0);
        for d in &degree {
            acc += d;
            csr_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = csr_offsets[..genes].to_vec();
        let mut csr_neighbors = vec![0u32; edges.len() * 2];
        for e in &edges {
            csr_neighbors[cursor[e.a as usize] as usize] = e.b;
            cursor[e.a as usize] += 1;
            csr_neighbors[cursor[e.b as usize] as usize] = e.a;
            cursor[e.b as usize] += 1;
        }

        Self {
            genes,
            gene_names,
            edges,
            csr_offsets,
            csr_neighbors,
        }
    }

    /// An empty network over `genes` genes.
    pub fn empty(genes: usize) -> Self {
        Self::from_edges(genes, Vec::new(), std::iter::empty())
    }

    /// Number of genes (nodes).
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// Gene names.
    pub fn gene_names(&self) -> &[String] {
        &self.gene_names
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The sorted edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of gene `g`.
    pub fn degree(&self, g: usize) -> usize {
        (self.csr_offsets[g + 1] - self.csr_offsets[g]) as usize
    }

    /// Neighbors of gene `g`, ascending.
    pub fn neighbors(&self, g: usize) -> &[u32] {
        &self.csr_neighbors[self.csr_offsets[g] as usize..self.csr_offsets[g + 1] as usize]
    }

    /// Does the network contain edge `(i, j)`?
    pub fn has_edge(&self, i: u32, j: u32) -> bool {
        self.weight(i, j).is_some()
    }

    /// Weight of edge `(i, j)` if present.
    pub fn weight(&self, i: u32, j: u32) -> Option<f32> {
        if i == j {
            return None;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.edges
            .binary_search_by_key(&(a, b), Edge::key)
            .ok()
            .map(|idx| self.edges[idx].weight)
    }

    /// The `k` heaviest edges, descending by weight, ties broken by
    /// ascending `(a, b)` key. The comparator is a total order
    /// ([`f32::total_cmp`]), so the ranking is a pure function of the
    /// edge set — equal-weight runs, signed zeros, and (defensively)
    /// NaNs all land in one reproducible order, byte for byte across
    /// platforms and re-runs.
    pub fn top_edges(&self, k: usize) -> Vec<Edge> {
        let mut sorted = self.edges.clone();
        sorted.sort_by(|x, y| {
            y.weight
                .total_cmp(&x.weight)
                .then_with(|| x.key().cmp(&y.key()))
        });
        sorted.truncate(k);
        sorted
    }

    /// Histogram of node degrees: `out[d]` = number of genes with degree
    /// `d` (trailing zeros trimmed).
    pub fn degree_distribution(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.genes.max(1)];
        let mut max_d = 0;
        for g in 0..self.genes {
            let d = self.degree(g);
            hist[d] += 1;
            max_d = max_d.max(d);
        }
        hist.truncate(max_d + 1);
        hist
    }

    /// Density: edges over possible pairs.
    pub fn density(&self) -> f64 {
        let pairs = self.genes as f64 * (self.genes as f64 - 1.0) / 2.0;
        if pairs > 0.0 {
            self.edges.len() as f64 / pairs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> GeneNetwork {
        GeneNetwork::from_edges(
            5,
            Vec::new(),
            [
                Edge::new(0, 1, 0.9),
                Edge::new(3, 0, 0.5), // reversed endpoints on purpose
                Edge::new(1, 2, 0.7),
            ],
        )
    }

    #[test]
    fn edge_normalizes_endpoints() {
        let e = Edge::new(7, 3, 1.0);
        assert_eq!((e.a, e.b), (3, 7));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loop_rejected() {
        let _ = Edge::new(2, 2, 1.0);
    }

    #[test]
    fn adjacency_is_consistent_with_edges() {
        let g = demo();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn weight_lookup_both_orders() {
        let g = demo();
        assert_eq!(g.weight(0, 3), Some(0.5));
        assert_eq!(g.weight(3, 0), Some(0.5));
        assert_eq!(g.weight(0, 0), None);
        assert_eq!(g.weight(0, 4), None);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn duplicate_edges_keep_last_weight() {
        let g =
            GeneNetwork::from_edges(3, Vec::new(), [Edge::new(0, 1, 0.1), Edge::new(1, 0, 0.9)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(0, 1), Some(0.9));
    }

    #[test]
    fn top_edges_sorted_by_weight() {
        let g = demo();
        let top = g.top_edges(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].weight, 0.9);
        assert_eq!(top[1].weight, 0.7);
        assert_eq!(g.top_edges(100).len(), 3);
    }

    #[test]
    fn degree_distribution_counts() {
        let g = demo();
        // Degrees: [2, 2, 1, 1, 0] → hist [1, 2, 2].
        assert_eq!(g.degree_distribution(), vec![1, 2, 2]);
    }

    /// Tie-heavy ranking regression: equal weights must order by edge key,
    /// and the rendered ranking must be byte-stable across runs and across
    /// edge insertion orders.
    #[test]
    fn top_edges_tie_break_is_deterministic_and_byte_stable() {
        let edges = [
            Edge::new(2, 3, 0.5),
            Edge::new(0, 1, 0.5),
            Edge::new(1, 3, 0.5),
            Edge::new(0, 2, 0.75),
            Edge::new(1, 2, 0.25),
        ];
        let g = GeneNetwork::from_edges(4, Vec::new(), edges);
        let mut reversed = edges;
        reversed.reverse();
        let g_rev = GeneNetwork::from_edges(4, Vec::new(), reversed);

        let render = |net: &GeneNetwork| -> String {
            net.top_edges(5)
                .iter()
                .map(|e| format!("{}-{}:{}\n", e.a, e.b, e.weight))
                .collect()
        };
        let expected = "0-2:0.75\n0-1:0.5\n1-3:0.5\n2-3:0.5\n1-2:0.25\n";
        assert_eq!(render(&g), expected);
        assert_eq!(render(&g_rev), expected, "insertion order must not leak");
        assert_eq!(render(&g).into_bytes(), render(&g).into_bytes());
    }

    /// `total_cmp` keeps the ranking total even for weights a plain
    /// `partial_cmp` cannot order (NaN) or orders ambiguously (±0.0).
    #[test]
    fn top_edges_orders_nan_and_signed_zero_totally() {
        let g = GeneNetwork::from_edges(
            4,
            Vec::new(),
            [
                Edge::new(0, 1, f32::NAN),
                Edge::new(0, 2, 0.0),
                Edge::new(1, 2, -0.0),
                Edge::new(2, 3, 0.4),
            ],
        );
        let keys: Vec<(u32, u32)> = g.top_edges(4).iter().map(Edge::key).collect();
        // total_cmp order, descending: NaN > finite, +0.0 > −0.0.
        assert_eq!(keys, vec![(0, 1), (2, 3), (0, 2), (1, 2)]);
        let again: Vec<(u32, u32)> = g.top_edges(4).iter().map(Edge::key).collect();
        assert_eq!(keys, again);
    }

    /// The degree histogram is a pure function of the network — pin an
    /// asymmetric shape so any future traversal reordering shows up.
    #[test]
    fn degree_distribution_is_byte_stable() {
        let g = GeneNetwork::from_edges(
            6,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 1.0),
                Edge::new(0, 3, 1.0),
                Edge::new(4, 5, 1.0),
            ],
        );
        // Degrees [3, 1, 1, 1, 1, 1] → hist [0, 5, 0, 1].
        let rendered = format!("{:?}", g.degree_distribution());
        assert_eq!(rendered, "[0, 5, 0, 1]");
        assert_eq!(
            rendered.into_bytes(),
            format!("{:?}", g.degree_distribution()).into_bytes()
        );
    }

    #[test]
    fn density_of_demo() {
        let g = demo();
        assert!((g.density() - 0.3).abs() < 1e-12); // 3 / C(5,2)=10
        assert_eq!(GeneNetwork::empty(1).density(), 0.0);
    }

    #[test]
    fn default_names_generated() {
        let g = demo();
        assert_eq!(g.gene_names()[3], "G00003");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = GeneNetwork::from_edges(3, Vec::new(), [Edge::new(0, 5, 1.0)]);
    }

    #[test]
    fn empty_network() {
        let g = GeneNetwork::empty(4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree_distribution(), vec![4]);
        for i in 0..4 {
            assert_eq!(g.degree(i), 0);
        }
    }
}
