//! The inferred gene network: storage, analysis, and interchange.
//!
//! The pipeline's output is an undirected, MI-weighted graph over the gene
//! set. This crate keeps it in a compact sorted edge list with an
//! on-demand CSR adjacency ([`network`]), provides the graph measures the
//! evaluation reports ([`metrics`]: degree distributions, connected
//! components, and precision/recall against a planted ground truth), the
//! ARACNE-style Data Processing Inequality pruning extension ([`dpi`]),
//! and edge-list I/O ([`io`]).

// cast-ok (crate-wide): vertex ids are u32 by design (the paper's scale is
// ~15k genes), so narrowing usize loop counters and degrees into the edge
// list's u32 domain is the intended representation, not an accident.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dpi;
pub mod io;
pub mod metrics;
pub mod network;

pub use analysis::{core_numbers, degree_assortativity, top_hubs};
pub use metrics::{connected_components, recovery_score, RecoveryScore};
pub use network::{Edge, GeneNetwork};
