//! Network interchange: TSV edge lists and a minimal JSON export.

use crate::network::{Edge, GeneNetwork};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from network parsing.
#[derive(Debug)]
pub enum NetIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed edge line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for NetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for NetIoError {}

impl From<std::io::Error> for NetIoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Write the network as a TSV edge list: `gene_a<TAB>gene_b<TAB>weight`
/// using gene *names*, one edge per line, preceded by a comment header.
pub fn write_edge_list<W: Write>(net: &GeneNetwork, mut writer: W) -> Result<(), NetIoError> {
    writeln!(writer, "# genes={} edges={}", net.genes(), net.edge_count())?;
    writeln!(writer, "gene_a\tgene_b\tmi_nats")?;
    let names = net.gene_names();
    for e in net.edges() {
        writeln!(
            writer,
            "{}\t{}\t{}",
            names[e.a as usize], names[e.b as usize], e.weight
        )?;
    }
    Ok(())
}

/// Read a TSV edge list written by [`write_edge_list`] (or by hand with
/// numeric gene indices in place of names). `genes` fixes the node count;
/// name tokens resolve by exact match against `names`, falling back to a
/// numeric index parse. Pass an empty `names` for index-only files.
///
/// Untrusted input never panics: out-of-range indices, self-loops,
/// short lines, and malformed numbers all surface as
/// [`NetIoError::Parse`] with the 1-based line number, and byte-level
/// corruption (invalid UTF-8, truncation mid-stream) surfaces as
/// [`NetIoError::Io`] — the contract `tests/edge_list_fuzz.rs` sweeps.
pub fn read_edge_list<R: Read>(
    reader: R,
    genes: usize,
    names: Vec<String>,
) -> Result<GeneNetwork, NetIoError> {
    let name_index: std::collections::HashMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let resolve = |token: &str, line: usize| -> Result<u32, NetIoError> {
        let idx = match name_index.get(token) {
            Some(&idx) => idx,
            None => token.parse::<u32>().map_err(|_| NetIoError::Parse {
                line,
                message: format!("unknown gene {token:?}"),
            })?,
        };
        // Bound before Edge/network construction: a declared index beyond
        // the gene count must be a typed error, not a downstream panic.
        if idx as usize >= genes {
            return Err(NetIoError::Parse {
                line,
                message: format!("gene index {idx} out of range (genes={genes})"),
            });
        }
        Ok(idx)
    };

    let mut edges = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("gene_a") {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (Some(a), Some(b), Some(w)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(NetIoError::Parse {
                line: lineno,
                message: "expected 3 tab-separated fields".into(),
            });
        };
        let a = resolve(a, lineno)?;
        let b = resolve(b, lineno)?;
        if a == b {
            return Err(NetIoError::Parse {
                line: lineno,
                message: format!("self-loop on gene {a} (gene networks have none)"),
            });
        }
        let w: f32 = w.parse().map_err(|_| NetIoError::Parse {
            line: lineno,
            message: format!("bad weight {w:?}"),
        })?;
        edges.push(Edge::new(a, b, w));
    }
    Ok(GeneNetwork::from_edges(genes, names, edges))
}

/// Minimal JSON export (`{"genes":N,"edges":[[a,b,w],…]}`). The full
/// structure also derives `serde::Serialize` for callers that want richer
/// formats through their own serializer.
pub fn to_json(net: &GeneNetwork) -> String {
    let mut s = String::new();
    s.push_str("{\"genes\":");
    s.push_str(&net.genes().to_string());
    s.push_str(",\"edges\":[");
    for (i, e) in net.edges().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{},{},{}]", e.a, e.b, e.weight));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> GeneNetwork {
        GeneNetwork::from_edges(
            4,
            vec![
                "alpha".into(),
                "beta".into(),
                "gamma".into(),
                "delta".into(),
            ],
            [Edge::new(0, 1, 0.75), Edge::new(2, 3, 0.5)],
        )
    }

    #[test]
    fn edge_list_roundtrip_with_names() {
        let net = demo();
        let mut buf = Vec::new();
        write_edge_list(&net, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("alpha\tbeta\t0.75"));
        let back = read_edge_list(&buf[..], 4, net.gene_names().to_vec()).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn numeric_indices_accepted() {
        let text = "0\t2\t0.9\n1\t3\t0.1\n";
        let net = read_edge_list(text.as_bytes(), 4, Vec::new()).unwrap();
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.weight(0, 2), Some(0.9));
    }

    #[test]
    fn comments_headers_and_blanks_are_skipped() {
        let text = "# a comment\ngene_a\tgene_b\tmi_nats\n\n0\t1\t0.4\n";
        let net = read_edge_list(text.as_bytes(), 2, Vec::new()).unwrap();
        assert_eq!(net.edge_count(), 1);
    }

    #[test]
    fn unknown_gene_reports_line() {
        let text = "0\t1\t0.4\nzzz\t1\t0.2\n";
        match read_edge_list(text.as_bytes(), 2, Vec::new()) {
            Err(NetIoError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("zzz"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn short_line_rejected() {
        let text = "0\t1\n";
        assert!(read_edge_list(text.as_bytes(), 2, Vec::new()).is_err());
    }

    #[test]
    fn bad_weight_rejected() {
        let text = "0\t1\tnot-a-number\n";
        assert!(read_edge_list(text.as_bytes(), 2, Vec::new()).is_err());
    }

    #[test]
    fn out_of_range_index_is_a_typed_error_not_a_panic() {
        for text in ["0\t5\t0.4\n", "5\t0\t0.4\n", "0\t4294967295\t0.4\n"] {
            match read_edge_list(text.as_bytes(), 2, Vec::new()) {
                Err(NetIoError::Parse { line, message }) => {
                    assert_eq!(line, 1);
                    assert!(message.contains("out of range"), "{message}");
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn self_loop_is_a_typed_error_not_a_panic() {
        let text = "0\t1\t0.4\n1\t1\t0.2\n";
        match read_edge_list(text.as_bytes(), 2, Vec::new()) {
            Err(NetIoError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("self-loop"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Same rejection when the loop is spelled with gene names.
        let named = "alpha\talpha\t0.4\n";
        assert!(read_edge_list(named.as_bytes(), 2, vec!["alpha".into(), "beta".into()]).is_err());
    }

    #[test]
    fn invalid_utf8_is_a_typed_io_error() {
        let bytes = b"0\t1\t0.4\n\xff\xfe\t1\t0.2\n";
        match read_edge_list(&bytes[..], 2, Vec::new()) {
            Err(NetIoError::Io(_)) => {}
            other => panic!("expected I/O error, got {other:?}"),
        }
    }

    #[test]
    fn json_export_shape() {
        let j = to_json(&demo());
        assert_eq!(j, "{\"genes\":4,\"edges\":[[0,1,0.75],[2,3,0.5]]}");
    }

    #[test]
    fn serde_json_roundtrip() {
        let net = demo();
        let s = serde_json::to_string(&net).unwrap();
        let back: GeneNetwork = serde_json::from_str(&s).unwrap();
        assert_eq!(back, net);
    }
}
