//! Graph measures and ground-truth recovery scoring.

use crate::network::GeneNetwork;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Connected components by union–find (path halving + union by size).
/// Returns one sorted vector of gene indices per component, largest first.
pub fn connected_components(net: &GeneNetwork) -> Vec<Vec<u32>> {
    let n = net.genes();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size = vec![1u32; n];

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for e in net.edges() {
        let ra = find(&mut parent, e.a);
        let rb = find(&mut parent, e.b);
        if ra != rb {
            let (big, small) = if size[ra as usize] >= size[rb as usize] {
                (ra, rb)
            } else {
                (rb, ra)
            };
            parent[small as usize] = big;
            size[big as usize] += size[small as usize];
        }
    }

    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for g in 0..n as u32 {
        let root = find(&mut parent, g);
        groups.entry(root).or_default().push(g);
    }
    let mut components: Vec<Vec<u32>> = groups.into_values().collect();
    for c in &mut components {
        c.sort_unstable();
    }
    components.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    components
}

/// Precision/recall of an inferred network against a planted edge set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryScore {
    /// Planted edges recovered.
    pub true_positives: usize,
    /// Inferred edges not in the truth.
    pub false_positives: usize,
    /// Planted edges missed.
    pub false_negatives: usize,
}

impl RecoveryScore {
    /// Precision `TP / (TP + FP)`; 1.0 when nothing was inferred.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `TP / (TP + FN)`; 1.0 when nothing was planted.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        // Precision and recall are non-negative, so <= 0.0 catches exactly
        // the both-zero case without a float equality.
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score `net` against the planted undirected edge set `truth` (endpoint
/// order in `truth` is irrelevant).
pub fn recovery_score(net: &GeneNetwork, truth: &[(u32, u32)]) -> RecoveryScore {
    let truth_set: HashSet<(u32, u32)> = truth
        .iter()
        .map(|&(i, j)| if i < j { (i, j) } else { (j, i) })
        .collect();
    let inferred: HashSet<(u32, u32)> = net.edges().iter().map(|e| e.key()).collect();
    let tp = inferred.intersection(&truth_set).count();
    RecoveryScore {
        true_positives: tp,
        false_positives: inferred.len() - tp,
        false_negatives: truth_set.len() - tp,
    }
}

/// Global clustering coefficient: `3 × triangles / open triads`. Returns 0
/// for triangle-free graphs.
pub fn clustering_coefficient(net: &GeneNetwork) -> f64 {
    let mut triangles = 0u64;
    let mut triads = 0u64;
    for g in 0..net.genes() {
        let d = net.degree(g) as u64;
        triads += d * d.saturating_sub(1) / 2;
        let neigh = net.neighbors(g);
        for (ai, &a) in neigh.iter().enumerate() {
            for &b in &neigh[ai + 1..] {
                if net.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner = 3 times.
    if triads == 0 {
        0.0
    } else {
        triangles as f64 / triads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Edge;

    fn path_and_isolated() -> GeneNetwork {
        // 0-1-2 path, 3 isolated, 4-5 pair.
        GeneNetwork::from_edges(
            6,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(4, 5, 1.0),
            ],
        )
    }

    #[test]
    fn components_of_path_and_isolated() {
        let comps = connected_components(&path_and_isolated());
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![4, 5]);
        assert_eq!(comps[2], vec![3]);
    }

    #[test]
    fn components_of_empty_network_are_singletons() {
        let comps = connected_components(&GeneNetwork::empty(4));
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn fully_connected_is_one_component() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in i + 1..5 {
                edges.push(Edge::new(i, j, 1.0));
            }
        }
        let comps = connected_components(&GeneNetwork::from_edges(5, Vec::new(), edges));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recovery_score_counts() {
        let net = path_and_isolated();
        // Truth: (0,1) recovered, (2,3) missed; (1,2) and (4,5) are FPs.
        let score = recovery_score(&net, &[(1, 0), (2, 3)]);
        assert_eq!(score.true_positives, 1);
        assert_eq!(score.false_positives, 2);
        assert_eq!(score.false_negatives, 1);
        assert!((score.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((score.recall() - 0.5).abs() < 1e-12);
        let f1 = score.f1();
        assert!((f1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn perfect_recovery() {
        let net = path_and_isolated();
        let truth: Vec<(u32, u32)> = net.edges().iter().map(|e| e.key()).collect();
        let score = recovery_score(&net, &truth);
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 1.0);
        assert_eq!(score.f1(), 1.0);
    }

    #[test]
    fn empty_cases_are_well_defined() {
        let score = recovery_score(&GeneNetwork::empty(3), &[]);
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 1.0);

        let score2 = recovery_score(&GeneNetwork::empty(3), &[(0, 1)]);
        assert_eq!(
            score2.precision(),
            1.0,
            "no inferences ⇒ no false positives"
        );
        assert_eq!(score2.recall(), 0.0);
        assert_eq!(score2.f1(), 0.0);
    }

    #[test]
    fn clustering_coefficient_of_triangle_is_one() {
        let tri = GeneNetwork::from_edges(
            3,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(0, 2, 1.0),
            ],
        );
        assert!((clustering_coefficient(&tri) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_coefficient_of_path_is_zero() {
        assert_eq!(clustering_coefficient(&path_and_isolated()), 0.0);
    }
}
