//! Topology analyses beyond the basic metrics: hubs, degree
//! assortativity, and k-core decomposition.
//!
//! These are the descriptive statistics a whole-genome network paper's
//! biology section reports (hub transcription factors, the disassortative
//! signature of regulatory networks, dense cores), provided so the
//! examples can characterize what the pipeline builds.

use crate::network::GeneNetwork;

/// The `k` highest-degree genes as `(gene, degree)`, descending, ties
/// broken by ascending gene index — a total order over integers, so the
/// ranking is byte-stable across runs regardless of how many genes share
/// a degree.
pub fn top_hubs(net: &GeneNetwork, k: usize) -> Vec<(u32, usize)> {
    let mut degrees: Vec<(u32, usize)> = (0..net.genes())
        .map(|g| (g as u32, net.degree(g)))
        .collect();
    degrees.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    degrees.truncate(k);
    degrees
}

/// Degree assortativity (Newman's r): the Pearson correlation of the
/// degrees at the two ends of every edge. Negative for disassortative
/// graphs (hubs prefer low-degree partners — the empirical signature of
/// transcriptional networks); `None` for graphs where it is undefined
/// (fewer than 2 edges, or all endpoint degrees equal).
pub fn degree_assortativity(net: &GeneNetwork) -> Option<f64> {
    if net.edge_count() < 2 {
        return None;
    }
    // Over edges (u, v): correlate deg(u) with deg(v), symmetrized.
    let mut sum_x = 0.0f64;
    let mut sum_x2 = 0.0f64;
    let mut sum_xy = 0.0f64;
    let m2 = (2 * net.edge_count()) as f64; // both orientations
    for e in net.edges() {
        let du = net.degree(e.a as usize) as f64;
        let dv = net.degree(e.b as usize) as f64;
        // Both orientations keep the statistic symmetric.
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
        sum_xy += 2.0 * du * dv;
    }
    let mean = sum_x / m2;
    let var = sum_x2 / m2 - mean * mean;
    if var <= 0.0 {
        return None;
    }
    let cov = sum_xy / m2 - mean * mean;
    Some(cov / var)
}

/// k-core decomposition: `core[g]` is the largest `k` such that gene `g`
/// belongs to a subgraph where every member has degree ≥ `k` (Batagelj–
/// Zaveršnik peeling, O(E)).
pub fn core_numbers(net: &GeneNetwork) -> Vec<u32> {
    let n = net.genes();
    let mut degree: Vec<usize> = (0..n).map(|g| net.degree(g)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0usize; n];
    for g in 0..n {
        pos[g] = bins[degree[g]];
        order[pos[g]] = g;
        bins[degree[g]] += 1;
    }
    // Restore bin starts.
    for d in (1..bins.len()).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v] = degree[v] as u32;
        for &u in net.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with the first vertex of
                // its current bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order[pu] = w;
                    order[pw] = u;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Edge;

    fn star_plus_triangle() -> GeneNetwork {
        // Gene 0 is a 4-hub; genes 5,6,7 form a triangle.
        GeneNetwork::from_edges(
            8,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 1.0),
                Edge::new(0, 3, 1.0),
                Edge::new(0, 4, 1.0),
                Edge::new(5, 6, 1.0),
                Edge::new(6, 7, 1.0),
                Edge::new(5, 7, 1.0),
            ],
        )
    }

    #[test]
    fn hubs_are_ranked_by_degree() {
        let hubs = top_hubs(&star_plus_triangle(), 3);
        assert_eq!(hubs[0], (0, 4));
        assert_eq!(hubs[1].1, 2, "triangle members have degree 2");
        assert_eq!(top_hubs(&star_plus_triangle(), 100).len(), 8);
    }

    /// Tie-heavy hub regression: every degree class is shared, so any
    /// drift from index-ascending tie-breaking changes the pinned bytes.
    #[test]
    fn top_hubs_tie_break_is_deterministic_and_byte_stable() {
        let net = star_plus_triangle();
        // Degrees: 0→4; 5,6,7→2; 1,2,3,4→1.
        let expected = vec![
            (0, 4),
            (5, 2),
            (6, 2),
            (7, 2),
            (1, 1),
            (2, 1),
            (3, 1),
            (4, 1),
        ];
        assert_eq!(top_hubs(&net, 8), expected);
        let rendered = format!("{:?}", top_hubs(&net, 8));
        assert_eq!(
            rendered,
            "[(0, 4), (5, 2), (6, 2), (7, 2), (1, 1), (2, 1), (3, 1), (4, 1)]"
        );
        assert_eq!(
            rendered.into_bytes(),
            format!("{:?}", top_hubs(&net, 8)).into_bytes()
        );
    }

    #[test]
    fn star_is_perfectly_disassortative() {
        // A pure star has r = −1 (every edge joins degree n−1 to degree 1).
        let star = GeneNetwork::from_edges(
            5,
            Vec::new(),
            (1..5).map(|i| Edge::new(0, i, 1.0)).collect::<Vec<_>>(),
        );
        let r = degree_assortativity(&star).expect("defined for a 4-edge star");
        assert!((r + 1.0).abs() < 1e-9, "star assortativity {r}");
    }

    #[test]
    fn regular_graph_assortativity_is_undefined() {
        // A triangle: all degrees equal ⇒ zero variance ⇒ undefined.
        let tri = GeneNetwork::from_edges(
            3,
            Vec::new(),
            [
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(0, 2, 1.0),
            ],
        );
        assert_eq!(degree_assortativity(&tri), None);
        assert_eq!(degree_assortativity(&GeneNetwork::empty(4)), None);
    }

    #[test]
    fn core_numbers_of_star_plus_triangle() {
        let core = core_numbers(&star_plus_triangle());
        // Star leaves and hub peel at k=1; the triangle is a 2-core.
        assert_eq!(core[0], 1);
        assert_eq!(core[1..5], [1, 1, 1, 1], "star leaves");
        assert_eq!(core[5..8], [2, 2, 2], "triangle members");
    }

    #[test]
    fn core_numbers_of_clique() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in i + 1..5 {
                edges.push(Edge::new(i, j, 1.0));
            }
        }
        let clique = GeneNetwork::from_edges(5, Vec::new(), edges);
        assert!(core_numbers(&clique).iter().all(|&c| c == 4));
    }

    #[test]
    fn isolated_genes_have_core_zero() {
        let net = GeneNetwork::from_edges(3, Vec::new(), [Edge::new(0, 1, 1.0)]);
        let core = core_numbers(&net);
        assert_eq!(core, vec![1, 1, 0]);
    }
}
