//! Workspace-wide correctness tooling: custom source lints and the
//! deterministic scheduler race checker, surfaced as `gnet analyze`.
//!
//! The crate has two independent halves:
//!
//! * [`lints`] — text/line-based source checks tuned to this repository's
//!   invariants (no `unwrap()` in library code, justified atomic orderings,
//!   documented `as` casts in kernel hot paths, no float `==` in
//!   statistical code). They are deliberately *not* built on `syn`: a
//!   line-oriented scanner with comment/string/`#[cfg(test)]` tracking is
//!   enough for these rules, keeps the crate std-only, and makes every
//!   diagnostic trivially explainable as `file:line`.
//! * [`interleave`] — a seeded interleaving harness that runs the tile
//!   executor under every [`gnet_parallel::SchedulerPolicy`] and several
//!   thread counts with randomized tile-completion delays, asserting the
//!   merged MI matrix is *bitwise* identical to a single-threaded
//!   reference. This is the executable form of the scheduler module's
//!   "bitwise identical across policies" contract.
//!
//! Vetted exceptions to the lints live in an allowlist file
//! (see [`allowlist`]); diagnostics can be rendered as text or JSON.

#![warn(missing_docs)]

pub mod allowlist;
pub mod diagnostics;
pub mod interleave;
pub mod lints;
pub mod source;

pub use allowlist::Allowlist;
pub use diagnostics::{Diagnostic, Report};
pub use interleave::{check_determinism, InterleaveConfig, InterleaveError, InterleaveOutcome};
pub use lints::{all_lints, run_lints, Lint};
pub use source::SourceFile;
