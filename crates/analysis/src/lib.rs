//! Workspace-wide correctness tooling: custom source lints, the
//! deterministic scheduler race checker, and the ring-protocol model
//! checker, surfaced as `gnet analyze`.
//!
//! The crate has three independent parts:
//!
//! * [`lints`] — text/line-based source checks tuned to this repository's
//!   invariants (no `unwrap()` in library code, justified atomic orderings,
//!   documented `as` casts in kernel hot paths, no float `==` in
//!   statistical code, and the unsafe-audit family: justified `unsafe`,
//!   allowlist-only `Send`/`Sync` impls, justified `SeqCst`). They are
//!   deliberately *not* built on `syn`: a line-oriented scanner with
//!   comment/string/`#[cfg(test)]` tracking is enough for these rules,
//!   keeps the crate std-only, and makes every diagnostic trivially
//!   explainable as `file:line`.
//! * [`interleave`] — a seeded interleaving harness that runs the tile
//!   executor under every [`gnet_parallel::SchedulerPolicy`] and several
//!   thread counts with randomized tile-completion delays, asserting the
//!   merged MI matrix is *bitwise* identical to a single-threaded
//!   reference. This is the executable form of the scheduler module's
//!   "bitwise identical across policies" contract.
//! * [`protocol`] — a bounded model checker that drives the *real*
//!   [`gnet_cluster::protocol::RankMachine`] through every schedule a
//!   bounded adversary can produce (delivery orders, delays, drops,
//!   duplicates, crashes), with deadlock/livelock/census/coverage
//!   oracles, shrunk one-line replay specs, and a three-mutation
//!   self-check proving the checker catches real protocol bugs.
//!
//! Vetted exceptions to the lints live in an allowlist file (see
//! [`allowlist`]; stale entries are themselves reported); one run's
//! results aggregate into the versioned, schema-pinned JSON document in
//! [`report`].

#![warn(missing_docs)]

pub mod allowlist;
pub mod diagnostics;
pub mod interleave;
pub mod lints;
pub mod protocol;
pub mod report;
pub mod source;

pub use allowlist::Allowlist;
pub use diagnostics::{Diagnostic, Report};
pub use interleave::{check_determinism, InterleaveConfig, InterleaveError, InterleaveOutcome};
pub use lints::{all_lints, run_lints, Lint};
pub use source::SourceFile;
