//! Line-oriented Rust source model for the custom lints.
//!
//! A tiny state machine walks each file once and produces, per line:
//!
//! * `code` — the line with comment text and string/char *contents*
//!   blanked to spaces (delimiters kept), so lints can pattern-match
//!   without tripping on prose or literals;
//! * `comment` — the comment text carried by the line (line, block and
//!   doc comments), so lints can look for justification markers such as
//!   `ordering:` and `cast-ok:`;
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item,
//!   tracked by brace counting from the attribute's opening brace.
//!
//! This is deliberately not a parser: the lints only need token-level
//! facts, and a scanner keeps diagnostics exact and dependencies at zero.

use std::io;
use std::path::{Path, PathBuf};

/// One scanned source line.
#[derive(Clone, Debug)]
pub struct Line {
    /// Original text (no trailing newline).
    pub raw: String,
    /// Text with comments and literal contents blanked to spaces.
    pub code: String,
    /// Comment text on this line (without the `//`/`/*` markers).
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A scanned source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or as-opened) path.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators, used in diagnostics.
    pub rel: String,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
}

impl SourceFile {
    /// Read and scan `path`, reporting diagnostics relative to `root`.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be read.
    pub fn load(root: &Path, path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Ok(Self::scan(path.to_path_buf(), rel, &text))
    }

    /// Scan already-loaded text (used directly by unit tests).
    #[must_use]
    pub fn scan(path: PathBuf, rel: String, text: &str) -> Self {
        let mut lines = Vec::new();
        let mut state = State::Code;
        // Brace depth of surrounding code and the depth at which each
        // active `#[cfg(test)]` region opened.
        let mut depth: i64 = 0;
        let mut test_regions: Vec<i64> = Vec::new();
        // A `#[cfg(test)]` attribute has been seen and its item's opening
        // brace has not yet arrived.
        let mut pending_test = false;

        for raw_line in text.lines() {
            let mut code = String::with_capacity(raw_line.len());
            let mut comment = String::new();
            let mut in_test = pending_test || !test_regions.is_empty();

            let bytes: Vec<char> = raw_line.chars().collect();
            let mut i = 0usize;
            while i < bytes.len() {
                let c = bytes[i];
                let next = bytes.get(i + 1).copied();
                match state {
                    State::Code => match c {
                        '/' if next == Some('/') => {
                            state = State::LineComment;
                            comment.push_str(&raw_line[char_byte_offset(&bytes, i + 2)..]);
                            code.push_str("  ");
                            i = bytes.len();
                            continue;
                        }
                        '/' if next == Some('*') => {
                            state = State::BlockComment(1);
                            code.push_str("  ");
                            i += 2;
                            continue;
                        }
                        '"' => {
                            state = State::Str;
                            code.push('"');
                        }
                        'r' if is_raw_string_start(&bytes, i) => {
                            let hashes = count_hashes(&bytes, i + 1);
                            state = State::RawStr(hashes);
                            code.push('r');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            code.push('"');
                            i += 2 + hashes as usize;
                            continue;
                        }
                        '\'' => {
                            // Distinguish char literals from lifetimes.
                            if let Some(skip) = char_literal_len(&bytes, i) {
                                code.push('\'');
                                for _ in 0..skip - 2 {
                                    code.push(' ');
                                }
                                code.push('\'');
                                i += skip;
                                continue;
                            }
                            code.push('\'');
                        }
                        '{' => {
                            depth += 1;
                            if pending_test {
                                test_regions.push(depth);
                                pending_test = false;
                            }
                            in_test = in_test || !test_regions.is_empty();
                            code.push('{');
                        }
                        '}' => {
                            depth -= 1;
                            if test_regions.last().is_some_and(|&open| depth < open) {
                                test_regions.pop();
                            }
                            code.push('}');
                        }
                        other => code.push(other),
                    },
                    State::LineComment => unreachable!("line comments consume the whole line"),
                    State::BlockComment(d) => {
                        if c == '*' && next == Some('/') {
                            let d = d - 1;
                            state = if d == 0 {
                                State::Code
                            } else {
                                State::BlockComment(d)
                            };
                            code.push_str("  ");
                            i += 2;
                            continue;
                        }
                        if c == '/' && next == Some('*') {
                            state = State::BlockComment(d + 1);
                            code.push_str("  ");
                            i += 2;
                            continue;
                        }
                        comment.push(c);
                        code.push(' ');
                    }
                    State::Str => match c {
                        '\\' => {
                            code.push_str("  ");
                            i += 2;
                            continue;
                        }
                        '"' => {
                            state = State::Code;
                            code.push('"');
                        }
                        _ => code.push(' '),
                    },
                    State::RawStr(hashes) => {
                        if c == '"' && closes_raw_string(&bytes, i, hashes) {
                            state = State::Code;
                            code.push('"');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            i += 1 + hashes as usize;
                            continue;
                        }
                        code.push(' ');
                    }
                }
                i += 1;
            }
            // Line comments and (non-terminated) plain strings end at the
            // newline; plain strings only continue when escaped, which the
            // blanking above already treats as content.
            if state == State::LineComment {
                state = State::Code;
            }

            if code.contains("#[cfg(test)]") || code.contains("#[test]") {
                pending_test = true;
                in_test = true;
            }

            lines.push(Line {
                raw: raw_line.to_string(),
                code,
                comment,
                in_test,
            });
        }
        Self { path, rel, lines }
    }
}

/// Byte offset of `chars[idx]` within the line the chars came from.
fn char_byte_offset(chars: &[char], idx: usize) -> usize {
    chars.iter().take(idx).map(|c| c.len_utf8()).sum()
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`, but not the middle of an identifier like `var"`.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], from: usize) -> u8 {
    let mut n = 0u8;
    let mut j = from;
    while chars.get(j) == Some(&'#') {
        n += 1;
        j += 1;
    }
    n
}

fn closes_raw_string(chars: &[char], quote: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| chars.get(quote + k) == Some(&'#'))
}

/// Length in chars of a char literal starting at `start` (the `'`), or
/// `None` if this quote is a lifetime.
fn char_literal_len(chars: &[char], start: usize) -> Option<usize> {
    match chars.get(start + 1)? {
        '\\' => {
            // Escape: scan forward to the closing quote.
            let mut j = start + 2;
            while j < chars.len() && j < start + 12 {
                if chars[j] == '\'' {
                    return Some(j - start + 1);
                }
                j += 1;
            }
            None
        }
        _ => {
            if chars.get(start + 2) == Some(&'\'') {
                Some(3)
            } else {
                None // lifetime such as `'data`
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan(PathBuf::from("x.rs"), "x.rs".into(), text)
    }

    #[test]
    fn comments_are_blanked_and_captured() {
        let f = scan("let x = 1; // trailing note\n/* block */ let y = 2;\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("trailing"));
        assert!(f.lines[0].comment.contains("trailing note"));
        assert!(f.lines[1].code.contains("let y = 2;"));
        assert!(f.lines[1].comment.contains("block"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = scan("let s = \"a.unwrap() == 0.0\"; s.len();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("s.len();"));
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let f = scan("let s = r#\"x \"inner\" y\"#; let t = \"a\\\"b\"; t.len();\n");
        assert!(!f.lines[0].code.contains("inner"));
        assert!(f.lines[0].code.contains("t.len();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[0].code.contains("'x'") || f.lines[0].code.contains("' '"));
    }

    #[test]
    fn cfg_test_region_tracked_by_braces() {
        let text = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn more_lib() {}
";
        let f = scan(text);
        assert!(!f.lines[0].in_test, "lib code before the region");
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test && f.lines[3].in_test && f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "lib code after the region");
    }

    #[test]
    fn multiline_block_comments_span_lines() {
        let f = scan("/* a\nb.unwrap()\n*/ let z = 3;\n");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[1].comment.contains("b.unwrap()"));
        assert!(f.lines[2].code.contains("let z = 3;"));
    }
}
