//! Lint findings and the report they aggregate into.

use serde::{Deserialize, Serialize};

/// One lint finding, anchored to a `file:line` location.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint name (e.g. `no-unwrap`).
    pub lint: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic for `lint` at `file:line`.
    pub fn new(lint: &str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Self {
            lint: lint.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }

    /// Render as `file:line: [lint] message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Aggregated result of one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Source files scanned.
    pub files_scanned: usize,
    /// Findings that survived the allowlist, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
    /// Allowlist entries that no longer match any source line (the
    /// `lint`/`file`/`line` echo the entry; `line` 0 means the entry
    /// was file-wide). Warned by default, fatal under `--deny-stale`.
    pub stale: Vec<Diagnostic>,
}

impl Report {
    /// Whether the run found no (unsuppressed) violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Sort diagnostics by `(file, line, lint)` for stable output.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    }

    /// Plain-text rendering, one finding per line plus a summary footer.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        for s in &self.stale {
            out.push_str(&format!("warning: stale allowlist entry: {}\n", s.render()));
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} violation(s), {} suppressed by allowlist, {} stale entr{}\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed,
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" }
        ));
        out
    }

    /// Machine-readable JSON rendering of the whole report.
    ///
    /// # Errors
    /// Propagates serializer failures (none are expected for this type).
    pub fn render_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_file_line_lint_message() {
        let d = Diagnostic::new(
            "no-unwrap",
            "crates/core/src/pipeline.rs",
            17,
            "bare unwrap",
        );
        assert_eq!(
            d.render(),
            "crates/core/src/pipeline.rs:17: [no-unwrap] bare unwrap"
        );
    }

    #[test]
    fn report_sorts_and_counts() {
        let mut r = Report {
            files_scanned: 2,
            diagnostics: vec![
                Diagnostic::new("b", "z.rs", 9, "later"),
                Diagnostic::new("a", "a.rs", 3, "earlier"),
            ],
            suppressed: 1,
            stale: Vec::new(),
        };
        r.sort();
        assert_eq!(r.diagnostics[0].file, "a.rs");
        let text = r.render_text();
        assert!(
            text.contains("2 file(s) scanned, 2 violation(s), 1 suppressed"),
            "{text}"
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn json_roundtrips() {
        let r = Report {
            files_scanned: 1,
            diagnostics: vec![Diagnostic::new("x", "f.rs", 1, "m \"quoted\"")],
            suppressed: 0,
            stale: vec![Diagnostic::new("*", "gone.rs", 0, "stale")],
        };
        let json = r.render_json().expect("report serializes");
        let back: Report = serde_json::from_str(&json).expect("report deserializes");
        assert_eq!(back, r);
    }
}
