//! The versioned `gnet analyze --json` document.
//!
//! One JSON object per run, with a top-level `schema` tag and one
//! section per analysis that ran (`lints` always; `concurrency`,
//! `protocol` and `self_check` when requested, `null` otherwise). The
//! shape is pinned two ways, matching the gnet-obs ingestion
//! convention:
//!
//! * [`render_json`](AnalyzeDocument::render_json) emits keys in a
//!   fixed order from a fixed template, so equal inputs give
//!   byte-identical documents (the protocol determinism property test
//!   relies on this);
//! * [`validate_json`] is a closed-world re-parse: every key on every
//!   object must be one this module knows, so any drift between the
//!   producer and a consumer trips a unit test instead of silently
//!   dropping data downstream.

use crate::diagnostics::Report;
use crate::protocol::{mutation_name, ProtocolReport, SelfCheckReport};
use serde::{Content, Deserialize, Error as SerdeError};

/// Current document schema tag. Bump when the shape changes.
pub const SCHEMA: &str = "gnet-analyze/2";

/// Result of the `--concurrency` interleave check, flattened for the
/// document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConcurrencySection {
    /// All interleavings merged bitwise-identically.
    Passed {
        /// Seeded runs per configuration.
        runs: usize,
        /// Total scheduler executions.
        checks: usize,
        /// Pairs merged per execution.
        pairs: u64,
    },
    /// A divergence or harness failure.
    Failed {
        /// The failure rendered for humans.
        error: String,
    },
}

/// Everything one `gnet analyze` run produced.
#[derive(Clone, Debug)]
pub struct AnalyzeDocument {
    /// Lint findings and allowlist staleness (always present).
    pub lints: Report,
    /// `--concurrency` section, if it ran.
    pub concurrency: Option<ConcurrencySection>,
    /// `--protocol` exploration of the unmutated ring, if it ran.
    pub protocol: Option<ProtocolReport>,
    /// `--self-check` mutation-detection proof, if it ran.
    pub self_check: Option<SelfCheckReport>,
}

/// JSON string literal (with quotes), escaped by the serializer the
/// rest of the workspace uses.
fn js(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("string serialization cannot fail")
}

impl AnalyzeDocument {
    /// Render the full document. Key order is fixed; equal inputs give
    /// byte-identical output.
    #[must_use]
    pub fn render_json(&self) -> String {
        let lints = self
            .lints
            .render_json()
            .expect("lint report serialization cannot fail");
        let concurrency = match &self.concurrency {
            None => "null".to_string(),
            Some(ConcurrencySection::Passed {
                runs,
                checks,
                pairs,
            }) => {
                format!("{{\"passed\":true,\"runs\":{runs},\"checks\":{checks},\"pairs\":{pairs}}}")
            }
            Some(ConcurrencySection::Failed { error }) => {
                format!("{{\"passed\":false,\"error\":{}}}", js(error))
            }
        };
        let protocol = match &self.protocol {
            None => "null".to_string(),
            Some(p) => render_protocol(p),
        };
        let self_check = match &self.self_check {
            None => "null".to_string(),
            Some(s) => render_self_check(s),
        };
        format!(
            "{{\"schema\":{},\"lints\":{lints},\"concurrency\":{concurrency},\
             \"protocol\":{protocol},\"self_check\":{self_check}}}",
            js(SCHEMA)
        )
    }
}

fn render_protocol(p: &ProtocolReport) -> String {
    let explorations: Vec<String> = p
        .explorations
        .iter()
        .map(|e| {
            let violation = match &e.violation {
                None => "null".to_string(),
                Some(v) => format!(
                    "{{\"kind\":{},\"detail\":{},\"schedule\":{},\
                     \"original_len\":{},\"shrunk_len\":{}}}",
                    js(v.violation.kind()),
                    js(&v.violation.render()),
                    js(&v.schedule.render()),
                    v.original_len,
                    v.shrunk_len
                ),
            };
            format!(
                "{{\"ranks\":{},\"mutation\":{},\"states\":{},\"terminals\":{},\
                 \"capped\":{},\"walks_run\":{},\"violation\":{violation}}}",
                e.ranks,
                js(mutation_name(e.mutation)),
                e.states,
                e.terminals,
                e.capped,
                e.walks_run
            )
        })
        .collect();
    format!(
        "{{\"ok\":{},\"explorations\":[{}]}}",
        p.ok,
        explorations.join(",")
    )
}

fn render_self_check(s: &SelfCheckReport) -> String {
    let entries: Vec<String> = s
        .entries
        .iter()
        .map(|e| {
            let opt_num = |v: Option<usize>| v.map_or("null".to_string(), |n| n.to_string());
            let opt_str = |v: &Option<String>| v.as_ref().map_or("null".to_string(), |x| js(x));
            format!(
                "{{\"mutation\":{},\"expect_clean\":{},\"passed\":{},\"states\":{},\
                 \"caught_at_ranks\":{},\"violation\":{},\"schedule\":{},\
                 \"original_len\":{},\"shrunk_len\":{},\"replay_ok\":{}}}",
                js(mutation_name(e.mutation)),
                e.expect_clean,
                e.passed,
                e.states,
                opt_num(e.caught_at_ranks),
                opt_str(&e.violation),
                opt_str(&e.schedule),
                e.original_len,
                e.shrunk_len,
                e.replay_ok
            )
        })
        .collect();
    format!("{{\"ok\":{},\"entries\":[{}]}}", s.ok, entries.join(","))
}

/// Raw parse keeping the vendored-serde [`Content`] tree (the vendored
/// `serde_json` has no generic `Value`; this is the same technique
/// gnet-obs uses for strict trace ingestion).
struct Raw(Content);

impl Deserialize for Raw {
    fn deserialize(content: &Content) -> Result<Self, SerdeError> {
        Ok(Raw(content.clone()))
    }
}

fn as_map(c: &Content, what: &str) -> Result<Vec<(String, Content)>, String> {
    match c {
        Content::Map(entries) => Ok(entries.clone()),
        other => Err(format!(
            "{what}: expected an object, found {}",
            other.kind()
        )),
    }
}

fn check_keys(entries: &[(String, Content)], what: &str, allowed: &[&str]) -> Result<(), String> {
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "{what}: unknown field `{k}` (producer/consumer schema drift?)"
            ));
        }
    }
    for want in allowed {
        if !entries.iter().any(|(k, _)| k == want) {
            return Err(format!("{what}: missing field `{want}`"));
        }
    }
    Ok(())
}

fn get<'c>(entries: &'c [(String, Content)], what: &str, key: &str) -> Result<&'c Content, String> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{what}: missing field `{key}`"))
}

fn each_object(c: &Content, what: &str, keys: &[&str]) -> Result<(), String> {
    let Content::Seq(items) = c else {
        return Err(format!("{what}: expected an array, found {}", c.kind()));
    };
    for item in items {
        let entries = as_map(item, what)?;
        check_keys(&entries, what, keys)?;
    }
    Ok(())
}

/// Strict closed-world validation of a rendered document: the schema
/// tag must match [`SCHEMA`] and every object may carry only known
/// keys. This is the unknown-field tripwire the schema-pin test (and
/// any downstream ingester) leans on.
///
/// # Errors
/// Returns a message naming the offending field or the mismatched
/// schema tag.
pub fn validate_json(text: &str) -> Result<(), String> {
    let raw: Raw = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let top = as_map(&raw.0, "document")?;
    check_keys(
        &top,
        "document",
        &["schema", "lints", "concurrency", "protocol", "self_check"],
    )?;
    match get(&top, "document", "schema")? {
        Content::Str(s) if s == SCHEMA => {}
        Content::Str(s) => return Err(format!("schema {s:?}, this consumer reads {SCHEMA:?}")),
        other => return Err(format!("schema: expected a string, found {}", other.kind())),
    }
    let lints = as_map(get(&top, "document", "lints")?, "lints")?;
    check_keys(
        &lints,
        "lints",
        &["files_scanned", "diagnostics", "suppressed", "stale"],
    )?;
    for section in ["diagnostics", "stale"] {
        each_object(
            get(&lints, "lints", section)?,
            &format!("lints.{section}"),
            &["lint", "file", "line", "message"],
        )?;
    }
    match get(&top, "document", "concurrency")? {
        Content::Null => {}
        c => {
            let entries = as_map(c, "concurrency")?;
            let passed = matches!(get(&entries, "concurrency", "passed")?, Content::Bool(true));
            let allowed: &[&str] = if passed {
                &["passed", "runs", "checks", "pairs"]
            } else {
                &["passed", "error"]
            };
            check_keys(&entries, "concurrency", allowed)?;
        }
    }
    match get(&top, "document", "protocol")? {
        Content::Null => {}
        c => {
            let entries = as_map(c, "protocol")?;
            check_keys(&entries, "protocol", &["ok", "explorations"])?;
            let Content::Seq(items) = get(&entries, "protocol", "explorations")? else {
                return Err("protocol.explorations: expected an array".to_string());
            };
            for item in items {
                let exp = as_map(item, "protocol.explorations[]")?;
                check_keys(
                    &exp,
                    "protocol.explorations[]",
                    &[
                        "ranks",
                        "mutation",
                        "states",
                        "terminals",
                        "capped",
                        "walks_run",
                        "violation",
                    ],
                )?;
                match get(&exp, "protocol.explorations[]", "violation")? {
                    Content::Null => {}
                    v => {
                        let v = as_map(v, "violation")?;
                        check_keys(
                            &v,
                            "violation",
                            &["kind", "detail", "schedule", "original_len", "shrunk_len"],
                        )?;
                    }
                }
            }
        }
    }
    match get(&top, "document", "self_check")? {
        Content::Null => {}
        c => {
            let entries = as_map(c, "self_check")?;
            check_keys(&entries, "self_check", &["ok", "entries"])?;
            each_object(
                get(&entries, "self_check", "entries")?,
                "self_check.entries[]",
                &[
                    "mutation",
                    "expect_clean",
                    "passed",
                    "states",
                    "caught_at_ranks",
                    "violation",
                    "schedule",
                    "original_len",
                    "shrunk_len",
                    "replay_ok",
                ],
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Diagnostic;
    use crate::protocol::{self, Bounds};

    fn doc() -> AnalyzeDocument {
        let lints = Report {
            files_scanned: 3,
            diagnostics: vec![Diagnostic::new(
                "no-unwrap",
                "crates/mi/src/gene.rs",
                7,
                "bare `.unwrap()`",
            )],
            suppressed: 0,
            stale: vec![Diagnostic::new("*", "gone.rs", 0, "stale entry")],
        };
        AnalyzeDocument {
            lints,
            concurrency: Some(ConcurrencySection::Passed {
                runs: 25,
                checks: 300,
                pairs: 45,
            }),
            protocol: None,
            self_check: None,
        }
    }

    /// The schema-pin: rendering then strict re-parsing must succeed,
    /// and the exact top-level field set is asserted here so adding a
    /// field forces this test (and the schema tag) to change with it.
    #[test]
    fn rendered_document_validates_and_pins_fields() {
        let json = doc().render_json();
        validate_json(&json).expect("own output validates");
        assert!(
            json.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")),
            "{json}"
        );
        for key in [
            "\"lints\":",
            "\"concurrency\":",
            "\"protocol\":",
            "\"self_check\":",
        ] {
            assert!(json.contains(key), "{json}");
        }
    }

    #[test]
    fn unknown_field_trips_the_wire() {
        let json = doc().render_json();
        let smuggled = json.replacen("{\"schema\"", "{\"extra\":1,\"schema\"", 1);
        let err = validate_json(&smuggled).expect_err("unknown field must fail");
        assert!(err.contains("extra"), "{err}");
        // Drift inside a nested object is caught too.
        let nested = json.replacen("\"passed\":true", "\"passed\":true,\"new_stat\":9", 1);
        let err = validate_json(&nested).expect_err("nested unknown field must fail");
        assert!(err.contains("new_stat"), "{err}");
    }

    #[test]
    fn schema_tag_mismatch_rejected() {
        let json = doc().render_json().replacen(SCHEMA, "gnet-analyze/1", 1);
        let err = validate_json(&json).expect_err("old schema must be rejected");
        assert!(err.contains("gnet-analyze/1"), "{err}");
    }

    #[test]
    fn protocol_and_self_check_sections_validate() {
        let bounds = Bounds {
            ranks: vec![2],
            ..Bounds::quick()
        };
        let document = AnalyzeDocument {
            lints: Report::default(),
            concurrency: None,
            protocol: Some(protocol::check_protocol(&bounds)),
            self_check: Some(protocol::self_check(&bounds)),
        };
        let json = document.render_json();
        validate_json(&json).expect("protocol sections validate");
        assert!(json.contains("\"mutation\":\"accept-any-round\""), "{json}");
    }
}
