//! Deterministic concurrency checker for the tile executor.
//!
//! The scheduler module promises that the merged result of a tiled MI
//! computation is *bitwise identical* across every
//! [`SchedulerPolicy`] and thread count, because each pair's MI is
//! computed independently and the per-thread states partition the pair
//! set. This harness makes that promise executable: it runs a real
//! B-spline MI computation over a seeded synthetic expression matrix
//! under every policy × thread-count combination, injecting seeded
//! random delays after each tile to randomize completion order, and
//! compares every merged matrix bit-for-bit against a single-threaded
//! reference.
//!
//! A failure is a real race or nondeterminism (duplicated tile, lost
//! pair, order-dependent accumulation) and reports the first divergent
//! pair with both bit patterns.

use gnet_bspline::BsplineBasis;
use gnet_mi::{mi_scalar, prepare_gene, MiScratch, PreparedGene};
use gnet_parallel::{execute_tiles, SchedulerPolicy, TileSpace};
use std::fmt;
use std::time::Duration;

/// Harness parameters.
#[derive(Clone, Debug)]
pub struct InterleaveConfig {
    /// Genes in the synthetic matrix.
    pub genes: usize,
    /// Samples per gene.
    pub samples: usize,
    /// Tile edge length.
    pub tile: usize,
    /// Thread counts to exercise (each × every policy).
    pub threads: Vec<usize>,
    /// Seeded repetitions of the full policy × thread sweep.
    pub runs: usize,
    /// Base seed; run `r` perturbs it deterministically.
    pub seed: u64,
    /// Upper bound on the injected per-tile delay, in microseconds.
    pub max_delay_us: u64,
}

impl Default for InterleaveConfig {
    fn default() -> Self {
        Self {
            genes: 32,
            samples: 48,
            tile: 8,
            threads: vec![1, 2, 4, 8],
            runs: 8,
            seed: 0x5eed_1e55_ab1e,
            max_delay_us: 40,
        }
    }
}

/// Summary of a passing check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterleaveOutcome {
    /// Seeded repetitions executed.
    pub runs: usize,
    /// Policy × thread-count executions compared against the reference.
    pub checks: usize,
    /// Gene pairs verified per execution.
    pub pairs: u64,
}

/// First divergence found by the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterleaveError {
    /// Policy under which the divergence appeared.
    pub policy: &'static str,
    /// Worker thread count.
    pub threads: usize,
    /// Seeded run index.
    pub run: usize,
    /// What went wrong, including the pair and both bit patterns.
    pub detail: String,
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduler determinism violated (policy {}, {} threads, run {}): {}",
            self.policy, self.threads, self.run, self.detail
        )
    }
}

impl std::error::Error for InterleaveError {}

/// SplitMix64 step — the same generator the pipeline uses for seeding,
/// reimplemented here so the harness stays independent of `rand`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic synthetic profiles in `[0, 1)`, with enough pairwise
/// structure (shared low-frequency component) that MI values exercise
/// the full accumulation path rather than collapsing to near-zero.
fn synthetic_profiles(genes: usize, samples: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed ^ 0xa076_1d64_78bd_642f;
    let shared: Vec<f64> = (0..samples)
        .map(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64)
        .collect();
    (0..genes)
        .map(|g| {
            let mix = 0.2 + 0.6 * (g as f64 / genes.max(1) as f64);
            (0..samples)
                .map(|s| {
                    let noise = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    // cast-ok: profiles are f32 like real expression data;
                    // rounding here is part of fixture generation.
                    #[allow(clippy::cast_possible_truncation)]
                    let value = ((1.0 - mix) * noise + mix * shared[s]) as f32;
                    value
                })
                .collect()
        })
        .collect()
}

fn prepare(cfg: &InterleaveConfig) -> Vec<PreparedGene> {
    let basis = BsplineBasis::new(3, 8);
    synthetic_profiles(cfg.genes, cfg.samples, cfg.seed)
        .iter()
        .map(|profile| prepare_gene(profile, &basis))
        .collect()
}

/// Index of pair `(i, j)` (`i < j`) in a packed upper triangle of `n`.
fn pair_slot(i: u32, j: u32, n: usize) -> usize {
    let (i, j) = (i as usize, j as usize);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Single-threaded reference: MI bits for every pair, in packed order.
fn reference_bits(prepared: &[PreparedGene]) -> Vec<u64> {
    let mut scratch = MiScratch::for_basis(&BsplineBasis::new(3, 8));
    let n = prepared.len();
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            out.push(mi_scalar(&prepared[i], &prepared[j], &mut scratch).to_bits());
        }
    }
    out
}

/// Run the full sweep; returns the first divergence as an error.
///
/// # Errors
/// Returns [`InterleaveError`] describing the first policy × thread
/// combination whose merged matrix differs from the reference.
///
/// # Panics
/// Panics if `cfg.genes < 2` or `cfg.threads` is empty.
pub fn check_determinism(cfg: &InterleaveConfig) -> Result<InterleaveOutcome, InterleaveError> {
    assert!(cfg.genes >= 2, "need at least two genes");
    assert!(!cfg.threads.is_empty(), "need at least one thread count");
    let prepared = prepare(cfg);
    let reference = reference_bits(&prepared);
    let space = TileSpace::new(cfg.genes, cfg.tile);
    let n = cfg.genes;
    let mut checks = 0usize;

    for run in 0..cfg.runs {
        for policy in SchedulerPolicy::ALL {
            for &threads in &cfg.threads {
                // Per-(run, policy, threads) delay seed: completion order
                // is shuffled differently in every execution.
                let delay_seed = cfg
                    .seed
                    .wrapping_add((run as u64) << 32)
                    .wrapping_add((threads as u64) << 8)
                    .wrapping_add(policy as u64);
                let (states, _report) = execute_tiles(
                    space.tiles(),
                    threads,
                    policy,
                    |_tid| (MiScratch::for_basis(&BsplineBasis::new(3, 8)), Vec::new()),
                    |(scratch, acc): &mut (MiScratch, Vec<(u32, u32, u64)>), tile| {
                        for (i, j) in tile.pairs() {
                            let mi =
                                mi_scalar(&prepared[i as usize], &prepared[j as usize], scratch);
                            acc.push((i, j, mi.to_bits()));
                        }
                        if cfg.max_delay_us > 0 {
                            let mut h = delay_seed
                                ^ ((u64::from(tile.row_start) << 20) | u64::from(tile.col_start));
                            let us = splitmix(&mut h) % cfg.max_delay_us;
                            std::thread::sleep(Duration::from_micros(us));
                        }
                    },
                );
                checks += 1;

                // Merge exactly the way the pipeline does: concatenate
                // per-thread candidate lists, then place by pair key.
                let mut merged: Vec<Option<u64>> = vec![None; reference.len()];
                let mut total = 0usize;
                for (_, acc) in &states {
                    for &(i, j, bits) in acc {
                        let slot = pair_slot(i, j, n);
                        if merged[slot].is_some() {
                            return Err(InterleaveError {
                                policy: policy.name(),
                                threads,
                                run,
                                detail: format!("pair ({i}, {j}) computed twice"),
                            });
                        }
                        merged[slot] = Some(bits);
                        total += 1;
                    }
                }
                if total != reference.len() {
                    return Err(InterleaveError {
                        policy: policy.name(),
                        threads,
                        run,
                        detail: format!("{total} pairs merged, expected {}", reference.len()),
                    });
                }
                let n32 = u32::try_from(n).expect("fixture gene count fits u32");
                for i in 0..n32 {
                    for j in i + 1..n32 {
                        let slot = pair_slot(i, j, n);
                        let got = merged[slot].expect("slot filled: total count verified");
                        let want = reference[slot];
                        if got != want {
                            return Err(InterleaveError {
                                policy: policy.name(),
                                threads,
                                run,
                                detail: format!(
                                    "pair ({i}, {j}) diverged: got bits {got:#018x} \
                                     ({}), reference {want:#018x} ({})",
                                    f64::from_bits(got),
                                    f64::from_bits(want)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(InterleaveOutcome {
        runs: cfg.runs,
        checks,
        pairs: (n * (n - 1) / 2) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_is_deterministic() {
        let cfg = InterleaveConfig {
            runs: 2,
            ..InterleaveConfig::default()
        };
        let outcome = check_determinism(&cfg).expect("schedulers are deterministic");
        assert_eq!(outcome.runs, 2);
        assert_eq!(outcome.checks, 2 * 4 * cfg.threads.len());
        assert_eq!(outcome.pairs, 32 * 31 / 2);
    }

    #[test]
    fn pair_slot_is_a_bijection() {
        let n = 9usize;
        let n32 = 9u32;
        let mut seen = vec![false; n * (n - 1) / 2];
        for i in 0..n32 {
            for j in i + 1..n32 {
                let s = pair_slot(i, j, n);
                assert!(!seen[s], "slot {s} reused at ({i}, {j})");
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn profiles_are_seed_deterministic() {
        let a = synthetic_profiles(6, 20, 42);
        let b = synthetic_profiles(6, 20, 42);
        let c = synthetic_profiles(6, 20, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn delays_do_not_change_results() {
        let quiet = InterleaveConfig {
            runs: 1,
            max_delay_us: 0,
            ..InterleaveConfig::default()
        };
        let noisy = InterleaveConfig {
            runs: 1,
            max_delay_us: 120,
            ..InterleaveConfig::default()
        };
        assert!(check_determinism(&quiet).is_ok());
        assert!(check_determinism(&noisy).is_ok());
    }
}
