//! Vetted exceptions to the lints.
//!
//! The allowlist is a plain-text file, one entry per line:
//!
//! ```text
//! # comment
//! <lint-name> <path-suffix>[:<line>] <reason…>
//! ```
//!
//! * `lint-name` — a name from [`crate::lints::all_lints`], or `*` for
//!   any lint.
//! * `path-suffix` — matched against the end of the diagnostic's
//!   workspace-relative path (so `mi/src/gene.rs` matches
//!   `crates/mi/src/gene.rs`). An optional `:<line>` pins the entry to
//!   one line; without it the whole file is exempt for that lint.
//! * `reason` — required free text; unexplained exceptions are rejected
//!   at load time so the file stays reviewable.

use crate::diagnostics::Diagnostic;
use std::path::Path;

/// One vetted exception.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Lint name, or `*` for any lint.
    pub lint: String,
    /// Path suffix the exception applies to.
    pub path: String,
    /// Specific line, or `None` for the whole file.
    pub line: Option<usize>,
    /// Why the exception is acceptable.
    pub reason: String,
}

/// Parsed allowlist.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

impl Allowlist {
    /// Parse allowlist text.
    ///
    /// # Errors
    /// Returns a message naming the offending line when an entry is
    /// malformed or missing its reason.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let lint = parts.next().unwrap_or_default().to_string();
            let Some(loc) = parts.next() else {
                return Err(format!("allowlist line {}: missing path", idx + 1));
            };
            let reason = parts.next().unwrap_or("").trim().to_string();
            if reason.is_empty() {
                return Err(format!(
                    "allowlist line {}: entry for {loc} needs a reason",
                    idx + 1
                ));
            }
            let (path, line_no) = match loc.rsplit_once(':') {
                Some((p, n)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                    let parsed = n.parse().map_err(|_| {
                        format!("allowlist line {}: bad line number {n:?}", idx + 1)
                    })?;
                    (p.to_string(), Some(parsed))
                }
                _ => (loc.to_string(), None),
            };
            entries.push(Entry {
                lint,
                path,
                line: line_no,
                reason,
            });
        }
        Ok(Self { entries })
    }

    /// Load and parse an allowlist file.
    ///
    /// # Errors
    /// Returns a message if the file cannot be read or fails to parse.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `d` is covered by a vetted exception.
    #[must_use]
    pub fn permits(&self, d: &Diagnostic) -> bool {
        self.entries.iter().any(|e| {
            (e.lint == "*" || e.lint == d.lint)
                && path_suffix_matches(&d.file, &e.path)
                && e.line.is_none_or(|l| l == d.line)
        })
    }

    /// Entries that no longer excuse anything: their path suffix
    /// matches none of the scanned source files, or their pinned line
    /// is beyond the end of every file that does match. `files` is
    /// `(workspace-relative path, line count)` for every scanned file.
    ///
    /// A vetted exception that outlives the code it excuses is a
    /// latent hole — the lint it suppresses can regress at the same
    /// location unnoticed — so `gnet analyze` warns on stale entries
    /// and `--deny-stale` fails on them.
    #[must_use]
    pub fn stale(&self, files: &[(String, usize)]) -> Vec<Entry> {
        self.entries
            .iter()
            .filter(|e| {
                let matching: Vec<usize> = files
                    .iter()
                    .filter(|(path, _)| path_suffix_matches(path, &e.path))
                    .map(|(_, lines)| *lines)
                    .collect();
                match (matching.is_empty(), e.line) {
                    (true, _) => true,
                    (false, None) => false,
                    (false, Some(l)) => l == 0 || !matching.iter().any(|&count| l <= count),
                }
            })
            .cloned()
            .collect()
    }
}

/// Suffix match on whole path components: `mi/src/gene.rs` matches
/// `crates/mi/src/gene.rs` but not `crates/xmi/src/gene.rs`.
fn path_suffix_matches(full: &str, suffix: &str) -> bool {
    full == suffix
        || full
            .strip_suffix(suffix)
            .is_some_and(|head| head.ends_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &str, file: &str, line: usize) -> Diagnostic {
        Diagnostic::new(lint, file, line, "m")
    }

    #[test]
    fn parses_entries_and_matches_suffixes() {
        let a = Allowlist::parse(
            "# vetted\nno-unwrap mi/src/gene.rs:12 scratch invariant upheld by caller\n\
             kernel-cast simd/src/lanes.rs lane width fits in u32 by construction\n",
        )
        .expect("well-formed allowlist parses");
        assert_eq!(a.len(), 2);
        assert!(a.permits(&diag("no-unwrap", "crates/mi/src/gene.rs", 12)));
        assert!(!a.permits(&diag("no-unwrap", "crates/mi/src/gene.rs", 13)));
        assert!(a.permits(&diag("kernel-cast", "crates/simd/src/lanes.rs", 99)));
        assert!(!a.permits(&diag("kernel-cast", "crates/xsimd/src/lanes.rs", 99)));
    }

    #[test]
    fn wildcard_lint_matches_everything() {
        let a = Allowlist::parse("* crates/phi/src/model.rs modeled constants, not statistics\n")
            .expect("wildcard entry parses");
        assert!(a.permits(&diag("float-eq", "crates/phi/src/model.rs", 5)));
        assert!(a.permits(&diag("no-unwrap", "crates/phi/src/model.rs", 50)));
    }

    #[test]
    fn reasonless_entries_rejected() {
        let err = Allowlist::parse("no-unwrap mi/src/gene.rs:12\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn stale_entries_detected_by_path_and_line() {
        let a = Allowlist::parse(
            "no-unwrap mi/src/gene.rs:12 invariant upheld by caller\n\
             kernel-cast gone/src/old.rs the whole file vanished\n\
             float-eq mi/src/gene.rs:500 line beyond the end now\n\
             * mi/src/gene.rs file-wide entries stay fresh while the file exists\n",
        )
        .expect("well-formed allowlist parses");
        let files = vec![("crates/mi/src/gene.rs".to_string(), 100usize)];
        let stale = a.stale(&files);
        let paths: Vec<(&str, Option<usize>)> =
            stale.iter().map(|e| (e.path.as_str(), e.line)).collect();
        assert_eq!(
            paths,
            vec![("gone/src/old.rs", None), ("mi/src/gene.rs", Some(500))]
        );
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let a = Allowlist::parse("\n# nothing here\n\n").expect("empty allowlist parses");
        assert!(a.is_empty());
    }
}
