//! The model checker's proof of usefulness.
//!
//! A checker that has never caught a bug is indistinguishable from one
//! that cannot. The self-check injects three historical protocol bugs
//! (see [`Mutation`]) into the *real* [`gnet_cluster::RankMachine`] and
//! requires that exploration under the same bounds as the faithful run:
//!
//! 1. finds a violation for every mutant,
//! 2. shrinks it to a minimal schedule, and
//! 3. replays that schedule to the same violation kind
//!    (the spec is evidence, not prose);
//!
//! while the unmutated protocol explores clean. Any failure of these
//! four obligations fails `gnet analyze --protocol --self-check`.

use super::explore::explore;
use super::{mutation_name, replay, Bounds, Mutation};

/// Result of one self-check obligation.
#[derive(Clone, Debug)]
pub struct SelfCheckEntry {
    /// Mutation under test ([`Mutation::None`] for the clean run).
    pub mutation: Mutation,
    /// Whether the obligation is "explore clean" (true only for
    /// [`Mutation::None`]) as opposed to "catch the bug".
    pub expect_clean: bool,
    /// Whether the obligation held.
    pub passed: bool,
    /// Total distinct states across the ring sizes explored.
    pub states: usize,
    /// Ring size at which the violation was found (mutants only).
    pub caught_at_ranks: Option<usize>,
    /// Violation kind found (mutants only).
    pub violation: Option<String>,
    /// Shrunk replayable schedule spec (mutants only).
    pub schedule: Option<String>,
    /// Trace length when first found.
    pub original_len: usize,
    /// Trace length after shrinking.
    pub shrunk_len: usize,
    /// Whether replaying the shrunk spec reproduced the violation.
    pub replay_ok: bool,
}

/// Aggregated self-check result.
#[derive(Clone, Debug)]
pub struct SelfCheckReport {
    /// One entry per obligation, clean run first.
    pub entries: Vec<SelfCheckEntry>,
    /// Whether every obligation held.
    pub ok: bool,
}

/// Run the full self-check under `bounds`. Mutants are explored at
/// each ring size in order until one catches the bug; the clean run
/// must stay clean at *every* size.
#[must_use]
pub fn self_check(bounds: &Bounds) -> SelfCheckReport {
    let mut entries = Vec::new();

    // Obligation 0: the faithful protocol explores clean everywhere.
    let clean = super::check_protocol(bounds);
    entries.push(SelfCheckEntry {
        mutation: Mutation::None,
        expect_clean: true,
        passed: clean.ok,
        states: clean.explorations.iter().map(|e| e.states).sum(),
        caught_at_ranks: None,
        violation: clean
            .explorations
            .iter()
            .find_map(|e| e.violation.as_ref().map(|v| v.violation.kind().to_string())),
        schedule: clean
            .explorations
            .iter()
            .find_map(|e| e.violation.as_ref().map(|v| v.schedule.render())),
        original_len: 0,
        shrunk_len: 0,
        replay_ok: clean.ok,
    });

    // Obligations 1–3: each injected bug is caught, shrunk, replayed.
    for mutation in [
        Mutation::AcceptAnyRound,
        Mutation::DoubleRedistribute,
        Mutation::SkipSupplementBackstop,
    ] {
        let mut states = 0;
        let mut entry = SelfCheckEntry {
            mutation,
            expect_clean: false,
            passed: false,
            states: 0,
            caught_at_ranks: None,
            violation: None,
            schedule: None,
            original_len: 0,
            shrunk_len: 0,
            replay_ok: false,
        };
        for &ranks in &bounds.ranks {
            let report = explore(ranks, mutation, bounds);
            states += report.states;
            if let Some(found) = report.violation {
                let replay_ok = matches!(
                    replay(&found.schedule),
                    Ok(Some(v)) if v.kind() == found.violation.kind()
                );
                entry.caught_at_ranks = Some(ranks);
                entry.violation = Some(found.violation.kind().to_string());
                entry.schedule = Some(found.schedule.render());
                entry.original_len = found.original_len;
                entry.shrunk_len = found.shrunk_len;
                entry.replay_ok = replay_ok;
                entry.passed = replay_ok;
                break;
            }
        }
        entry.states = states;
        entries.push(entry);
    }

    let ok = entries.iter().all(|e| e.passed);
    SelfCheckReport { entries, ok }
}

/// Render a self-check report for the terminal.
#[must_use]
pub fn render_text(report: &SelfCheckReport) -> String {
    let mut out = String::new();
    for e in &report.entries {
        let status = if e.passed { "ok" } else { "FAIL" };
        if e.expect_clean {
            out.push_str(&format!(
                "self-check [{status}] {}: {} state(s), expected clean\n",
                mutation_name(e.mutation),
                e.states
            ));
        } else {
            out.push_str(&format!(
                "self-check [{status}] {}: {}\n",
                mutation_name(e.mutation),
                match (&e.violation, &e.schedule) {
                    (Some(kind), Some(spec)) => format!(
                        "caught as {kind} at {} rank(s), shrunk {} -> {} action(s), replay {}\n  {spec}",
                        e.caught_at_ranks.unwrap_or(0),
                        e.original_len,
                        e.shrunk_len,
                        if e.replay_ok { "ok" } else { "FAILED" }
                    ),
                    _ => "NOT CAUGHT".to_string(),
                }
            ));
        }
    }
    out.push_str(if report.ok {
        "self-check passed: 3/3 mutations caught, faithful protocol clean\n"
    } else {
        "self-check FAILED\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline acceptance test: all three injected protocol bugs
    /// are detected under PR bounds, each with a shrunk schedule that
    /// replays to the same violation, and the faithful ring is clean.
    #[test]
    fn quick_bounds_catch_all_three_mutations_and_pass_clean() {
        let report = self_check(&Bounds::quick());
        assert!(report.ok, "{}", render_text(&report));
        assert_eq!(report.entries.len(), 4);
        for e in &report.entries[1..] {
            assert!(e.caught_at_ranks.is_some(), "{:?} not caught", e.mutation);
            assert!(e.shrunk_len <= e.original_len);
            assert!(e.replay_ok, "{:?} schedule did not replay", e.mutation);
            let spec = e.schedule.as_ref().expect("caught entries carry a spec");
            assert!(
                spec.contains(&format!("mutation={}", mutation_name(e.mutation))),
                "{spec}"
            );
        }
    }
}
