//! The model-checker world: every rank's [`RankMachine`] plus the
//! message pool, fault budgets, and the correctness oracles.
//!
//! The world is a deterministic transition system. A state is the tuple
//! (machine states, per-ordered-pair FIFO channels, crash flags, fault
//! budgets, coverage ledgers); an [`Action`] is one schedule decision —
//! start a rank, deliver the head frame of the channel a rank is
//! blocked on, time a receive out, crash a rank, or drop/duplicate a
//! frame in flight. [`World::enabled`] enumerates the decisions that
//! are *physically possible* in the real fabric:
//!
//! * a receive can only return a frame that is actually buffered
//!   (`Deliver` requires a non-empty channel);
//! * a timeout can only fire on an *empty* channel — it is "free" when
//!   the awaited sender can provably never send again (crashed, or
//!   protocol-complete) or when the expected frame was dropped, and
//!   otherwise costs one unit of the spurious-timeout budget (modelling
//!   a frame delayed past `DEFAULT_PEER_TIMEOUT`: the timeout fires,
//!   the frame stays in flight and arrives stale later);
//! * rank 0 never crashes — the real driver treats coordinator loss as
//!   job loss, so schedules that crash it check nothing.
//!
//! Coverage is tracked exactly the way the interpreter accumulates
//! results: each rank's phase-1 pairs ([`Effect::ComputeDiag`] /
//! [`Effect::ComputeCross`]) and supplement pairs
//! ([`Effect::ComputeAssigned`]) are ledgered per rank, and enter the
//! *merged* multiset only when the coordinator actually merges that
//! rank's frame ([`Effect::AcceptResults`] / [`Effect::AcceptSupplement`])
//! or recomputes its share ([`Effect::RecomputeShare`]). At
//! [`Effect::Finalize`] the coordinator's own ledgers join, and the
//! merged multiset must be *exactly* every unordered block pair once —
//! anything missing or duplicated is a protocol violation.

use gnet_cluster::protocol::{Effect, Event, Frame, Mutation, RankMachine, Wait};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

use super::{Action, Violation};

/// Fault budgets for one exploration (and one replay): how many of each
/// adversarial event a schedule may contain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Budgets {
    /// Rank crashes (rank 0 excluded).
    pub crashes: usize,
    /// Spurious timeouts: receives that give up on a frame that is
    /// merely delayed, not lost.
    pub timeouts: usize,
    /// Frames dropped in flight.
    pub drops: usize,
    /// Frames duplicated in flight.
    pub dups: usize,
}

/// What a machine is blocked on, from the world's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Block {
    /// `Event::Start` not yet delivered.
    NotStarted,
    /// Blocked in a bounded receive on the channel from this rank.
    Recv(usize),
    /// Protocol complete.
    Done,
}

/// One explorable state of the whole ring. See the module docs.
#[derive(Clone, Debug)]
pub struct World {
    p: usize,
    machines: Vec<RankMachine>,
    blocks: Vec<Block>,
    crashed: Vec<bool>,
    /// `chans[from][to]`: reliable ordered channel, like the fabric's.
    chans: Vec<Vec<VecDeque<Frame>>>,
    /// Frames dropped from `chans[from][to]` whose timeout has not yet
    /// fired; justifies a free timeout on that channel.
    dropped: Vec<Vec<usize>>,
    left: Budgets,
    steps: usize,
    /// Phase-1 pairs each rank computed (diag + owned cross pairs).
    phase1: Vec<Vec<(usize, usize)>>,
    /// Reassigned pairs each rank recomputed into its supplement.
    supp: Vec<Vec<(usize, usize)>>,
    /// Pairs the coordinator actually merged, as a multiset.
    merged: Vec<(usize, usize)>,
    /// Which ranks' phase-1 results the coordinator merged.
    results_merged: Vec<bool>,
    /// Dead set reported by `Effect::Finalize`, once it happens.
    finalized: Option<Vec<usize>>,
}

impl World {
    /// Fresh world of `ranks` machines with the given budgets.
    #[must_use]
    pub fn new(ranks: usize, mutation: Mutation, budgets: Budgets) -> Self {
        Self {
            p: ranks,
            machines: (0..ranks)
                .map(|r| RankMachine::new(r, ranks, mutation))
                .collect(),
            blocks: vec![Block::NotStarted; ranks],
            crashed: vec![false; ranks],
            chans: vec![vec![VecDeque::new(); ranks]; ranks],
            dropped: vec![vec![0; ranks]; ranks],
            left: budgets,
            steps: 0,
            phase1: vec![Vec::new(); ranks],
            supp: vec![Vec::new(); ranks],
            merged: Vec::new(),
            results_merged: vec![false; ranks],
            finalized: None,
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Actions applied so far (the livelock step counter).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// A timeout needs no budget when the awaited sender can provably
    /// never send again, or the expected frame was dropped.
    fn timeout_is_free(&self, from: usize, to: usize) -> bool {
        self.crashed[from] || self.blocks[from] == Block::Done || self.dropped[from][to] > 0
    }

    /// Whether frames sent to `to` can still be observed by anyone.
    fn receiver_live(&self, to: usize) -> bool {
        !self.crashed[to] && self.blocks[to] != Block::Done
    }

    /// Every action possible in this state, in a canonical order (the
    /// exploration and the determinism guarantee depend on the order
    /// being a pure function of the state).
    #[must_use]
    pub fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for m in 0..self.p {
            if !self.crashed[m] && self.blocks[m] == Block::NotStarted {
                out.push(Action::Start { rank: m });
            }
        }
        for m in 0..self.p {
            if let (false, Block::Recv(from)) = (self.crashed[m], self.blocks[m]) {
                if !self.chans[from][m].is_empty() {
                    out.push(Action::Deliver { rank: m });
                }
            }
        }
        for m in 0..self.p {
            if let (false, Block::Recv(from)) = (self.crashed[m], self.blocks[m]) {
                if self.chans[from][m].is_empty()
                    && (self.timeout_is_free(from, m) || self.left.timeouts > 0)
                {
                    out.push(Action::Timeout { rank: m });
                }
            }
        }
        if self.left.crashes > 0 {
            for m in 1..self.p {
                if !self.crashed[m] && self.blocks[m] != Block::Done {
                    out.push(Action::Crash { rank: m });
                }
            }
        }
        for (kind, budget) in [(0u8, self.left.drops), (1u8, self.left.dups)] {
            if budget == 0 {
                continue;
            }
            for from in 0..self.p {
                for to in 0..self.p {
                    if !self.chans[from][to].is_empty() && self.receiver_live(to) {
                        out.push(if kind == 0 {
                            Action::Drop { from, to }
                        } else {
                            Action::Dup { from, to }
                        });
                    }
                }
            }
        }
        out
    }

    /// Whether `a` is enabled right now (used by strict replay).
    #[must_use]
    pub fn action_enabled(&self, a: Action) -> bool {
        self.enabled().contains(&a)
    }

    /// Apply one action. The caller must ensure it is enabled.
    pub fn apply(&mut self, a: Action) {
        self.steps += 1;
        match a {
            Action::Start { rank } => {
                let (fx, wait) = self.machines[rank].step(Event::Start);
                self.post(rank, &fx, wait);
            }
            Action::Deliver { rank } => {
                let Block::Recv(from) = self.blocks[rank] else {
                    unreachable!("deliver to rank {rank} which is not receiving")
                };
                let frame = self.chans[from][rank]
                    .pop_front()
                    .expect("deliver requires a buffered frame");
                let (fx, wait) = self.machines[rank].step(Event::Frame(frame));
                self.post(rank, &fx, wait);
            }
            Action::Timeout { rank } => {
                let Block::Recv(from) = self.blocks[rank] else {
                    unreachable!("timeout at rank {rank} which is not receiving")
                };
                if self.dropped[from][rank] > 0 {
                    // The awaited frame was dropped: this is the real
                    // DEFAULT_PEER_TIMEOUT expiring, not an injected one.
                    self.dropped[from][rank] -= 1;
                } else if !self.crashed[from] && self.blocks[from] != Block::Done {
                    self.left.timeouts = self.left.timeouts.saturating_sub(1);
                }
                let (fx, wait) = self.machines[rank].step(Event::Timeout);
                self.post(rank, &fx, wait);
            }
            Action::Crash { rank } => {
                self.crashed[rank] = true;
                self.left.crashes = self.left.crashes.saturating_sub(1);
            }
            Action::Drop { from, to } => {
                self.chans[from][to].pop_front();
                self.dropped[from][to] += 1;
                self.left.drops = self.left.drops.saturating_sub(1);
            }
            Action::Dup { from, to } => {
                if let Some(head) = self.chans[from][to].front().cloned() {
                    self.chans[from][to].insert(1, head);
                }
                self.left.dups = self.left.dups.saturating_sub(1);
            }
        }
    }

    /// Execute a step's effects against the world (the model-checking
    /// analogue of the interpreter in `gnet_cluster::distributed`).
    fn post(&mut self, m: usize, fx: &[Effect], wait: Wait) {
        for e in fx {
            match e {
                Effect::Send { to, frame } => {
                    // The armed fabric discards sends to crashed peers.
                    if !self.crashed[*to] {
                        self.chans[m][*to].push_back(frame.clone());
                    }
                }
                Effect::ComputeDiag => self.phase1[m].push((m, m)),
                Effect::ComputeCross { block } => {
                    self.phase1[m].push((m.min(*block), m.max(*block)));
                }
                Effect::ComputeAssigned { pairs } => self.supp[m].extend(pairs.iter().copied()),
                Effect::AcceptResults { from } => {
                    let part = self.phase1[*from].clone();
                    self.merged.extend(part);
                    self.results_merged[*from] = true;
                }
                Effect::AcceptSupplement { from } => {
                    let part = self.supp[*from].clone();
                    self.merged.extend(part);
                }
                Effect::RecomputeShare { pairs, .. } => self.merged.extend(pairs.iter().copied()),
                Effect::Finalize { dead } => {
                    let own = self.phase1[m].clone();
                    self.merged.extend(own);
                    let own_supp = self.supp[m].clone();
                    self.merged.extend(own_supp);
                    self.finalized = Some(dead.clone());
                }
                Effect::AcceptBlock
                | Effect::Heal { .. }
                | Effect::PresumeDead { .. }
                | Effect::Redistributed { .. } => {}
            }
        }
        self.blocks[m] = match wait {
            Wait::Recv { from } => Block::Recv(from),
            Wait::Done => Block::Done,
        };
    }

    /// All machines finished or crashed: the run is over.
    #[must_use]
    pub fn terminal(&self) -> bool {
        (0..self.p).all(|m| self.crashed[m] || self.blocks[m] == Block::Done)
    }

    /// Ranks blocked in a receive (for deadlock diagnostics).
    #[must_use]
    pub fn blocked_ranks(&self) -> Vec<usize> {
        (0..self.p)
            .filter(|&m| !self.crashed[m] && matches!(self.blocks[m], Block::Recv(_)))
            .collect()
    }

    /// Correctness oracles for a terminal state: census consistency
    /// first (better diagnosis), then exact pair coverage.
    #[must_use]
    pub fn check_terminal(&self) -> Option<Violation> {
        let Some(dead) = &self.finalized else {
            return Some(Violation::CensusDivergence {
                detail: "coordinator terminated without finalizing".to_string(),
            });
        };
        for m in 1..self.p {
            let presumed_dead = dead.contains(&m);
            if presumed_dead && self.results_merged[m] {
                return Some(Violation::CensusDivergence {
                    detail: format!("rank {m} presumed dead but its results were merged"),
                });
            }
            if !presumed_dead && !self.results_merged[m] {
                return Some(Violation::CensusDivergence {
                    detail: format!("rank {m} counted alive but its results were never merged"),
                });
            }
        }
        let mut got = self.merged.clone();
        got.sort_unstable();
        let mut missing = Vec::new();
        let mut duplicated = Vec::new();
        let mut i = 0;
        for a in 0..self.p {
            for b in a..self.p {
                let mut count = 0;
                while i < got.len() && got[i] < (a, b) {
                    // A pair outside the expected universe cannot occur
                    // (every computed pair is a block pair), but count
                    // it as a duplicate rather than silently skipping.
                    duplicated.push(got[i]);
                    i += 1;
                }
                while i < got.len() && got[i] == (a, b) {
                    count += 1;
                    i += 1;
                }
                match count {
                    0 => missing.push((a, b)),
                    1 => {}
                    _ => duplicated.push((a, b)),
                }
            }
        }
        duplicated.extend(got[i..].iter().copied());
        if missing.is_empty() && duplicated.is_empty() {
            None
        } else {
            Some(Violation::Coverage {
                missing,
                duplicated,
            })
        }
    }

    /// Deterministic 64-bit fingerprint of the protocol-relevant state,
    /// for visited-state deduplication. Two states with equal
    /// fingerprints are treated as explored; coverage ledgers are
    /// hashed as sorted multisets because the oracles only compare
    /// multisets. The step counter is deliberately excluded — depth
    /// does not change future behaviour.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::default();
        self.machines.hash(&mut h);
        self.blocks.hash(&mut h);
        self.crashed.hash(&mut h);
        self.chans.hash(&mut h);
        self.dropped.hash(&mut h);
        self.left.hash(&mut h);
        for ledger in [&self.phase1, &self.supp] {
            for per_rank in ledger {
                let mut sorted = per_rank.clone();
                sorted.sort_unstable();
                sorted.hash(&mut h);
            }
        }
        let mut merged = self.merged.clone();
        merged.sort_unstable();
        merged.hash(&mut h);
        self.results_merged.hash(&mut h);
        self.finalized.hash(&mut h);
        h.finish()
    }
}

/// FNV-1a, fixed offset/prime — a deterministic `Hasher` so fingerprints
/// are stable across runs and platforms (unlike `RandomState`).
struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_faults() -> Budgets {
        Budgets {
            crashes: 0,
            timeouts: 0,
            drops: 0,
            dups: 0,
        }
    }

    /// Drive the world by always taking the first enabled action; with
    /// no fault budget this is a fault-free schedule and must cover
    /// every pair exactly once.
    #[test]
    fn fault_free_schedule_reaches_clean_terminal() {
        for p in [1, 2, 3, 4, 5] {
            let mut w = World::new(p, Mutation::None, no_faults());
            while let Some(&a) = w.enabled().first() {
                w.apply(a);
                assert!(w.steps() < 500, "runaway at p={p}");
            }
            assert!(w.terminal(), "p={p} did not terminate");
            assert_eq!(w.check_terminal(), None, "p={p} violated");
        }
    }

    #[test]
    fn fingerprint_distinguishes_and_matches() {
        let a = World::new(3, Mutation::None, no_faults());
        let b = World::new(3, Mutation::None, no_faults());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = World::new(3, Mutation::None, no_faults());
        c.apply(Action::Start { rank: 0 });
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn crash_disables_rank_and_frees_timeouts() {
        let mut w = World::new(
            3,
            Mutation::None,
            Budgets {
                crashes: 1,
                ..no_faults()
            },
        );
        for r in 0..3 {
            w.apply(Action::Start { rank: r });
        }
        w.apply(Action::Crash { rank: 2 });
        let en = w.enabled();
        assert!(!en
            .iter()
            .any(|a| matches!(a, Action::Start { rank } | Action::Deliver { rank } if *rank == 2)));
        // Rank 0 awaits rank 2's (never-sent... actually sent at start)
        // frames; once drained, timeouts on the dead channel are free.
        assert!(en.contains(&Action::Deliver { rank: 0 }));
    }

    #[test]
    fn drop_makes_the_timeout_free() {
        let mut w = World::new(
            2,
            Mutation::None,
            Budgets {
                drops: 1,
                ..no_faults()
            },
        );
        w.apply(Action::Start { rank: 0 });
        w.apply(Action::Start { rank: 1 });
        // p=2: one round; rank 1 waits on rank 0's block frame.
        w.apply(Action::Drop { from: 0, to: 1 });
        assert!(w.enabled().contains(&Action::Timeout { rank: 1 }));
        w.apply(Action::Timeout { rank: 1 });
        // The budgetless world had no spurious timeouts to spend; the
        // drop justified it.
        assert!(w.terminal() || !w.enabled().is_empty());
    }
}
