//! Bounded schedule exploration and failure shrinking.
//!
//! The explorer is a stateful depth-first search over [`World`]
//! states. Every enabled action is tried from every *newly discovered*
//! state; states are deduplicated by [`World::fingerprint`], which is
//! what makes the search tractable — schedules that merely permute
//! commuting actions converge on the same fingerprint and are explored
//! once (the stateful cousin of DPOR's partial-order reduction). The
//! search is exhaustive within the bounds unless the state cap is hit;
//! a capped search falls back to seeded random walks, which probe the
//! deep interleavings the cap excluded and keep the result
//! deterministic for a given seed.
//!
//! A violating trace is shrunk greedily: every action is tentatively
//! removed, the remainder strictly replayed (an action that is no
//! longer enabled invalidates the candidate), and the removal kept if
//! the same violation kind still occurs — repeated until no single
//! removal survives. The result is the minimal replayable
//! [`Schedule`] reported to the user.

use super::world::World;
use super::{Action, Bounds, Schedule, Violation};
use gnet_cluster::protocol::Mutation;
use std::collections::HashSet;

/// Outcome of exploring one (ring size, mutation) configuration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Ring size explored.
    pub ranks: usize,
    /// Mutation under test.
    pub mutation: Mutation,
    /// Distinct states discovered.
    pub states: usize,
    /// Clean terminal states reached.
    pub terminals: usize,
    /// Whether the DFS hit the state cap (random walks then ran).
    pub capped: bool,
    /// Random walks executed after a capped DFS.
    pub walks_run: usize,
    /// First violation found, if any, with its shrunk schedule.
    pub violation: Option<FoundViolation>,
}

/// A violation plus the evidence to reproduce it.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// What went wrong.
    pub violation: Violation,
    /// Minimal replayable schedule exhibiting it.
    pub schedule: Schedule,
    /// Trace length as first found.
    pub original_len: usize,
    /// Trace length after shrinking.
    pub shrunk_len: usize,
}

/// One DFS node: a state, its enabled actions, the next action index
/// to try, and the action that led here (None for the root).
struct Node {
    world: World,
    actions: Vec<Action>,
    next: usize,
    via: Option<Action>,
}

/// Explore one configuration to the given bounds. Deterministic: the
/// same inputs produce the same report, byte for byte.
#[must_use]
pub fn explore(ranks: usize, mutation: Mutation, bounds: &Bounds) -> ExploreReport {
    let mut report = ExploreReport {
        ranks,
        mutation,
        states: 0,
        terminals: 0,
        capped: false,
        walks_run: 0,
        violation: None,
    };
    let root = World::new(ranks, mutation, bounds.budgets);
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(root.fingerprint());
    let actions = root.enabled();
    let mut stack = vec![Node {
        world: root,
        actions,
        next: 0,
        via: None,
    }];
    let mut found: Option<(Violation, Vec<Action>)> = None;

    'dfs: while let Some(depth) = stack.len().checked_sub(1) {
        if stack[depth].next >= stack[depth].actions.len() {
            stack.pop();
            continue;
        }
        let a = stack[depth].actions[stack[depth].next];
        stack[depth].next += 1;
        let mut next = stack[depth].world.clone();
        next.apply(a);
        let path = || -> Vec<Action> {
            stack
                .iter()
                .filter_map(|n| n.via)
                .chain(std::iter::once(a))
                .collect()
        };
        if next.steps() >= bounds.max_steps {
            found = Some((
                Violation::Livelock {
                    steps: next.steps(),
                },
                path(),
            ));
            break 'dfs;
        }
        let enabled = next.enabled();
        if enabled.is_empty() {
            if next.terminal() {
                match next.check_terminal() {
                    Some(v) => {
                        found = Some((v, path()));
                        break 'dfs;
                    }
                    None => report.terminals += 1,
                }
            } else {
                found = Some((
                    Violation::Deadlock {
                        blocked: next.blocked_ranks(),
                    },
                    path(),
                ));
                break 'dfs;
            }
            continue;
        }
        if visited.insert(next.fingerprint()) {
            if visited.len() >= bounds.max_states {
                report.capped = true;
                break 'dfs;
            }
            stack.push(Node {
                world: next,
                actions: enabled,
                next: 0,
                via: Some(a),
            });
        }
    }
    report.states = visited.len();

    if found.is_none() && report.capped {
        let mut rng = SplitMix64::new(
            bounds.seed
                ^ (ranks as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ mutation_ordinal(mutation),
        );
        for _ in 0..bounds.walks {
            report.walks_run += 1;
            if let Some(hit) = random_walk(ranks, mutation, bounds, &mut rng) {
                found = Some(hit);
                break;
            }
        }
    }

    report.violation = found.map(|(violation, trace)| {
        let original_len = trace.len();
        let shrunk = if matches!(violation, Violation::Livelock { .. }) {
            // Livelock traces are *defined* by their length; removal
            // always "fixes" them, so they are reported unshrunk.
            trace
        } else {
            shrink(ranks, mutation, bounds, violation.kind(), trace)
        };
        let shrunk_len = shrunk.len();
        let schedule = Schedule {
            ranks,
            budgets: bounds.budgets,
            mutation,
            livelock_after: matches!(violation, Violation::Livelock { .. })
                .then_some(bounds.max_steps),
            trace: shrunk,
        };
        FoundViolation {
            violation,
            schedule,
            original_len,
            shrunk_len,
        }
    });
    report
}

/// Stable per-mutation stream selector for the walk RNG.
fn mutation_ordinal(m: Mutation) -> u64 {
    match m {
        Mutation::None => 0,
        Mutation::AcceptAnyRound => 1,
        Mutation::DoubleRedistribute => 2,
        Mutation::SkipSupplementBackstop => 3,
    }
}

/// One random schedule from the initial state to termination (or a
/// violation, or the step budget).
fn random_walk(
    ranks: usize,
    mutation: Mutation,
    bounds: &Bounds,
    rng: &mut SplitMix64,
) -> Option<(Violation, Vec<Action>)> {
    let mut w = World::new(ranks, mutation, bounds.budgets);
    let mut trace = Vec::new();
    loop {
        if w.steps() >= bounds.max_steps {
            return Some((Violation::Livelock { steps: w.steps() }, trace));
        }
        let enabled = w.enabled();
        if enabled.is_empty() {
            return if w.terminal() {
                w.check_terminal().map(|v| (v, trace))
            } else {
                Some((
                    Violation::Deadlock {
                        blocked: w.blocked_ranks(),
                    },
                    trace,
                ))
            };
        }
        let a = enabled[rng.below(enabled.len())];
        w.apply(a);
        trace.push(a);
    }
}

/// Greedy delta-debugging: drop one action at a time and replay the
/// remainder *tolerantly* — actions no longer enabled are skipped
/// rather than failing the candidate, so removing a fault action also
/// sheds the whole chain that depended on it. A candidate is adopted
/// when the actions that actually applied still exhibit the same
/// violation kind; the adopted trace is exactly that applied sequence,
/// which is strictly replayable by construction. Repeats until no
/// single removal survives.
fn shrink(
    ranks: usize,
    mutation: Mutation,
    bounds: &Bounds,
    kind: &str,
    trace: Vec<Action>,
) -> Vec<Action> {
    let run = |cand: &[Action]| -> Option<Vec<Action>> {
        let mut w = World::new(ranks, mutation, bounds.budgets);
        let mut applied = Vec::new();
        for &a in cand {
            if w.action_enabled(a) {
                w.apply(a);
                applied.push(a);
            }
        }
        let violation = if w.terminal() {
            w.check_terminal()
        } else if w.enabled().is_empty() {
            Some(Violation::Deadlock {
                blocked: w.blocked_ranks(),
            })
        } else {
            None
        };
        match violation {
            Some(v) if v.kind() == kind => Some(applied),
            _ => None,
        }
    };
    let mut best = run(&trace).unwrap_or(trace);
    loop {
        let mut improved = false;
        for i in 0..best.len() {
            let mut cand = best.clone();
            cand.remove(i);
            if let Some(applied) = run(&cand) {
                best = applied;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// `SplitMix64` — tiny seeded PRNG, good enough for schedule sampling
/// and dependency-free (the vendored `rand` stays out of library code).
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator; equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish index below `n` (modulo bias irrelevant at our n).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        usize::try_from(self.next_u64() % n as u64).expect("modulo result fits usize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut dedup = xs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), xs.len(), "stream should not repeat: {xs:?}");
    }

    #[test]
    fn tiny_ring_explores_clean_and_counts_terminals() {
        let bounds = Bounds {
            ranks: vec![2],
            ..Bounds::quick()
        };
        let report = explore(2, Mutation::None, &bounds);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.capped, "2-rank quick bounds must be exhaustive");
        assert!(report.terminals > 0);
        assert!(report.states > 10);
    }
}
