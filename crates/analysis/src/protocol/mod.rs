//! Model checking for the cluster ring protocol.
//!
//! `gnet-cluster` exposes its ring protocol as a pure step function
//! ([`gnet_cluster::RankMachine`]); this module drives *that exact
//! code* — not a re-model of it — through every schedule a bounded
//! adversary can produce: delivery orders, delayed and duplicated
//! frames, dropped frames, and rank crashes at every protocol step.
//!
//! * [`world`] — the transition system: machines × per-channel FIFO
//!   message pools × fault budgets, plus the correctness oracles
//!   (deadlock, census divergence, exact pair coverage).
//! * [`explore`] — bounded stateful DFS with FNV fingerprint
//!   deduplication (commuting interleavings collapse to one state, the
//!   partial-order reduction that makes exhaustive bounds tractable)
//!   and a seeded random-walk fallback once the state cap is hit.
//! * [`self_check`] — proves the checker catches real bugs: three
//!   historical protocol mutations are injected
//!   ([`Mutation::AcceptAnyRound`], [`Mutation::DoubleRedistribute`],
//!   [`Mutation::SkipSupplementBackstop`]) and each must be detected
//!   with a shrunk, replayable schedule, while the faithful protocol
//!   must explore clean.
//!
//! Failures shrink to a minimal [`Schedule`] string — same UX as the
//! conformance harness's replay specs — e.g.:
//!
//! ```text
//! ranks=4;crashes=1;timeouts=1;drops=1;dups=1;mutation=accept-any-round;trace=s1,t1,s0,d1,...
//! ```
//!
//! which [`replay`] re-executes deterministically.

pub mod explore;
pub mod self_check;
pub mod world;

pub use explore::{explore, ExploreReport, FoundViolation};
pub use gnet_cluster::protocol::Mutation;
pub use self_check::{self_check, SelfCheckEntry, SelfCheckReport};
pub use world::{Budgets, World};

/// Exploration bounds: which ring sizes to check and how much
/// adversarial behaviour the schedule may contain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Ring sizes to explore, each exhaustively (within the caps).
    pub ranks: Vec<usize>,
    /// Fault budgets per schedule.
    pub budgets: Budgets,
    /// Livelock oracle: a single schedule longer than this is reported.
    pub max_steps: usize,
    /// Cap on distinct states per (ranks, mutation) exploration; when
    /// hit, the DFS is truncated and random walks probe the remainder.
    pub max_states: usize,
    /// Random walks to run after a capped DFS.
    pub walks: usize,
    /// Seed for the random-walk schedule generator.
    pub seed: u64,
}

impl Bounds {
    /// PR-gate bounds: small rings, one fault of each kind — minutes of
    /// CI, yet every known mutation class is reachable (see
    /// [`self_check`]).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            ranks: vec![2, 3, 4],
            budgets: Budgets {
                crashes: 1,
                timeouts: 1,
                drops: 1,
                dups: 1,
            },
            max_steps: 200,
            max_states: 250_000,
            walks: 256,
            seed: 0x676e_6574, // "gnet"
        }
    }

    /// Nightly bounds: larger rings and fault budgets. The DFS will hit
    /// the state cap on the big configurations; the seeded random walks
    /// then probe the deep schedules the cap excluded.
    #[must_use]
    pub fn full() -> Self {
        Self {
            ranks: vec![2, 3, 4, 5, 6],
            budgets: Budgets {
                crashes: 2,
                timeouts: 2,
                drops: 2,
                dups: 2,
            },
            max_steps: 400,
            max_states: 1_500_000,
            walks: 4096,
            seed: 0x676e_6574,
        }
    }
}

/// One schedule decision. Rendered as a compact token in schedule
/// strings: `s1` start, `d1` deliver, `t1` timeout, `x1` crash,
/// `D0-1` drop, `u0-1` duplicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Deliver `Event::Start` to a rank (its input block is prepared).
    Start {
        /// Rank starting.
        rank: usize,
    },
    /// Deliver the head frame of the channel `rank` is blocked on.
    Deliver {
        /// Receiving rank.
        rank: usize,
    },
    /// Fire `rank`'s receive timeout (free if the awaited sender is
    /// gone or the frame was dropped; otherwise a budgeted delay).
    Timeout {
        /// Rank whose receive times out.
        rank: usize,
    },
    /// Crash a rank (never rank 0 — coordinator loss is job loss).
    Crash {
        /// Rank to crash.
        rank: usize,
    },
    /// Drop the head frame of channel `from → to`.
    Drop {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
    },
    /// Duplicate the head frame of channel `from → to`.
    Dup {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
    },
}

impl Action {
    /// Compact schedule-string token.
    #[must_use]
    pub fn token(&self) -> String {
        match self {
            Self::Start { rank } => format!("s{rank}"),
            Self::Deliver { rank } => format!("d{rank}"),
            Self::Timeout { rank } => format!("t{rank}"),
            Self::Crash { rank } => format!("x{rank}"),
            Self::Drop { from, to } => format!("D{from}-{to}"),
            Self::Dup { from, to } => format!("u{from}-{to}"),
        }
    }

    /// Parse one token produced by [`Action::token`].
    ///
    /// # Errors
    /// Returns a message when the token is malformed.
    pub fn parse_token(tok: &str) -> Result<Self, String> {
        let bad = || format!("bad schedule token {tok:?}");
        let mut chars = tok.chars();
        let head = chars.next().ok_or_else(bad)?;
        let rest = chars.as_str();
        let rank = |s: &str| s.parse::<usize>().map_err(|_| bad());
        let channel = |s: &str| -> Result<(usize, usize), String> {
            let (f, t) = s.split_once('-').ok_or_else(bad)?;
            Ok((rank(f)?, rank(t)?))
        };
        match head {
            's' => Ok(Self::Start { rank: rank(rest)? }),
            'd' => Ok(Self::Deliver { rank: rank(rest)? }),
            't' => Ok(Self::Timeout { rank: rank(rest)? }),
            'x' => Ok(Self::Crash { rank: rank(rest)? }),
            'D' => channel(rest).map(|(from, to)| Self::Drop { from, to }),
            'u' => channel(rest).map(|(from, to)| Self::Dup { from, to }),
            _ => Err(bad()),
        }
    }
}

/// A protocol property violation found by exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Every live rank is blocked in a bounded receive with an empty
    /// channel and no justification to time out.
    Deadlock {
        /// Ranks stuck in a receive.
        blocked: Vec<usize>,
    },
    /// A single schedule exceeded the step budget without terminating.
    Livelock {
        /// Steps taken when the budget ran out.
        steps: usize,
    },
    /// The merged result is not exactly every unordered block pair once.
    Coverage {
        /// Pairs never merged (lost work).
        missing: Vec<(usize, usize)>,
        /// Pairs merged more than once (double-counted work).
        duplicated: Vec<(usize, usize)>,
    },
    /// The coordinator's dead set disagrees with what it merged.
    CensusDivergence {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl Violation {
    /// Stable kind string (used in reports and shrink equivalence).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Deadlock { .. } => "deadlock",
            Self::Livelock { .. } => "livelock",
            Self::Coverage { .. } => "coverage",
            Self::CensusDivergence { .. } => "census-divergence",
        }
    }

    /// One-line human-readable description.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Deadlock { blocked } => {
                format!("deadlock: ranks {blocked:?} blocked in recv with empty channels")
            }
            Self::Livelock { steps } => {
                format!("livelock: schedule exceeded {steps} steps without terminating")
            }
            Self::Coverage {
                missing,
                duplicated,
            } => format!(
                "coverage: {} block pair(s) lost {missing:?}, {} duplicated {duplicated:?}",
                missing.len(),
                duplicated.len()
            ),
            Self::CensusDivergence { detail } => format!("census divergence: {detail}"),
        }
    }
}

/// A self-contained, replayable schedule: ring size, fault budgets,
/// mutation, and the action trace. Rendered/parsed as a one-line spec
/// (see the module docs for the format).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Ring size.
    pub ranks: usize,
    /// Fault budgets the trace was found under (replay enforces them,
    /// so a spec cannot smuggle in more faults than the exploration
    /// allowed).
    pub budgets: Budgets,
    /// Protocol mutation under test.
    pub mutation: Mutation,
    /// For livelock specs only: declare the violation after this many
    /// steps (livelock has no terminal state to check).
    pub livelock_after: Option<usize>,
    /// The schedule itself.
    pub trace: Vec<Action>,
}

/// Stable name for a mutation, used in schedule specs and reports.
#[must_use]
pub fn mutation_name(m: Mutation) -> &'static str {
    match m {
        Mutation::None => "none",
        Mutation::AcceptAnyRound => "accept-any-round",
        Mutation::DoubleRedistribute => "double-redistribute",
        Mutation::SkipSupplementBackstop => "skip-supplement-backstop",
    }
}

/// Parse a name produced by [`mutation_name`].
///
/// # Errors
/// Returns a message listing the valid names on a mismatch.
pub fn parse_mutation(s: &str) -> Result<Mutation, String> {
    match s {
        "none" => Ok(Mutation::None),
        "accept-any-round" => Ok(Mutation::AcceptAnyRound),
        "double-redistribute" => Ok(Mutation::DoubleRedistribute),
        "skip-supplement-backstop" => Ok(Mutation::SkipSupplementBackstop),
        other => Err(format!(
            "unknown mutation {other:?} (expected none, accept-any-round, \
             double-redistribute, or skip-supplement-backstop)"
        )),
    }
}

impl Schedule {
    /// Render the one-line replay spec.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "ranks={};crashes={};timeouts={};drops={};dups={};mutation={}",
            self.ranks,
            self.budgets.crashes,
            self.budgets.timeouts,
            self.budgets.drops,
            self.budgets.dups,
            mutation_name(self.mutation)
        );
        if let Some(n) = self.livelock_after {
            out.push_str(&format!(";livelock-after={n}"));
        }
        out.push_str(";trace=");
        let toks: Vec<String> = self.trace.iter().map(Action::token).collect();
        out.push_str(&toks.join(","));
        out
    }

    /// Parse a spec produced by [`Schedule::render`].
    ///
    /// # Errors
    /// Returns a message naming the malformed or missing field.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut ranks = None;
        let mut budgets = Budgets {
            crashes: 0,
            timeouts: 0,
            drops: 0,
            dups: 0,
        };
        let mut mutation = Mutation::None;
        let mut livelock_after = None;
        let mut trace = None;
        for part in spec.trim().split(';') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("schedule field {part:?} is not key=value"))?;
            let num = |v: &str| -> Result<usize, String> {
                v.parse().map_err(|_| format!("bad number {v:?} for {key}"))
            };
            match key {
                "ranks" => ranks = Some(num(value)?),
                "crashes" => budgets.crashes = num(value)?,
                "timeouts" => budgets.timeouts = num(value)?,
                "drops" => budgets.drops = num(value)?,
                "dups" => budgets.dups = num(value)?,
                "mutation" => mutation = parse_mutation(value)?,
                "livelock-after" => livelock_after = Some(num(value)?),
                "trace" => {
                    let mut actions = Vec::new();
                    for tok in value.split(',').filter(|t| !t.is_empty()) {
                        actions.push(Action::parse_token(tok)?);
                    }
                    trace = Some(actions);
                }
                other => return Err(format!("unknown schedule field {other:?}")),
            }
        }
        Ok(Self {
            ranks: ranks.ok_or("schedule spec missing ranks=")?,
            budgets,
            mutation,
            livelock_after,
            trace: trace.ok_or("schedule spec missing trace=")?,
        })
    }
}

/// Re-execute a schedule spec deterministically. Returns the violation
/// the schedule exhibits, or `None` if it runs clean (including traces
/// that merely stop mid-protocol with actions still available).
///
/// # Errors
/// Returns a message if an action in the trace is not enabled at its
/// step — the spec does not describe a physically possible schedule.
pub fn replay(schedule: &Schedule) -> Result<Option<Violation>, String> {
    let mut w = World::new(schedule.ranks, schedule.mutation, schedule.budgets);
    for (i, &a) in schedule.trace.iter().enumerate() {
        if !w.action_enabled(a) {
            return Err(format!(
                "replay step {}: action {} is not enabled",
                i + 1,
                a.token()
            ));
        }
        w.apply(a);
        if let Some(after) = schedule.livelock_after {
            if w.steps() >= after {
                return Ok(Some(Violation::Livelock { steps: w.steps() }));
            }
        }
    }
    if w.terminal() {
        Ok(w.check_terminal())
    } else if w.enabled().is_empty() {
        Ok(Some(Violation::Deadlock {
            blocked: w.blocked_ranks(),
        }))
    } else {
        Ok(None)
    }
}

/// Explore the *unmutated* protocol at every ring size in `bounds` and
/// aggregate the per-size reports.
#[must_use]
pub fn check_protocol(bounds: &Bounds) -> ProtocolReport {
    let explorations: Vec<ExploreReport> = bounds
        .ranks
        .iter()
        .map(|&p| explore(p, Mutation::None, bounds))
        .collect();
    let ok = explorations.iter().all(|e| e.violation.is_none());
    ProtocolReport { explorations, ok }
}

/// Aggregated result of [`check_protocol`].
#[derive(Clone, Debug)]
pub struct ProtocolReport {
    /// One exploration per ring size in the bounds.
    pub explorations: Vec<ExploreReport>,
    /// Whether every exploration ran clean.
    pub ok: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_roundtrip() {
        let actions = [
            Action::Start { rank: 3 },
            Action::Deliver { rank: 0 },
            Action::Timeout { rank: 12 },
            Action::Crash { rank: 2 },
            Action::Drop { from: 0, to: 1 },
            Action::Dup { from: 4, to: 0 },
        ];
        for a in actions {
            let parsed = Action::parse_token(&a.token()).expect("token roundtrips");
            assert_eq!(parsed, a);
        }
        assert!(Action::parse_token("z9").is_err());
        assert!(Action::parse_token("D3").is_err());
        assert!(Action::parse_token("").is_err());
    }

    #[test]
    fn schedule_spec_roundtrips() {
        let s = Schedule {
            ranks: 4,
            budgets: Budgets {
                crashes: 1,
                timeouts: 1,
                drops: 0,
                dups: 0,
            },
            mutation: Mutation::AcceptAnyRound,
            livelock_after: None,
            trace: vec![
                Action::Start { rank: 1 },
                Action::Timeout { rank: 1 },
                Action::Start { rank: 0 },
                Action::Deliver { rank: 1 },
            ],
        };
        let spec = s.render();
        assert_eq!(Schedule::parse(&spec).expect("spec roundtrips"), s);
        assert!(spec.contains("mutation=accept-any-round"));
        assert!(spec.ends_with("trace=s1,t1,s0,d1"), "{spec}");
    }

    #[test]
    fn replay_rejects_impossible_schedules() {
        let s = Schedule {
            ranks: 2,
            budgets: Budgets {
                crashes: 0,
                timeouts: 0,
                drops: 0,
                dups: 0,
            },
            mutation: Mutation::None,
            livelock_after: None,
            // Deliver before anything was sent.
            trace: vec![Action::Deliver { rank: 0 }],
        };
        let err = replay(&s).expect_err("impossible schedule must be rejected");
        assert!(err.contains("not enabled"), "{err}");
    }

    #[test]
    fn replay_of_fault_free_terminal_schedule_is_clean() {
        // Drive a 2-rank world to termination by always taking the
        // first enabled action, then replay the recorded trace.
        let budgets = Budgets {
            crashes: 0,
            timeouts: 0,
            drops: 0,
            dups: 0,
        };
        let mut w = World::new(2, Mutation::None, budgets);
        let mut trace = Vec::new();
        while let Some(&a) = w.enabled().first() {
            w.apply(a);
            trace.push(a);
        }
        let s = Schedule {
            ranks: 2,
            budgets,
            mutation: Mutation::None,
            livelock_after: None,
            trace,
        };
        assert_eq!(replay(&s).expect("recorded trace replays"), None);
    }
}
