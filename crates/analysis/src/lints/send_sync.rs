//! `send-sync-audit`: manual `Send`/`Sync` impls are always reported.
//!
//! A hand-written `unsafe impl Send`/`Sync` silently asserts a
//! thread-safety proof the compiler cannot check, and a wrong one is a
//! data race, not a compile error. Unlike the justification lints,
//! *no in-source comment suppresses this one*: every manual impl must
//! be vetted in `analyze.allowlist` with a written reason, so the full
//! inventory of thread-safety assertions lives in one reviewable file
//! (and the stale-entry check retires entries when the impl goes away).

use super::Lint;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// The `send-sync-audit` lint.
pub struct SendSyncAudit;

impl Lint for SendSyncAudit {
    fn name(&self) -> &'static str {
        "send-sync-audit"
    }

    fn description(&self) -> &'static str {
        "manual Send/Sync impls must be vetted in the allowlist with a reason"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/") && rel.contains("/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test || !line.code.contains("impl") {
                continue;
            }
            for marker in ["Send", "Sync"] {
                // `unsafe impl Send for X`, `unsafe impl<T> Sync for X<T>`:
                // after `impl` (plus optional generics) the trait name
                // appears followed by ` for `.
                if let Some(pos) = line.code.find("impl") {
                    let tail = &line.code[pos..];
                    if tail.contains(&format!(" {marker} for "))
                        || tail.contains(&format!(">{marker} for "))
                        || tail.contains(&format!("> {marker} for "))
                    {
                        out.push(Diagnostic::new(
                            self.name(),
                            &file.rel,
                            idx + 1,
                            format!(
                                "manual `{marker}` impl asserts thread safety the compiler \
                                 cannot verify; vet it in analyze.allowlist with a reason"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::scan_str;
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let file = scan_str("crates/parallel/src/scheduler.rs", text);
        let mut out = Vec::new();
        SendSyncAudit.check(&file, &mut out);
        out
    }

    #[test]
    fn manual_send_and_sync_impls_flagged() {
        let d = run("unsafe impl Send for TilePtr {}\nunsafe impl Sync for TilePtr {}\n");
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("Send"), "{}", d[0].message);
        assert!(d[1].message.contains("Sync"), "{}", d[1].message);
    }

    #[test]
    fn generic_impls_flagged() {
        let d = run("unsafe impl<T: Copy> Send for Shared<T> {}\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn comment_does_not_suppress() {
        // Unlike unsafe-justified, only the allowlist may vet these.
        let d = run("// safety: raw pointer never aliased\nunsafe impl Send for P {}\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ordinary_impls_and_bounds_not_flagged() {
        let text = "impl Sender for X {}\n\
                    fn spawn<T: Send + 'static>(t: T) {}\n\
                    impl<T> Grid<T> where T: Sync {}\n";
        assert!(run(text).is_empty(), "{:?}", run(text));
    }

    #[test]
    fn test_code_exempt() {
        let d = run("#[cfg(test)]\nmod t {\n  unsafe impl Send for Fake {}\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
