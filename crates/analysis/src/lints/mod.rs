//! The lint rules and the workspace walker that applies them.
//!
//! Each lint declares which workspace-relative paths it applies to; the
//! walker scans every `crates/*/src/**/*.rs` file once (skipping
//! `tests/`, `benches/` and `examples/` directories outright, and
//! `#[cfg(test)]` regions via [`crate::source`]) and offers each file to
//! each lint.

mod casts;
mod float_eq;
mod ordering;
mod send_sync;
mod unsafe_justified;
mod unwrap;

pub use casts::KernelCast;
pub use float_eq::FloatEq;
pub use ordering::{AtomicOrdering, OrderingJustified};
pub use send_sync::SendSyncAudit;
pub use unsafe_justified::UnsafeJustified;
pub use unwrap::NoUnwrap;

use crate::allowlist::Allowlist;
use crate::diagnostics::{Diagnostic, Report};
use crate::source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// A single lint rule.
pub trait Lint {
    /// Stable name used in diagnostics and the allowlist.
    fn name(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// Whether the rule applies to this workspace-relative path.
    fn applies(&self, rel: &str) -> bool;
    /// Scan one file, appending findings to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every lint, in reporting order.
#[must_use]
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(NoUnwrap),
        Box::new(KernelCast),
        Box::new(OrderingJustified),
        Box::new(AtomicOrdering),
        Box::new(FloatEq),
        Box::new(UnsafeJustified),
        Box::new(SendSyncAudit),
    ]
}

/// Library crates whose non-test code must not `unwrap()`.
pub(crate) const LIBRARY_CRATES: [&str; 10] = [
    "crates/mi",
    "crates/parallel",
    "crates/permute",
    "crates/bspline",
    "crates/core",
    "crates/cluster",
    "crates/simd",
    "crates/analysis",
    "crates/trace",
    "crates/fault",
];

/// Crates whose code is statistical: float `==` is forbidden there.
pub(crate) const STATISTICAL_CRATES: [&str; 7] = [
    "crates/mi",
    "crates/bspline",
    "crates/expr",
    "crates/permute",
    "crates/core",
    "crates/graph",
    "crates/simd",
];

pub(crate) fn under_any(rel: &str, crates: &[&str]) -> bool {
    crates.iter().any(|c| rel.starts_with(&format!("{c}/src/")))
}

/// Collect the `.rs` files under `<root>/crates/*/src`, sorted, skipping
/// `tests/`, `benches/` and `examples/` directories.
///
/// # Errors
/// Propagates directory-walk I/O errors.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name.as_str(), "tests" | "benches" | "examples") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run every lint over the workspace at `root`, filtering findings
/// through `allow`.
///
/// # Errors
/// Propagates file-read and directory-walk I/O errors.
pub fn run_lints(root: &Path, allow: &Allowlist) -> io::Result<Report> {
    let lints = all_lints();
    let mut report = Report::default();
    let mut scanned: Vec<(String, usize)> = Vec::new();
    for path in workspace_sources(root)? {
        let file = SourceFile::load(root, &path)?;
        report.files_scanned += 1;
        scanned.push((file.rel.clone(), file.lines.len()));
        let mut found = Vec::new();
        for lint in &lints {
            if lint.applies(&file.rel) {
                lint.check(&file, &mut found);
            }
        }
        for d in found {
            if allow.permits(&d) {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(d);
            }
        }
    }
    report.stale = allow
        .stale(&scanned)
        .into_iter()
        .map(|e| {
            Diagnostic::new(
                &e.lint,
                &e.path,
                e.line.unwrap_or(0),
                format!(
                    "allowlist entry no longer matches any source line \
                     (reason on file: {:?}); delete or re-pin it",
                    e.reason
                ),
            )
        })
        .collect();
    report.sort();
    Ok(report)
}

/// Shared helper: does this line, or the contiguous comment block
/// directly above it, carry `marker`? Used for `ordering:` and
/// `cast-ok:` justifications, which may span several comment lines.
pub(crate) fn justified(file: &SourceFile, line_idx: usize, marker: &str) -> bool {
    if file.lines[line_idx].comment.contains(marker) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        if line.code.trim().is_empty() && !line.comment.is_empty() {
            if line.comment.contains(marker) {
                return true;
            }
        } else {
            return false;
        }
    }
    false
}

#[cfg(test)]
pub(crate) fn scan_str(rel: &str, text: &str) -> SourceFile {
    SourceFile::scan(PathBuf::from(rel), rel.to_string(), text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_helpers_match_src_paths_only() {
        assert!(under_any("crates/mi/src/gene.rs", &LIBRARY_CRATES));
        assert!(!under_any("crates/mi/tests/x.rs", &LIBRARY_CRATES));
        assert!(!under_any("crates/cli/src/commands.rs", &LIBRARY_CRATES));
        assert!(under_any(
            "crates/graph/src/metrics.rs",
            &STATISTICAL_CRATES
        ));
    }

    #[test]
    fn all_lints_have_distinct_names() {
        let names: Vec<_> = all_lints().iter().map(|l| l.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
