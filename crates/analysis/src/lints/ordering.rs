//! `ordering-justified`: every atomic memory-ordering use needs an
//! `// ordering:` justification.
//!
//! The scheduler's dynamic counter and the cluster's traffic statistics
//! are the only lock-free pieces of the pipeline; each is correct for a
//! reason that is invisible at the use site (the scoped-thread join
//! provides the happens-before edge, the counters are telemetry). The
//! lint makes that reasoning mandatory: any `Ordering::Relaxed`,
//! `Acquire`, `Release`, `AcqRel` or `SeqCst` argument must carry an
//! `// ordering: <why this ordering suffices>` comment on the same line
//! or the line above.

use super::{justified, Lint};
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

const ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// The `ordering-justified` lint.
pub struct OrderingJustified;

impl Lint for OrderingJustified {
    fn name(&self) -> &'static str {
        "ordering-justified"
    }

    fn description(&self) -> &'static str {
        "atomic Ordering arguments need an `// ordering:` justification"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/") && rel.contains("/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            // `cmp::Ordering` variants (Less/Equal/Greater) never collide
            // with these names, so a plain substring check is exact.
            let Some(which) = ORDERINGS.iter().find(|o| line.code.contains(**o)) else {
                continue;
            };
            if justified(file, idx, "ordering:") {
                continue;
            }
            out.push(Diagnostic::new(
                self.name(),
                &file.rel,
                idx + 1,
                format!(
                    "`{which}` without justification; add \
                     `// ordering: <why this ordering suffices>`"
                ),
            ));
        }
    }
}

/// The `atomic-ordering` lint: the hard-mode extension of
/// [`OrderingJustified`], guarding the two ways atomics go wrong
/// *despite* a justification comment.
///
/// * `Ordering::SeqCst` needs its own `// seqcst-ok:` marker on top of
///   the generic `// ordering:` one. Sequential consistency is the
///   expensive default people reach for when unsure; requiring a
///   separate statement of *why weaker orderings are insufficient*
///   turns "unsure" into either a real argument or a weaker ordering.
/// * `use … Ordering::{Relaxed, …}` (importing the variants bare) is
///   flagged outright: bare `Relaxed`/`Acquire` call sites no longer
///   contain the `Ordering::` substring the justification lint keys
///   on, so variant imports would quietly blind it.
pub struct AtomicOrdering;

impl Lint for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "SeqCst needs `// seqcst-ok:`; atomic Ordering variants must not be imported bare"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/") && rel.contains("/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if line.code.contains("Ordering::SeqCst") && !justified(file, idx, "seqcst-ok:") {
                out.push(Diagnostic::new(
                    self.name(),
                    &file.rel,
                    idx + 1,
                    "`SeqCst` without `// seqcst-ok: <why weaker orderings are \
                     insufficient>`; prefer the weakest ordering that is still correct",
                ));
            }
            let stmt = line.code.trim_start();
            let is_use = stmt.starts_with("use ") || stmt.starts_with("pub use ");
            let imports_variants = is_use
                && (ORDERINGS.iter().any(|o| {
                    [",", ";", " "]
                        .iter()
                        .any(|sep| line.code.contains(&format!("{o}{sep}")))
                        || line.code.trim_end().ends_with(o)
                }) || line.code.contains("Ordering::{"));
            if imports_variants {
                out.push(Diagnostic::new(
                    self.name(),
                    &file.rel,
                    idx + 1,
                    "atomic `Ordering` variants imported bare; import `Ordering` itself \
                     so every use site names `Ordering::<variant>` and stays lintable",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::scan_str;
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let file = scan_str("crates/parallel/src/scheduler.rs", text);
        let mut out = Vec::new();
        OrderingJustified.check(&file, &mut out);
        out
    }

    fn run_atomic(text: &str) -> Vec<Diagnostic> {
        let file = scan_str("crates/parallel/src/scheduler.rs", text);
        let mut out = Vec::new();
        AtomicOrdering.check(&file, &mut out);
        out
    }

    #[test]
    fn seqcst_needs_the_stronger_marker() {
        // A generic ordering justification is not enough for SeqCst…
        let d = run_atomic(
            "// ordering: publishes the flag to all threads\n\
             done.store(true, Ordering::SeqCst);\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("seqcst-ok"), "{}", d[0].message);
        // …the dedicated marker is.
        let ok = run_atomic(
            "// seqcst-ok: the flag orders against both counters at once\n\
             done.store(true, Ordering::SeqCst);\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn weaker_orderings_not_double_flagged() {
        let d = run_atomic("n.load(Ordering::Acquire);\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bare_variant_imports_flagged() {
        for text in [
            "use std::sync::atomic::Ordering::Relaxed;\n",
            "use std::sync::atomic::Ordering::{Acquire, Release};\n",
        ] {
            let d = run_atomic(text);
            assert_eq!(d.len(), 1, "{text:?} -> {d:?}");
            assert!(d[0].message.contains("bare"), "{}", d[0].message);
        }
        let ok = run_atomic("use std::sync::atomic::{AtomicUsize, Ordering};\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn unjustified_relaxed_flagged() {
        let d = run("let i = next.fetch_add(1, Ordering::Relaxed);\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Relaxed"), "{}", d[0].message);
    }

    #[test]
    fn justification_on_same_line_or_above_accepted() {
        let same =
            "let i = n.fetch_add(1, Ordering::Relaxed); // ordering: counter only claims indices\n";
        assert!(run(same).is_empty());
        let above = "// ordering: join provides the happens-before edge\nlet v = n.load(Ordering::Relaxed);\n";
        assert!(run(above).is_empty());
    }

    #[test]
    fn cmp_ordering_not_flagged() {
        let d = run("a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n  fn f(n: &A) { n.load(Ordering::SeqCst); }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
