//! `float-eq`: no float `==`/`!=` in statistical code.
//!
//! MI values, entropies and scores come out of order-sensitive float
//! accumulation; exact equality on them is either a latent bug or an
//! exact-representation argument that belongs in a comment next to an
//! explicit tolerance (or a sign test like `<= 0.0` for provably
//! non-negative quantities). The lint flags any `==`/`!=` whose operand
//! is recognisably floating point: a float literal (`0.0`, `1e-9`,
//! `2f64`) or an `as f32`/`as f64` cast result.

use super::{under_any, Lint, STATISTICAL_CRATES};
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// The `float-eq` lint.
pub struct FloatEq;

impl Lint for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "statistical code must not compare floats with == or !="
    }

    fn applies(&self, rel: &str) -> bool {
        under_any(rel, &STATISTICAL_CRATES)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for op_at in equality_ops(&line.code) {
                let lhs = operand_before(&line.code[..op_at]);
                let rhs = operand_after(&line.code[op_at + 2..]);
                if is_floaty(lhs) || is_floaty(rhs) {
                    out.push(Diagnostic::new(
                        self.name(),
                        &file.rel,
                        idx + 1,
                        "float equality comparison in statistical code; use a sign \
                         test or an explicit tolerance",
                    ));
                }
            }
        }
    }
}

/// Byte offsets of `==`/`!=` operators (excluding `<=`, `>=`, `===`…).
fn equality_ops(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for i in 0..bytes.len().saturating_sub(1) {
        let pair = &bytes[i..i + 2];
        let eq = pair == b"=="
            && !matches!(
                bytes.get(i.wrapping_sub(1)),
                Some(b'<' | b'>' | b'=' | b'!')
            )
            && bytes.get(i + 2) != Some(&b'=');
        let ne = pair == b"!=" && bytes.get(i + 2) != Some(&b'=');
        if eq || ne {
            out.push(i);
        }
    }
    out
}

/// The token-ish operand text to the left of an operator.
fn operand_before(head: &str) -> &str {
    let head = head.trim_end();
    let start = head
        .rfind(['(', ',', '{', '[', '&', '|', '=', ';'])
        .map_or(0, |p| p + 1);
    head[start..].trim()
}

/// The token-ish operand text to the right of an operator.
fn operand_after(tail: &str) -> &str {
    let tail = tail.trim_start();
    let end = tail
        .find([')', ',', '{', '&', '|', ';'])
        .unwrap_or(tail.len());
    tail[..end].trim()
}

/// Whether operand text is recognisably a float expression.
fn is_floaty(op: &str) -> bool {
    if op.contains("as f32") || op.contains("as f64") {
        return true;
    }
    op.split(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .any(is_float_literal)
}

fn is_float_literal(tok: &str) -> bool {
    let tok = tok.trim_start_matches('-');
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    if tok.starts_with("0x") || tok.starts_with("0b") || tok.starts_with("0o") {
        return false;
    }
    // An explicit `f32`/`f64` suffix makes any numeric literal a float.
    if tok.ends_with("f32") || tok.ends_with("f64") {
        return tok[..tok.len() - 3]
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '_'));
    }
    let tok = tok.trim_end_matches('_');
    // `1.`, `1.5`, `1e-9`, `2.5e3` — but not integers or integer-typed
    // literals like `10u32`.
    let has_dot = tok.contains('.');
    let has_exp = tok.contains('e') || tok.contains('E');
    (has_dot || has_exp)
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '_'))
}

#[cfg(test)]
mod tests {
    use super::super::scan_str;
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let file = scan_str("crates/expr/src/stats.rs", text);
        let mut out = Vec::new();
        FloatEq.check(&file, &mut out);
        out
    }

    #[test]
    fn float_literal_comparison_flagged() {
        assert_eq!(run("if var == 0.0 { return; }\n").len(), 1);
        assert_eq!(run("if 1e-9 != tol { x(); }\n").len(), 1);
        assert_eq!(run("let b = (n as f64) == total;\n").len(), 1);
    }

    #[test]
    fn integer_and_string_comparisons_pass() {
        assert!(run("if count == 0 { return; }\n").is_empty());
        assert!(run("if name == \"dynamic\" { x(); }\n").is_empty());
        assert!(run("if bins == order { x(); }\n").is_empty());
    }

    #[test]
    fn relational_operators_pass() {
        assert!(run("if var <= 0.0 || x >= 1.0 { return; }\n").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let d = run("#[cfg(test)]\nmod t {\n  fn f(x: f64) { assert!(x == 0.0); }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn float_suffix_literals_flagged_integer_suffixes_pass() {
        assert_eq!(run("if x == 1f64 { y(); }\n").len(), 1);
        assert!(run("if x == 10u32 { y(); }\n").is_empty());
    }
}
