//! `no-unwrap`: library code must not panic through bare `unwrap()` or
//! an undocumented `expect`.
//!
//! In the listed library crates (see [`super::LIBRARY_CRATES`]) the
//! non-test code paths feed multi-hour whole-genome runs; a panic there
//! throws away the work. Errors must either propagate as `Result` or
//! panic through `.expect("…")` with a message long enough to state the
//! violated invariant (at least [`MIN_EXPECT_CHARS`] characters).

use super::{under_any, Lint, LIBRARY_CRATES};
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// Minimum length of an `expect` message that counts as documentation.
pub const MIN_EXPECT_CHARS: usize = 8;

/// The `no-unwrap` lint.
pub struct NoUnwrap;

impl Lint for NoUnwrap {
    fn name(&self) -> &'static str {
        "no-unwrap"
    }

    fn description(&self) -> &'static str {
        "library code must propagate errors or use a documented expect()"
    }

    fn applies(&self, rel: &str) -> bool {
        under_any(rel, &LIBRARY_CRATES)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if line.code.contains(".unwrap()") {
                out.push(Diagnostic::new(
                    self.name(),
                    &file.rel,
                    idx + 1,
                    "bare `.unwrap()` in library code; propagate the error or \
                     use `.expect(\"<invariant>\")`",
                ));
            }
            let mut search = 0usize;
            while let Some(pos) = line.code[search..].find(".expect(") {
                let at = search + pos;
                search = at + ".expect(".len();
                if !expect_is_documented(file, idx, at) {
                    out.push(Diagnostic::new(
                        self.name(),
                        &file.rel,
                        idx + 1,
                        format!(
                            "`.expect()` message shorter than {MIN_EXPECT_CHARS} chars; \
                             state the invariant that makes the panic impossible"
                        ),
                    ));
                }
            }
        }
    }
}

/// An expect call is documented when its argument is a string literal of
/// at least [`MIN_EXPECT_CHARS`] characters. rustfmt may wrap the literal
/// onto the next line, so that one line of lookahead is checked too.
fn expect_is_documented(file: &SourceFile, line_idx: usize, code_at: usize) -> bool {
    let raw = &file.lines[line_idx].raw;
    // `code` blanks string contents but keeps all delimiters, so byte
    // offsets line up with `raw` for ASCII source; fall back to a plain
    // search when the line holds multi-byte characters.
    let tail = if raw.is_char_boundary(code_at) {
        &raw[code_at..]
    } else {
        raw.as_str()
    };
    if let Some(len) = literal_len_after_expect(tail) {
        return len >= MIN_EXPECT_CHARS;
    }
    // Literal wrapped to the following line.
    if tail.trim_end().ends_with(".expect(") {
        if let Some(next) = file.lines.get(line_idx + 1) {
            if let Some(len) = leading_literal_len(next.raw.trim_start()) {
                return len >= MIN_EXPECT_CHARS;
            }
        }
    }
    // Non-literal argument (e.g. a formatted message): treat as
    // documented; the formatting call carries the explanation.
    !tail.contains(".expect(\"")
}

/// Length of the string literal directly inside `.expect("…")`, if the
/// argument is a literal starting on this line.
fn literal_len_after_expect(tail: &str) -> Option<usize> {
    let rest = tail.strip_prefix(".expect(")?;
    leading_literal_len(rest)
}

fn leading_literal_len(s: &str) -> Option<usize> {
    let rest = s.strip_prefix('"')?;
    let mut len = 0usize;
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(len),
            '\\' => {
                let _ = chars.next();
                len += 1;
            }
            _ => len += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::scan_str;
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let file = scan_str("crates/core/src/x.rs", text);
        let mut out = Vec::new();
        NoUnwrap.check(&file, &mut out);
        out
    }

    #[test]
    fn bare_unwrap_flagged() {
        let d = run("fn f() { y().unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("bare"), "{}", d[0].message);
    }

    #[test]
    fn unwrap_inside_cfg_test_ignored() {
        let d = run("#[cfg(test)]\nmod tests {\n  fn f() { y().unwrap(); }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn documented_expect_passes_short_expect_fails() {
        let d = run("fn f() { a().expect(\"tile indices validated at build\"); }\n");
        assert!(d.is_empty(), "{d:?}");
        let d = run("fn f() { a().expect(\"oops\"); }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn wrapped_expect_literal_checked_on_next_line() {
        let d =
            run("fn f() {\n  a().expect(\n    \"rank table filled by the loop above\",\n  );\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let d = run(
            "fn f() { a().unwrap_or(0); b().unwrap_or_else(|| 1); c().unwrap_or_default(); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_in_string_or_comment_ignored() {
        let d = run("fn f() { let s = \".unwrap()\"; } // never .unwrap() here\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
