//! `kernel-cast`: `as` casts in kernel hot paths need a `// cast-ok:`
//! justification.
//!
//! The MI kernels, the B-spline weight generators and the SIMD layer are
//! where index arithmetic meets float accumulation; a silently
//! truncating or precision-losing `as` there corrupts results instead of
//! crashing. Every cast in those files must carry a `// cast-ok: <why>`
//! comment on the same line or the line above, stating why the value
//! fits.

use super::{justified, Lint};
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// Primitive targets a flagged `as` cast can have.
const CAST_TARGETS: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// The `kernel-cast` lint.
pub struct KernelCast;

impl Lint for KernelCast {
    fn name(&self) -> &'static str {
        "kernel-cast"
    }

    fn description(&self) -> &'static str {
        "as-casts in kernel hot paths need a `// cast-ok:` justification"
    }

    fn applies(&self, rel: &str) -> bool {
        if rel.starts_with("crates/bspline/src/") || rel.starts_with("crates/simd/src/") {
            return true;
        }
        rel.starts_with("crates/mi/src/")
            && rel.rsplit('/').next().is_some_and(|f| f.contains("kernel"))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let casts = cast_targets(&line.code);
            if casts.is_empty() || justified(file, idx, "cast-ok:") {
                continue;
            }
            for target in casts {
                out.push(Diagnostic::new(
                    self.name(),
                    &file.rel,
                    idx + 1,
                    format!(
                        "bare `as {target}` in a kernel hot path; add \
                         `// cast-ok: <why the value fits>` or use a checked conversion"
                    ),
                ));
            }
        }
    }
}

/// The primitive targets of every `as` cast on a code line.
fn cast_targets(code: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    let tokens: Vec<&str> = code.split_whitespace().collect();
    for window in tokens.windows(2) {
        if window[0] == "as" {
            let tail = window[1].trim_end_matches([')', ']', '}', ',', ';', '.']);
            if let Some(t) = CAST_TARGETS.iter().find(|t| **t == tail) {
                out.push(*t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::scan_str;
    use super::*;

    fn run(rel: &str, text: &str) -> Vec<Diagnostic> {
        let file = scan_str(rel, text);
        let mut out = Vec::new();
        KernelCast.check(&file, &mut out);
        out
    }

    #[test]
    fn bare_cast_flagged_in_kernel_file() {
        let d = run(
            "crates/mi/src/vector_kernel.rs",
            "fn f(n: usize) -> u32 { n as u32 }\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("as u32"), "{}", d[0].message);
    }

    #[test]
    fn cast_ok_comment_suppresses_same_line_and_line_above() {
        let same = "fn f(n: usize) -> u32 { n as u32 } // cast-ok: n < genes <= u32::MAX\n";
        assert!(run("crates/simd/src/lanes.rs", same).is_empty());
        let above =
            "// cast-ok: bins <= 64 so the product fits\nfn g(b: usize) -> f32 { b as f32 }\n";
        assert!(run("crates/bspline/src/basis.rs", above).is_empty());
    }

    #[test]
    fn scope_is_kernels_bspline_and_simd_only() {
        assert!(KernelCast.applies("crates/mi/src/sparse_kernel.rs"));
        assert!(KernelCast.applies("crates/bspline/src/weights.rs"));
        assert!(KernelCast.applies("crates/simd/src/slice_ops.rs"));
        assert!(!KernelCast.applies("crates/mi/src/gene.rs"));
        assert!(!KernelCast.applies("crates/core/src/pipeline.rs"));
    }

    #[test]
    fn trailing_punctuation_does_not_hide_the_target() {
        let d = run(
            "crates/simd/src/lanes.rs",
            "fn f(n: usize) { g(n as u32); h(n as f64, 1); }\n",
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn as_in_use_statement_not_flagged() {
        let d = run(
            "crates/simd/src/lanes.rs",
            "use crate::lanes as simd_lanes;\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
