//! `unsafe-justified`: every `unsafe` keyword needs a `// safety:`
//! justification, and every per-crate `#![allow(unsafe_code)]` opt-in
//! needs one too.
//!
//! The workspace denies `unsafe_code` outright (`[workspace.lints.rust]`
//! in the root manifest); a crate that genuinely needs intrinsics — the
//! planned `std::arch` SIMD kernel, the TCP transport's buffer tricks —
//! opts back in locally with `#![allow(unsafe_code)]`. This lint is the
//! toll on that gate: the opt-in attribute and every `unsafe` block,
//! `unsafe fn`, `unsafe impl` and `unsafe trait` behind it must carry a
//! `// safety: <why the invariants hold>` comment on the same line or
//! the contiguous comment block above (clippy's `// SAFETY:` spelling is
//! accepted — the marker match is case-insensitive).

use super::Lint;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;

/// The `unsafe-justified` lint.
pub struct UnsafeJustified;

impl Lint for UnsafeJustified {
    fn name(&self) -> &'static str {
        "unsafe-justified"
    }

    fn description(&self) -> &'static str {
        "`unsafe` code and `#![allow(unsafe_code)]` opt-ins need a `// safety:` justification"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/") && rel.contains("/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if contains_word(&line.code, "unsafe") && !safety_justified(file, idx) {
                out.push(Diagnostic::new(
                    self.name(),
                    &file.rel,
                    idx + 1,
                    "`unsafe` without a justification; add \
                     `// safety: <why the invariants hold>`",
                ));
            }
            if line.code.contains("allow(unsafe_code)") && !safety_justified(file, idx) {
                out.push(Diagnostic::new(
                    self.name(),
                    &file.rel,
                    idx + 1,
                    "`allow(unsafe_code)` opt-in without a rationale; add \
                     `// safety: <why this crate needs unsafe at all>`",
                ));
            }
        }
    }
}

/// Case-insensitive version of [`super::justified`] for the `safety:`
/// marker, so both this repo's `// safety:` and clippy's `// SAFETY:`
/// count.
pub(crate) fn safety_justified(file: &SourceFile, line_idx: usize) -> bool {
    let has = |comment: &str| comment.to_ascii_lowercase().contains("safety:");
    if has(&file.lines[line_idx].comment) {
        return true;
    }
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        if line.code.trim().is_empty() && !line.comment.is_empty() {
            if has(&line.comment) {
                return true;
            }
        } else {
            return false;
        }
    }
    false
}

/// Whether `code` contains `word` delimited by non-identifier chars —
/// `unsafe {` matches, the `unsafe_code` inside the allow attribute
/// does not.
pub(crate) fn contains_word(code: &str, word: &str) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut search = 0;
    while let Some(pos) = code[search..].find(word) {
        let at = search + pos;
        let before_ok = at == 0 || !code[..at].chars().next_back().is_some_and(ident);
        let after_ok = !code[at + word.len()..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        search = at + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::scan_str;
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let file = scan_str("crates/simd/src/lanes.rs", text);
        let mut out = Vec::new();
        UnsafeJustified.check(&file, &mut out);
        out
    }

    #[test]
    fn bare_unsafe_block_flagged() {
        let d = run("let v = unsafe { _mm512_loadu_ps(p) };\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("safety:"), "{}", d[0].message);
    }

    #[test]
    fn justified_unsafe_accepted_case_insensitively() {
        let lower = "// safety: p is 64-byte aligned by the tile allocator\n\
                     let v = unsafe { _mm512_load_ps(p) };\n";
        assert!(run(lower).is_empty());
        let upper = "// SAFETY: index < lanes checked above\n\
                     let v = unsafe { *p.add(i) };\n";
        assert!(run(upper).is_empty());
    }

    #[test]
    fn allow_attribute_needs_its_own_rationale() {
        let d = run("#![allow(unsafe_code)]\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("opt-in"), "{}", d[0].message);
        let ok = run("// safety: this crate wraps AVX-512 intrinsics\n#![allow(unsafe_code)]\n");
        assert!(ok.is_empty());
    }

    #[test]
    fn identifier_containing_unsafe_not_flagged() {
        assert!(run("let unsafe_count = 0; not_unsafe();\n").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n  fn f() { unsafe { core(); } }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn word_matching_is_exact() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(contains_word("pub unsafe fn f()", "unsafe"));
        assert!(!contains_word("allow(unsafe_code)", "unsafe"));
        assert!(!contains_word("my_unsafe", "unsafe"));
    }
}
