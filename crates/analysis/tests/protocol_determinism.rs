//! Property: the protocol checker is a pure function of its bounds.
//!
//! The nightly JSON artifact is diffed across runs and the regression
//! gate replays shrunk schedules from old reports, so the whole
//! pipeline leans on `gnet analyze` being deterministic: the same seed
//! and bounds must yield a byte-identical JSON document — DFS order,
//! fingerprint dedup, random-walk fallback, shrinking and rendering
//! included. Failing case seeds persist to `proptest-regressions/`
//! (committed) and replay before fresh cases on every subsequent run.

use gnet_analysis::protocol::{self, Bounds, Budgets};
use gnet_analysis::report::{validate_json, AnalyzeDocument};
use proptest::prelude::*;

/// Small randomized bounds: rings of 2 (optionally 3) ranks with fault
/// budgets of at most one each keep a single case well under a second
/// while still exercising the DFS, the walk fallback path being off or
/// on, and every mutation in the self-check.
fn arbitrary_bounds() -> impl Strategy<Value = Bounds> {
    (
        any::<u64>(),
        any::<bool>(),
        (0usize..=1, 0usize..=1, 0usize..=1, 0usize..=1),
    )
        .prop_map(|(seed, three, (crashes, timeouts, drops, dups))| Bounds {
            ranks: if three { vec![2, 3] } else { vec![2] },
            budgets: Budgets {
                crashes,
                timeouts,
                drops,
                dups,
            },
            max_steps: 120,
            max_states: 60_000,
            walks: 16,
            seed,
        })
}

fn document(bounds: &Bounds) -> String {
    let doc = AnalyzeDocument {
        lints: gnet_analysis::diagnostics::Report::default(),
        concurrency: None,
        protocol: Some(protocol::check_protocol(bounds)),
        self_check: Some(protocol::self_check(bounds)),
    };
    doc.render_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8)
        .with_persistence("proptest-regressions/protocol_determinism.txt"))]

    #[test]
    fn same_seed_and_bounds_give_a_byte_identical_report(bounds in arbitrary_bounds()) {
        let first = document(&bounds);
        let second = document(&bounds);
        prop_assert_eq!(&first, &second, "checker output must be deterministic");
        validate_json(&first).expect("document validates against its own schema");
    }
}
