//! Regression test for the scheduler contract: every [`SchedulerPolicy`]
//! produces a bitwise-identical MI matrix on a 64-gene fixture.
//!
//! This is the satellite of the interleaving harness: a fixed-size,
//! fixed-seed fixture run on every `cargo test`, so a scheduler change
//! that silently breaks the mergeable-accumulator contract fails CI
//! even when nobody runs `gnet analyze --concurrency`.

use gnet_analysis::{check_determinism, InterleaveConfig};
use gnet_parallel::SchedulerPolicy;

fn fixture() -> InterleaveConfig {
    InterleaveConfig {
        genes: 64,
        samples: 40,
        tile: 16,
        threads: vec![1, 2, 4, 8],
        runs: 1,
        seed: 0x0064_6464,
        max_delay_us: 25,
    }
}

#[test]
fn all_policies_bitwise_identical_on_64_gene_fixture() {
    let outcome = check_determinism(&fixture()).expect("all policies match the reference");
    assert_eq!(outcome.pairs, 64 * 63 / 2, "full upper triangle verified");
    assert_eq!(
        outcome.checks,
        SchedulerPolicy::ALL.len() * 4,
        "every policy ran at every thread count"
    );
}

#[test]
fn repeated_sweeps_stay_deterministic_across_seeds() {
    for seed in [1u64, 0xdead_beef, u64::MAX / 3] {
        let cfg = InterleaveConfig {
            seed,
            runs: 1,
            ..fixture()
        };
        check_determinism(&cfg).expect("determinism is seed-independent");
    }
}

#[test]
fn ragged_tiling_does_not_lose_pairs() {
    // 64 genes with a tile edge that does not divide evenly: the tile
    // space ends in ragged diagonal tiles, the historical source of
    // duplicated/lost pairs in block schedulers.
    let cfg = InterleaveConfig {
        tile: 13,
        ..fixture()
    };
    let outcome = check_determinism(&cfg).expect("ragged tiles still partition the pair set");
    assert_eq!(outcome.pairs, 64 * 63 / 2);
}
