//! The lints dogfood their own workspace: this repository must scan
//! clean with an *empty* allowlist.
//!
//! In particular this pins the satellite guarantees: no `unwrap()` and
//! no undocumented `expect()` in the non-test code of `crates/core` and
//! `crates/cluster`, justified atomic orderings everywhere, documented
//! casts in the kernels, and no float `==` in statistical code.

use gnet_analysis::{run_lints, Allowlist};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists two levels above this crate")
}

#[test]
fn workspace_is_lint_clean_with_empty_allowlist() {
    let report = run_lints(&workspace_root(), &Allowlist::default())
        .expect("workspace sources are readable");
    assert!(
        report.files_scanned > 50,
        "walker found the crates: {}",
        report.files_scanned
    );
    let rendered = report.render_text();
    assert!(report.is_clean(), "unexpected violations:\n{rendered}");
}

#[test]
fn core_and_cluster_have_no_lib_unwraps() {
    let report = run_lints(&workspace_root(), &Allowlist::default())
        .expect("workspace sources are readable");
    let offenders: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| {
            d.lint == "no-unwrap"
                && (d.file.starts_with("crates/core/") || d.file.starts_with("crates/cluster/"))
        })
        .collect();
    assert!(offenders.is_empty(), "{offenders:?}");
}

#[test]
fn checked_in_allowlist_parses_if_present() {
    let path = workspace_root().join("analyze.allowlist");
    if path.exists() {
        let allow = Allowlist::load(&path).expect("checked-in allowlist must stay well-formed");
        // Every checked-in exception needs a reason; parsing enforces it.
        let _ = allow.len();
    }
}
