//! Full pairwise MI matrix computation (no significance testing).
//!
//! Methods downstream of the relevance network — CLR's background
//! z-scoring, clustering on MI distances, module detection — need the
//! whole `n × n` MI matrix rather than a thresholded edge list. This
//! module computes it in parallel over the same tiled runtime the
//! pipeline uses, packed into the upper-triangular layout of
//! [`gnet_parallel::pair_index`].

use crate::config::InferenceConfig;
use gnet_bspline::{BsplineBasis, DenseWeights};
use gnet_expr::ExpressionMatrix;
use gnet_mi::{mi_scalar, mi_vector, prepare_gene, MiKernel, MiScratch, PreparedGene};
use gnet_parallel::{compute_pairwise, pair_index, SchedulerPolicy};

/// A symmetric MI matrix in packed upper-triangular storage.
#[derive(Clone, Debug, PartialEq)]
pub struct MiMatrix {
    genes: usize,
    packed: Vec<f32>,
}

impl MiMatrix {
    /// Number of genes `n`.
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// `I(i, j)` in nats (`i ≠ j`; both orders accepted).
    ///
    /// # Panics
    /// Panics on `i == j` or out-of-range indices.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert_ne!(
            i, j,
            "self-MI is not stored (it is not a pairwise quantity here)"
        );
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.packed[pair_index(self.genes, a, b)]
    }

    /// The packed upper-triangular values (row-major by smaller index).
    pub fn packed(&self) -> &[f32] {
        &self.packed
    }

    /// Mean and standard deviation of gene `g`'s MI against all others —
    /// the background moments CLR normalizes with.
    pub fn row_moments(&self, g: usize) -> (f64, f64) {
        let n = self.genes;
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for other in 0..n {
            if other == g {
                continue;
            }
            let v = self.get(g, other) as f64;
            sum += v;
            sum2 += v * v;
        }
        let count = (n - 1) as f64;
        let mean = sum / count;
        let var = (sum2 / count - mean * mean).max(0.0);
        (mean, var.sqrt())
    }
}

/// Compute the full MI matrix of a raw expression matrix, in parallel.
/// Uses the config's estimator settings, kernel, thread count, and
/// scheduler; permutation/threshold settings are ignored.
pub fn compute_mi_matrix(matrix: &ExpressionMatrix, config: &InferenceConfig) -> MiMatrix {
    config.validate();
    assert!(matrix.genes() >= 2, "need at least two genes");
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let prepared: Vec<PreparedGene> = (0..matrix.genes())
        .map(|g| prepare_gene(matrix.gene(g), &basis))
        .collect();
    let n = matrix.genes();
    let tile = config.resolved_tile_size(n, prepared[0].heap_bytes());
    let threads = config.resolved_threads();
    let kernel = config.kernel;
    let prepared_ref = &prepared;
    let basis_ref = &basis;

    struct Ctx {
        scratch: MiScratch,
        /// Dense expansions keyed by gene, bounded to a tile-scale working
        /// set (tiles iterate j within a bounded column range, so hits are
        /// high and the clear is rare).
        dense: std::collections::HashMap<usize, DenseWeights>,
    }

    let (packed, _report) = compute_pairwise(
        n,
        tile,
        threads,
        SchedulerPolicy::DynamicCounter,
        |_tid| Ctx {
            scratch: MiScratch::for_basis(basis_ref),
            dense: Default::default(),
        },
        |ctx, i, j| match kernel {
            MiKernel::ScalarSparse => {
                mi_scalar(&prepared_ref[i], &prepared_ref[j], &mut ctx.scratch) as f32
            }
            MiKernel::VectorDense => {
                if ctx.dense.len() > 4 * tile.max(16) {
                    ctx.dense.clear();
                }
                let yd = ctx
                    .dense
                    .entry(j)
                    .or_insert_with(|| prepared_ref[j].to_dense());
                mi_vector(&prepared_ref[i], &prepared_ref[j], yd, &mut ctx.scratch) as f32
            }
        },
    );
    MiMatrix { genes: n, packed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnet_expr::synth::{coupled_pairs, Coupling};

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            threads: Some(2),
            tile_size: Some(5),
            ..InferenceConfig::default()
        }
    }

    #[test]
    fn matrix_agrees_with_direct_kernel_calls() {
        let (matrix, _) = coupled_pairs(4, 150, Coupling::Linear(0.8), 6);
        let mm = compute_mi_matrix(&matrix, &cfg());
        let basis = BsplineBasis::tinge_default();
        let mut scratch = MiScratch::for_basis(&basis);
        for i in 0..matrix.genes() {
            for j in i + 1..matrix.genes() {
                let a = prepare_gene(matrix.gene(i), &basis);
                let b = prepare_gene(matrix.gene(j), &basis);
                let direct = mi_scalar(&a, &b, &mut scratch) as f32;
                assert!(
                    (mm.get(i, j) - direct).abs() < 1e-4,
                    "({i},{j}): matrix {} vs direct {direct}",
                    mm.get(i, j)
                );
            }
        }
    }

    #[test]
    fn symmetric_access() {
        let (matrix, _) = coupled_pairs(3, 100, Coupling::Linear(0.7), 2);
        let mm = compute_mi_matrix(&matrix, &cfg());
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert_eq!(mm.get(i, j), mm.get(j, i));
                }
            }
        }
    }

    #[test]
    fn row_moments_match_two_pass() {
        let (matrix, _) = coupled_pairs(5, 120, Coupling::Linear(0.6), 9);
        let mm = compute_mi_matrix(&matrix, &cfg());
        let g = 3;
        let vals: Vec<f64> = (0..10)
            .filter(|&o| o != g)
            .map(|o| mm.get(g, o) as f64)
            .collect();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let sd = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
        let (m, s) = mm.row_moments(g);
        assert!((m - mean).abs() < 1e-9);
        assert!((s - sd).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "self-MI")]
    fn diagonal_access_rejected() {
        let (matrix, _) = coupled_pairs(2, 50, Coupling::Linear(0.5), 1);
        let mm = compute_mi_matrix(&matrix, &cfg());
        let _ = mm.get(1, 1);
    }
}
