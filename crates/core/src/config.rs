//! Pipeline configuration.

use gnet_mi::MiKernel;
use gnet_parallel::SchedulerPolicy;
use serde::{Deserialize, Serialize};

/// How the permutation null is evaluated per pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NullStrategy {
    /// Evaluate all `q` nulls for every pair and pool them for the global
    /// threshold — the paper's (TINGe's) procedure. Work per pair is
    /// exactly `q + 1` joint entropies.
    #[default]
    ExactFull,
    /// Adaptive extension (DESIGN.md §7): obtain the global threshold
    /// first — from `mi_threshold` if set, otherwise from a full-null
    /// pre-pass over `null_sample_pairs` sampled pairs — then skip nulls
    /// for pairs below it and stop at the first null that ties or beats
    /// the observed value. Decisions are identical to [`Self::ExactFull`]
    /// *given the same threshold*; only the work changes (≈ 2 joints per
    /// null pair instead of `q + 1`).
    EarlyExit,
}

/// Complete configuration of one inference run.
///
/// The defaults reproduce the paper's operating point: TINGe estimator
/// settings (order-3 B-splines over 10 bins), 30 shared permutations,
/// α = 0.01 family-wise, the vectorized kernel, dynamic tile scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Histogram bins `b` of the B-spline estimator.
    pub bins: usize,
    /// Spline order `k`.
    pub spline_order: usize,
    /// Shared permutations `q` per pair. `0` disables permutation testing
    /// entirely (then `mi_threshold` must be set).
    pub permutations: usize,
    /// Family-wise significance level α for the pooled-null threshold.
    pub alpha: f64,
    /// Explicit MI threshold in nats; when set (`Some`), it replaces the
    /// pooled-null `I*` (used by kernel benchmarks and by `q = 0` runs).
    pub mi_threshold: Option<f64>,
    /// RNG seed for the permutation set.
    pub seed: u64,
    /// Which MI kernel to run.
    pub kernel: MiKernel,
    /// Tile edge length; `None` picks the cache-blocking default.
    pub tile_size: Option<usize>,
    /// Worker threads; `None` uses the host's available parallelism.
    pub threads: Option<usize>,
    /// Tile scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Null-evaluation strategy (exact, or the adaptive early-exit
    /// extension).
    pub null_strategy: NullStrategy,
    /// For [`NullStrategy::EarlyExit`] without an explicit `mi_threshold`:
    /// the number of randomly sampled pairs whose full nulls estimate the
    /// pooled threshold in a pre-pass.
    pub null_sample_pairs: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        Self {
            bins: 10,
            spline_order: 3,
            permutations: 30,
            alpha: 0.01,
            mi_threshold: None,
            seed: 0x71_4E_67_45, // "TINGE"-ish; any fixed value works
            kernel: MiKernel::VectorDense,
            tile_size: None,
            threads: None,
            scheduler: SchedulerPolicy::DynamicCounter,
            null_strategy: NullStrategy::ExactFull,
            null_sample_pairs: 1_000,
        }
    }
}

impl InferenceConfig {
    /// A fast configuration for tests and examples: fewer permutations,
    /// a single thread unless overridden.
    pub fn fast() -> Self {
        Self {
            permutations: 10,
            ..Self::default()
        }
    }

    /// Validate the configuration, panicking with a clear message on
    /// nonsense (called by the pipeline before any work).
    pub fn validate(&self) {
        assert!(self.bins >= 2, "need at least two bins");
        assert!(self.spline_order >= 1, "spline order must be at least 1");
        assert!(
            self.spline_order <= self.bins,
            "spline order cannot exceed the bin count"
        );
        assert!(
            (f64::MIN_POSITIVE..1.0).contains(&self.alpha),
            "alpha must lie in (0, 1)"
        );
        if self.permutations == 0 {
            assert!(
                self.mi_threshold.is_some(),
                "with q = 0 an explicit mi_threshold is required"
            );
        }
        if self.null_strategy == NullStrategy::EarlyExit && self.mi_threshold.is_none() {
            assert!(
                self.null_sample_pairs >= 2,
                "early-exit needs an mi_threshold or a null_sample_pairs pre-pass"
            );
        }
        if let Some(t) = self.tile_size {
            assert!(t >= 1, "tile size must be positive");
        }
        if let Some(t) = self.threads {
            assert!(t >= 1, "thread count must be positive");
        }
    }

    /// Resolved thread count.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Resolved tile size for `genes` genes with `bytes_per_gene` working
    /// set, following the L2 blocking rule with a 512 KiB default share.
    pub fn resolved_tile_size(&self, genes: usize, bytes_per_gene: usize) -> usize {
        self.tile_size.unwrap_or_else(|| {
            gnet_parallel::TileSpace::tile_size_for_cache(genes, bytes_per_gene, 512 * 1024)
                .min(genes)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_operating_point() {
        let c = InferenceConfig::default();
        assert_eq!(c.bins, 10);
        assert_eq!(c.spline_order, 3);
        assert_eq!(c.permutations, 30);
        assert_eq!(c.kernel, MiKernel::VectorDense);
        assert_eq!(c.scheduler, SchedulerPolicy::DynamicCounter);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "explicit mi_threshold")]
    fn zero_permutations_without_threshold_rejected() {
        let c = InferenceConfig {
            permutations: 0,
            ..InferenceConfig::default()
        };
        c.validate();
    }

    #[test]
    fn zero_permutations_with_threshold_allowed() {
        let c = InferenceConfig {
            permutations: 0,
            mi_threshold: Some(0.2),
            ..InferenceConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "order cannot exceed")]
    fn order_above_bins_rejected() {
        let c = InferenceConfig {
            bins: 2,
            spline_order: 3,
            ..InferenceConfig::default()
        };
        c.validate();
    }

    #[test]
    fn resolved_values() {
        let c = InferenceConfig {
            threads: Some(3),
            tile_size: Some(7),
            ..Default::default()
        };
        assert_eq!(c.resolved_threads(), 3);
        assert_eq!(c.resolved_tile_size(100, 1), 7);
        let auto = InferenceConfig::default();
        assert!(auto.resolved_threads() >= 1);
        let t = auto.resolved_tile_size(1000, 44_000);
        assert!((4..=1000).contains(&t));
    }
}
