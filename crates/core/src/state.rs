//! The versioned on-disk network state bundle behind `gnet update`.
//!
//! A batch run discards everything but the edge list; an *updatable*
//! network must keep the intermediate artifacts the incremental engine
//! reuses ([`crate::incremental`]): the raw expression snapshot, each
//! gene's `(value, index)` sort order and B-spline weight matrix, the
//! candidate set with exact MI values, and the pooled-null moments. This
//! module persists all of that as a single `GNETSTA` bundle following the
//! GNETCKP codec conventions from [`crate::durable`] — schema tag +
//! version, FNV-1a64 integrity digest, bounds-checked decoding with typed
//! errors, atomic temp-file + `fsync` + rename writes.
//!
//! ## File schema v1
//!
//! All integers little-endian; f64/f32 stored as raw IEEE-754 bits so a
//! reloaded state is **bit-identical** to the in-memory one:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"GNETSTA\x01"
//! 8       4     version (= 1)
//! 12      8     payload length in bytes
//! 20      8     FNV-1a 64 digest of the payload bytes
//! 28      …     payload
//! ```
//!
//! Payload:
//!
//! ```text
//! u32 bins   u32 spline_order   u32 permutations   u64 seed
//! u64 alpha bits   u8 mi_threshold flag   u64 mi_threshold bits
//! u8 kernel (0 = scalar, 1 = vector)
//! u32 genes  u32 samples
//! per gene:  u32 name length, name bytes (UTF-8)
//! per gene:  profile (m × f32 bits), sort order (m × u32),
//!            u32 weight order k, u32 weight bins,
//!            first-bin (m × u16), weights (m·k × f32 bits),
//!            u64 marginal-entropy bits
//! u64 pooled.count   u64 pooled.mean bits   u64 pooled.m2 bits
//! u64 pooled.max bits
//! u64 joints
//! u32 candidate count, then per candidate: u32 i, u32 j, u64 MI bits
//! ```
//!
//! The sibling progress file (`gnet.update.progress`, magic `GNETUPD`)
//! captures a *partially applied* update so a chunk-boundary kill during
//! `gnet update` resumes bit-identically; see [`UpdateProgress`].

use crate::config::InferenceConfig;
use crate::durable::{fnv1a64, write_durably, Reader};
use gnet_bspline::SparseWeights;
use gnet_expr::ExpressionMatrix;
use gnet_fault::{FaultInjector, IoOp};
use gnet_graph::{Edge, GeneNetwork};
use gnet_mi::MiKernel;
use gnet_permute::PooledNull;
use gnet_trace::{Recorder, Value};
use std::fmt;
use std::fs::{self, File};
use std::io;
use std::path::PathBuf;

const MAGIC: [u8; 8] = *b"GNETSTA\x01";
const PROGRESS_MAGIC: [u8; 8] = *b"GNETUPD\x01";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 28;

/// Name of the state bundle inside the store directory.
pub const STATE_FILE: &str = "gnet.state";
const STATE_TMP: &str = "gnet.state.tmp";
/// Name of the in-flight update progress file inside the store directory.
pub const PROGRESS_FILE: &str = "gnet.update.progress";
const PROGRESS_TMP: &str = "gnet.update.progress.tmp";

/// Everything the incremental engine keeps per gene.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneState {
    /// Raw expression profile (`m` samples), exactly as ingested.
    pub profile: Vec<f32>,
    /// The `(value, index)` sort permutation of `profile`
    /// ([`gnet_expr::normalize::rank_sort_order`]): the artifact a
    /// sample-append merges instead of re-sorting.
    pub order: Vec<u32>,
    /// B-spline weight matrix of the rank-transformed profile.
    pub sparse: SparseWeights,
    /// Marginal entropy `H(g)` in nats.
    pub h_marginal: f64,
}

/// The complete updatable network state: result-binding configuration,
/// per-gene artifacts, and the merged pair-scan accumulators.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkState {
    /// Histogram bins of the B-spline estimator.
    pub bins: usize,
    /// Spline order.
    pub spline_order: usize,
    /// Shared permutations per pair.
    pub permutations: usize,
    /// Permutation RNG seed.
    pub seed: u64,
    /// Family-wise significance level for the pooled threshold.
    pub alpha: f64,
    /// Explicit MI threshold, when the run used one.
    pub mi_threshold: Option<f64>,
    /// MI kernel the pair scan dispatches to.
    pub kernel: MiKernel,
    /// Gene names, in matrix order.
    pub names: Vec<String>,
    /// Samples per gene.
    pub samples: usize,
    /// Per-gene artifacts, in matrix order.
    pub genes: Vec<GeneState>,
    /// Pooled null moments over every evaluated pair.
    pub pooled: PooledNull,
    /// Joint-entropy evaluations performed so far.
    pub joints: u64,
    /// Pairs that beat all of their own nulls: `(i, j, observed MI)` with
    /// `i < j`.
    pub candidates: Vec<(u32, u32, f64)>,
}

impl NetworkState {
    /// Number of genes.
    #[must_use]
    pub fn gene_count(&self) -> usize {
        self.genes.len()
    }

    /// Total unordered pairs over the current gene set.
    #[must_use]
    pub fn total_pairs(&self) -> u64 {
        let n = self.genes.len() as u64;
        n * n.saturating_sub(1) / 2
    }

    /// FNV-1a64 digest of the expression snapshot this state was built
    /// from (shape, names, and raw profile bits) — the value update
    /// progress files are bound to.
    #[must_use]
    pub fn snapshot_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 + self.genes.len() * (self.samples * 4 + 8));
        bytes.extend_from_slice(&(self.genes.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.samples as u64).to_le_bytes());
        for (name, g) in self.names.iter().zip(&self.genes) {
            bytes.extend_from_slice(&(name.len() as u64).to_le_bytes());
            bytes.extend_from_slice(name.as_bytes());
            for v in &g.profile {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        fnv1a64(&bytes)
    }

    /// The global threshold `I*` this state implies: the explicit
    /// threshold when one was configured, otherwise the Bonferroni-
    /// corrected pooled-null threshold over [`Self::total_pairs`] tests.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        match self.mi_threshold {
            Some(t) => t,
            None => self
                .pooled
                .global_threshold(self.alpha, self.total_pairs().max(1)),
        }
    }

    /// Assemble the significant-edge network from the candidate set —
    /// exactly the finalize stage of [`crate::infer_network`].
    #[must_use]
    pub fn network(&self) -> GeneNetwork {
        let threshold = self.threshold();
        let edges = self
            .candidates
            .iter()
            .filter(|&&(_, _, v)| v > threshold)
            .map(|&(i, j, v)| Edge::new(i, j, v as f32));
        GeneNetwork::from_edges(self.genes.len(), self.names.clone(), edges)
    }

    /// The result-binding [`InferenceConfig`] this state was built under
    /// (execution-shape fields are left at serial defaults — they do not
    /// affect the result).
    #[must_use]
    pub fn config(&self) -> InferenceConfig {
        InferenceConfig {
            bins: self.bins,
            spline_order: self.spline_order,
            permutations: self.permutations,
            seed: self.seed,
            alpha: self.alpha,
            mi_threshold: self.mi_threshold,
            kernel: self.kernel,
            threads: Some(1),
            ..InferenceConfig::default()
        }
    }

    /// The expression snapshot as a matrix (profiles are stored raw, so
    /// this is the exact matrix the state was built from).
    ///
    /// # Panics
    /// Panics if the stored profiles are inconsistent — impossible for a
    /// decoded state, which validates shapes.
    #[must_use]
    pub fn matrix(&self) -> ExpressionMatrix {
        let mut flat = Vec::with_capacity(self.genes.len() * self.samples);
        for g in &self.genes {
            flat.extend_from_slice(&g.profile);
        }
        let mut m = ExpressionMatrix::from_flat(
            self.genes.len(),
            self.samples,
            flat,
            gnet_expr::MissingPolicy::Error,
        )
        .expect("stored profiles form a valid matrix");
        m.set_gene_names(self.names.clone())
            .expect("one stored name per gene");
        m
    }
}

/// Durable progress of a partially applied update: the pair-scan prefix
/// plus the frontier accumulators over it, restored bitwise on resume.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateProgress {
    /// Digest binding this progress to (state snapshot, appended data,
    /// update mode); resuming anything else is rejected.
    pub update_digest: u64,
    /// 0 = gene append, 1 = sample append.
    pub mode: u8,
    /// Pairs of the canonical scan order fully accounted for below.
    pub pairs_done: u64,
    /// Joint evaluations performed over the completed prefix.
    pub joints: u64,
    /// Pooled null over the completed prefix (frontier only).
    pub pooled: PooledNull,
    /// Candidates found in the completed prefix (frontier only).
    pub candidates: Vec<(u32, u32, f64)>,
}

/// Why a network state bundle or update progress file could not be
/// saved, loaded, or applied.
#[derive(Debug)]
pub enum StateError {
    /// A filesystem operation failed; names the path and operation.
    Io {
        /// File or directory the operation targeted.
        path: PathBuf,
        /// What was being attempted.
        op: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// The file is structurally invalid (bad magic, truncated, bad
    /// shapes, …).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What exactly was malformed.
        reason: String,
    },
    /// The payload bytes do not match their integrity digest.
    IntegrityMismatch {
        /// Offending file.
        path: PathBuf,
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the bytes actually on disk.
        found: u64,
    },
    /// No file exists at the expected path.
    Missing {
        /// Path that was probed.
        path: PathBuf,
    },
    /// The progress file is valid but belongs to a different update
    /// (other state, appended data, or mode).
    StaleProgress {
        /// Offending file.
        path: PathBuf,
        /// Update digest of the current invocation.
        expected: u64,
        /// Update digest stored in the file.
        found: u64,
    },
    /// The appended data is incompatible with the stored state.
    Append {
        /// What does not line up.
        reason: String,
    },
    /// The update was interrupted at a progress boundary (an injected
    /// crash) *after* that boundary's progress file was durably written;
    /// re-running with `resume` continues from `pairs_done`.
    Interrupted {
        /// Pairs completed and persisted before the interruption.
        pairs_done: u64,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, op, source } => {
                write!(f, "state {op} failed for `{}`: {source}", path.display())
            }
            Self::Corrupt { path, reason } => {
                write!(f, "corrupt state file `{}`: {reason}", path.display())
            }
            Self::IntegrityMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "state file `{}` failed integrity check \
                 (digest {expected:#018x} recorded, {found:#018x} on disk); \
                 the file was corrupted after writing — rebuild it with \
                 `gnet infer --save-state`",
                path.display()
            ),
            Self::Missing { path } => write!(f, "no state file at `{}`", path.display()),
            Self::StaleProgress {
                path,
                expected,
                found,
            } => write!(
                f,
                "update progress `{}` belongs to a different update \
                 (digest {found:#018x}, current update is {expected:#018x}); \
                 state or appended data changed — delete it or restart \
                 without --resume",
                path.display()
            ),
            Self::Append { reason } => {
                write!(f, "appended data is incompatible with the state: {reason}")
            }
            Self::Interrupted { pairs_done } => write!(
                f,
                "update interrupted at a progress boundary with {pairs_done} \
                 pairs persisted; re-run with resume to continue"
            ),
        }
    }
}

impl std::error::Error for StateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn kernel_tag(kernel: MiKernel) -> u8 {
    match kernel {
        MiKernel::ScalarSparse => 0,
        MiKernel::VectorDense => 1,
    }
}

fn encode_state(state: &NetworkState) -> Vec<u8> {
    let m = state.samples;
    let per_gene = m * 4 + m * 4 + 8 + m * 2 + m * state.spline_order * 4 + 8 + 16;
    let mut out = Vec::with_capacity(64 + state.genes.len() * per_gene);
    out.extend_from_slice(&(state.bins as u32).to_le_bytes());
    out.extend_from_slice(&(state.spline_order as u32).to_le_bytes());
    out.extend_from_slice(&(state.permutations as u32).to_le_bytes());
    out.extend_from_slice(&state.seed.to_le_bytes());
    out.extend_from_slice(&state.alpha.to_bits().to_le_bytes());
    out.push(u8::from(state.mi_threshold.is_some()));
    out.extend_from_slice(&state.mi_threshold.unwrap_or(0.0).to_bits().to_le_bytes());
    out.push(kernel_tag(state.kernel));
    out.extend_from_slice(&(state.genes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    for name in &state.names {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    for g in &state.genes {
        for v in &g.profile {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &o in &g.order {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&(g.sparse.order() as u32).to_le_bytes());
        out.extend_from_slice(&(g.sparse.bins() as u32).to_le_bytes());
        for &fb in g.sparse.first_bins_flat() {
            out.extend_from_slice(&fb.to_le_bytes());
        }
        for &w in g.sparse.weights_flat() {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&g.h_marginal.to_bits().to_le_bytes());
    }
    let (count, mean, m2, max) = state.pooled.raw_parts();
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&mean.to_bits().to_le_bytes());
    out.extend_from_slice(&m2.to_bits().to_le_bytes());
    out.extend_from_slice(&max.to_bits().to_le_bytes());
    out.extend_from_slice(&state.joints.to_le_bytes());
    out.extend_from_slice(&(state.candidates.len() as u32).to_le_bytes());
    for &(i, j, v) in &state.candidates {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&j.to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Bulk-array element count × size, rejected before any allocation when
/// the remaining bytes cannot hold it.
fn take_array<'a>(
    r: &mut Reader<'a>,
    count: usize,
    elem: usize,
    what: &str,
) -> Result<&'a [u8], String> {
    let n = count
        .checked_mul(elem)
        .ok_or_else(|| format!("{what}: length overflows ({count} × {elem})"))?;
    r.take(n, what)
}

fn u16_at(b: &[u8], idx: usize) -> u16 {
    u16::from_le_bytes([b[idx * 2], b[idx * 2 + 1]])
}

fn u32_at(b: &[u8], idx: usize) -> u32 {
    u32::from_le_bytes([b[idx * 4], b[idx * 4 + 1], b[idx * 4 + 2], b[idx * 4 + 3]])
}

fn f32_at(b: &[u8], idx: usize) -> f32 {
    f32::from_bits(u32_at(b, idx))
}

fn decode_state(payload: &[u8]) -> Result<NetworkState, String> {
    let mut r = Reader::new(payload);
    let bins = r.u32("bins")? as usize;
    let spline_order = r.u32("spline order")? as usize;
    let permutations = r.u32("permutations")? as usize;
    let seed = r.u64("seed")?;
    let alpha = r.f64("alpha")?;
    let has_threshold = r.take(1, "threshold flag")?[0];
    if has_threshold > 1 {
        return Err(format!("bad threshold flag {has_threshold} (0|1)"));
    }
    let threshold_bits = r.f64("threshold")?;
    let mi_threshold = (has_threshold == 1).then_some(threshold_bits);
    let kernel = match r.take(1, "kernel tag")?[0] {
        0 => MiKernel::ScalarSparse,
        1 => MiKernel::VectorDense,
        other => return Err(format!("bad kernel tag {other} (0|1)")),
    };
    let genes = r.u32("gene count")? as usize;
    let samples = r.u32("sample count")? as usize;
    if genes < 2 {
        return Err(format!("state needs at least two genes, has {genes}"));
    }
    if samples == 0 {
        return Err("state needs at least one sample".into());
    }
    let mut names = Vec::with_capacity(genes.min(payload.len()));
    for g in 0..genes {
        let len = r.u32("name length")? as usize;
        let bytes = r.take(len, "gene name")?;
        let name =
            std::str::from_utf8(bytes).map_err(|_| format!("gene {g} name is not valid UTF-8"))?;
        names.push(name.to_owned());
    }
    let mut gene_states = Vec::with_capacity(genes.min(payload.len()));
    for g in 0..genes {
        let profile_bytes = take_array(&mut r, samples, 4, "profile")?;
        let profile: Vec<f32> = (0..samples).map(|s| f32_at(profile_bytes, s)).collect();
        let order_bytes = take_array(&mut r, samples, 4, "sort order")?;
        let order: Vec<u32> = (0..samples).map(|s| u32_at(order_bytes, s)).collect();
        let mut seen = vec![false; samples];
        for &o in &order {
            let slot = seen
                .get_mut(o as usize)
                .ok_or_else(|| format!("gene {g}: order entry {o} out of range"))?;
            if *slot {
                return Err(format!("gene {g}: order entry {o} repeated"));
            }
            *slot = true;
        }
        let w_order = r.u32("weight order")? as usize;
        let w_bins = r.u32("weight bins")? as usize;
        if w_order != spline_order || w_bins != bins {
            return Err(format!(
                "gene {g}: weight shape ({w_order}, {w_bins}) disagrees with \
                 the configured ({spline_order}, {bins})"
            ));
        }
        let fb_bytes = take_array(&mut r, samples, 2, "first-bin indices")?;
        let first_bin: Vec<u16> = (0..samples).map(|s| u16_at(fb_bytes, s)).collect();
        let w_bytes = take_array(&mut r, samples * w_order, 4, "weights")?;
        let weights: Vec<f32> = (0..samples * w_order).map(|s| f32_at(w_bytes, s)).collect();
        let sparse =
            SparseWeights::try_from_raw_parts(w_order, w_bins, samples, first_bin, weights)
                .map_err(|reason| format!("gene {g}: {reason}"))?;
        let h_marginal = r.f64("marginal entropy")?;
        gene_states.push(GeneState {
            profile,
            order,
            sparse,
            h_marginal,
        });
    }
    let count = r.u64("pooled count")?;
    let mean = r.f64("pooled mean")?;
    let m2 = r.f64("pooled m2")?;
    let max = r.f64("pooled max")?;
    let joints = r.u64("joints")?;
    let n = r.u32("candidate count")? as usize;
    if r.remaining() != n * 16 {
        return Err(format!(
            "candidate section length mismatch: {n} candidates declared, \
             {} bytes remain (need {})",
            r.remaining(),
            n * 16
        ));
    }
    let mut candidates = Vec::with_capacity(n);
    for idx in 0..n {
        let i = r.u32("candidate gene i")?;
        let j = r.u32("candidate gene j")?;
        let v = r.f64("candidate MI")?;
        if i >= j {
            return Err(format!("candidate {idx} is not upper-triangular ({i},{j})"));
        }
        if j as usize >= genes {
            return Err(format!("candidate {idx} endpoint {j} out of range"));
        }
        candidates.push((i, j, v));
    }
    Ok(NetworkState {
        bins,
        spline_order,
        permutations,
        seed,
        alpha,
        mi_threshold,
        kernel,
        names,
        samples,
        genes: gene_states,
        pooled: PooledNull::from_raw_parts(count, mean, m2, max),
        joints,
        candidates,
    })
}

fn encode_progress(p: &UpdateProgress) -> Vec<u8> {
    let (count, mean, m2, max) = p.pooled.raw_parts();
    let mut out = Vec::with_capacity(8 * 8 + 4 + p.candidates.len() * 16);
    out.extend_from_slice(&p.update_digest.to_le_bytes());
    out.push(p.mode);
    out.extend_from_slice(&p.pairs_done.to_le_bytes());
    out.extend_from_slice(&p.joints.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&mean.to_bits().to_le_bytes());
    out.extend_from_slice(&m2.to_bits().to_le_bytes());
    out.extend_from_slice(&max.to_bits().to_le_bytes());
    out.extend_from_slice(&(p.candidates.len() as u32).to_le_bytes());
    for &(i, j, v) in &p.candidates {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&j.to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

fn decode_progress(payload: &[u8]) -> Result<UpdateProgress, String> {
    let mut r = Reader::new(payload);
    let update_digest = r.u64("update digest")?;
    let mode = r.take(1, "update mode")?[0];
    if mode > 1 {
        return Err(format!("bad update mode {mode} (0 = genes, 1 = samples)"));
    }
    let pairs_done = r.u64("pairs done")?;
    let joints = r.u64("joints")?;
    let count = r.u64("pooled count")?;
    let mean = r.f64("pooled mean")?;
    let m2 = r.f64("pooled m2")?;
    let max = r.f64("pooled max")?;
    let n = r.u32("candidate count")? as usize;
    if r.remaining() != n * 16 {
        return Err(format!(
            "candidate section length mismatch: {n} candidates declared, \
             {} bytes remain (need {})",
            r.remaining(),
            n * 16
        ));
    }
    let mut candidates = Vec::with_capacity(n);
    for idx in 0..n {
        let i = r.u32("candidate gene i")?;
        let j = r.u32("candidate gene j")?;
        let v = r.f64("candidate MI")?;
        if i >= j {
            return Err(format!("candidate {idx} is not upper-triangular ({i},{j})"));
        }
        candidates.push((i, j, v));
    }
    Ok(UpdateProgress {
        update_digest,
        mode,
        pairs_done,
        joints,
        pooled: PooledNull::from_raw_parts(count, mean, m2, max),
        candidates,
    })
}

/// A directory holding one network state bundle (and, during an update,
/// its progress file), both written atomically.
pub struct StateStore {
    dir: PathBuf,
    injector: FaultInjector,
    rec: Recorder,
}

impl StateStore {
    /// Store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_faults(dir, FaultInjector::none(), &Recorder::disabled())
    }

    /// Store with fault injection and trace recording wired in.
    pub fn with_faults(dir: impl Into<PathBuf>, injector: FaultInjector, rec: &Recorder) -> Self {
        Self {
            dir: dir.into(),
            injector,
            rec: rec.clone(),
        }
    }

    /// The injector this store consults (shared with the update driver).
    #[must_use]
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Path of the state bundle.
    #[must_use]
    pub fn path(&self) -> PathBuf {
        self.dir.join(STATE_FILE)
    }

    /// Path of the in-flight update progress file.
    #[must_use]
    pub fn progress_path(&self) -> PathBuf {
        self.dir.join(PROGRESS_FILE)
    }

    fn save_file(
        &self,
        magic: &[u8; 8],
        tmp_name: &str,
        final_name: &str,
        mut payload: Vec<u8>,
    ) -> Result<(), StateError> {
        fs::create_dir_all(&self.dir).map_err(|source| StateError::Io {
            path: self.dir.clone(),
            op: "create-dir",
            source,
        })?;
        // The integrity digest covers the *intended* bytes; injected
        // flips happen after, modeling media corruption load() must catch.
        let integrity = fnv1a64(&payload);
        self.injector.corrupt_checkpoint(&mut payload);

        let mut file_bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        file_bytes.extend_from_slice(magic);
        file_bytes.extend_from_slice(&VERSION.to_le_bytes());
        file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file_bytes.extend_from_slice(&integrity.to_le_bytes());
        file_bytes.extend_from_slice(&payload);

        let tmp = self.dir.join(tmp_name);
        let dst = self.dir.join(final_name);
        if let Some(source) = self.injector.on_io(IoOp::Write) {
            return Err(StateError::Io {
                path: tmp,
                op: "write",
                source,
            });
        }
        write_durably(&tmp, &file_bytes).map_err(|source| StateError::Io {
            path: tmp.clone(),
            op: "write",
            source,
        })?;
        if let Some(source) = self.injector.on_io(IoOp::Rename) {
            return Err(StateError::Io {
                path: dst,
                op: "rename",
                source,
            });
        }
        fs::rename(&tmp, &dst).map_err(|source| StateError::Io {
            path: dst.clone(),
            op: "rename",
            source,
        })?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn load_file<T>(
        &self,
        magic: &[u8; 8],
        path: PathBuf,
        what: &str,
        decode: impl FnOnce(&[u8]) -> Result<T, String>,
    ) -> Result<T, StateError> {
        if let Some(source) = self.injector.on_io(IoOp::Read) {
            return Err(StateError::Io {
                path,
                op: "read",
                source,
            });
        }
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(StateError::Missing { path })
            }
            Err(source) => {
                return Err(StateError::Io {
                    path,
                    op: "read",
                    source,
                })
            }
        };
        let corrupt = |reason: String| StateError::Corrupt {
            path: path.clone(),
            reason,
        };
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != magic[..] {
            return Err(corrupt(format!("bad magic; not a gnet {what} file")));
        }
        let mut header = Reader::new(&bytes[8..HEADER_LEN]);
        let version = header.u32("version").map_err(&corrupt)?;
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported {what} version {version} (this build reads v{VERSION})"
            )));
        }
        let payload_len = header.u64("payload length").map_err(&corrupt)? as usize;
        let expected = header.u64("integrity digest").map_err(&corrupt)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(corrupt(format!(
                "payload length mismatch: header declares {payload_len} bytes, \
                 file holds {}",
                payload.len()
            )));
        }
        let found = fnv1a64(payload);
        if found != expected {
            return Err(StateError::IntegrityMismatch {
                path,
                expected,
                found,
            });
        }
        decode(payload).map_err(corrupt)
    }

    /// Atomically persist the state bundle.
    ///
    /// # Errors
    /// [`StateError::Io`] naming the path and operation that failed.
    pub fn save(&self, state: &NetworkState) -> Result<(), StateError> {
        self.save_file(&MAGIC, STATE_TMP, STATE_FILE, encode_state(state))?;
        self.rec.event(
            "state.saved",
            &[
                ("genes", Value::from(state.genes.len())),
                ("candidates", Value::from(state.candidates.len())),
            ],
        );
        Ok(())
    }

    /// Load and fully validate the state bundle.
    ///
    /// # Errors
    /// [`StateError::Missing`] when no file exists; `Io`, `Corrupt`, or
    /// `IntegrityMismatch` when the file cannot be trusted.
    pub fn load(&self) -> Result<NetworkState, StateError> {
        self.load_file(&MAGIC, self.path(), "state", decode_state)
    }

    /// Atomically persist the in-flight update progress.
    ///
    /// # Errors
    /// [`StateError::Io`] naming the path and operation that failed.
    pub fn save_progress(&self, progress: &UpdateProgress) -> Result<(), StateError> {
        self.save_file(
            &PROGRESS_MAGIC,
            PROGRESS_TMP,
            PROGRESS_FILE,
            encode_progress(progress),
        )?;
        self.rec.event(
            "update.progress_saved",
            &[("pairs_done", Value::from(progress.pairs_done))],
        );
        Ok(())
    }

    /// Load the progress file, additionally rejecting progress whose
    /// update digest differs from `expected_digest`.
    ///
    /// # Errors
    /// Everything [`Self::load`] maps for the progress file, plus
    /// [`StateError::StaleProgress`] on a digest mismatch.
    pub fn load_progress_for(&self, expected_digest: u64) -> Result<UpdateProgress, StateError> {
        let p = self.load_file(
            &PROGRESS_MAGIC,
            self.progress_path(),
            "update progress",
            decode_progress,
        )?;
        if p.update_digest != expected_digest {
            return Err(StateError::StaleProgress {
                path: self.progress_path(),
                expected: expected_digest,
                found: p.update_digest,
            });
        }
        Ok(p)
    }

    /// Remove the progress file (and any stray temp file) if present —
    /// called after an update lands in the state bundle.
    ///
    /// # Errors
    /// [`StateError::Io`] on a filesystem failure other than the files
    /// already being absent.
    pub fn clear_progress(&self) -> Result<(), StateError> {
        for path in [self.progress_path(), self.dir.join(PROGRESS_TMP)] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(source) => {
                    return Err(StateError::Io {
                        path,
                        op: "remove",
                        source,
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::build_state;
    use gnet_expr::synth::{coupled_pairs, Coupling};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        // ordering: test-local unique-id counter; no synchronization needed.
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gnet-state-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir must be creatable");
        dir
    }

    fn small_state() -> NetworkState {
        let (matrix, _) = coupled_pairs(3, 60, Coupling::Linear(0.9), 5);
        let cfg = InferenceConfig {
            permutations: 6,
            threads: Some(1),
            ..InferenceConfig::default()
        };
        build_state(&matrix, &cfg)
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let state = small_state();
        let store = StateStore::new(tmpdir("roundtrip"));
        store.save(&state).expect("save succeeds");
        let back = store.load().expect("load succeeds");
        assert_eq!(back, state);
        let (c0, m0, s0, x0) = state.pooled.raw_parts();
        let (c1, m1, s1, x1) = back.pooled.raw_parts();
        assert_eq!(c0, c1);
        assert_eq!(m0.to_bits(), m1.to_bits());
        assert_eq!(s0.to_bits(), s1.to_bits());
        assert_eq!(x0.to_bits(), x1.to_bits());
        assert_eq!(back.snapshot_digest(), state.snapshot_digest());
        assert_eq!(back.threshold().to_bits(), state.threshold().to_bits());
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let store = StateStore::new(tmpdir("missing"));
        assert!(matches!(store.load(), Err(StateError::Missing { .. })));
        assert!(matches!(
            store.load_progress_for(7),
            Err(StateError::Missing { .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        let state = small_state();
        let store = StateStore::new(tmpdir("truncate"));
        store.save(&state).expect("save succeeds");
        let full = fs::read(store.path()).expect("file readable");
        for cut in 0..full.len() {
            fs::write(store.path(), &full[..cut]).expect("rewrite");
            let err = store.load().expect_err("truncated file must be rejected");
            assert!(
                matches!(
                    err,
                    StateError::Corrupt { .. } | StateError::IntegrityMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_the_integrity_check() {
        let state = small_state();
        let store = StateStore::new(tmpdir("flip"));
        store.save(&state).expect("save succeeds");
        let mut bytes = fs::read(store.path()).expect("file readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(store.path(), &bytes).expect("rewrite");
        assert!(matches!(
            store.load(),
            Err(StateError::IntegrityMismatch { .. })
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let state = small_state();
        let store = StateStore::new(tmpdir("magic"));
        store.save(&state).expect("save succeeds");
        let good = fs::read(store.path()).expect("file readable");

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        fs::write(store.path(), &bad).expect("rewrite");
        let err = store.load().expect_err("bad magic rejected");
        assert!(matches!(err, StateError::Corrupt { reason, .. } if reason.contains("magic")));

        let mut future = good;
        future[8] = 9; // version field
        fs::write(store.path(), &future).expect("rewrite");
        let err = store.load().expect_err("future version rejected");
        assert!(matches!(err, StateError::Corrupt { reason, .. } if reason.contains("version")));
    }

    #[test]
    fn oversized_declared_counts_are_rejected_before_allocation() {
        // Forge an internally consistent header (real digest) whose
        // payload declares absurd gene/sample counts — the decoder must
        // fail on bounds, not attempt the allocation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&10u32.to_le_bytes()); // bins
        payload.extend_from_slice(&3u32.to_le_bytes()); // order
        payload.extend_from_slice(&4u32.to_le_bytes()); // permutations
        payload.extend_from_slice(&7u64.to_le_bytes()); // seed
        payload.extend_from_slice(&0.01f64.to_bits().to_le_bytes()); // alpha
        payload.push(0); // no explicit threshold
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.push(1); // vector kernel
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // genes
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // samples

        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        file.extend_from_slice(&payload);

        let store = StateStore::new(tmpdir("oversized"));
        fs::create_dir_all(store.path().parent().unwrap()).unwrap();
        fs::write(store.path(), &file).expect("write forged file");
        let err = store.load().expect_err("oversized counts rejected");
        assert!(
            matches!(err, StateError::Corrupt { .. }),
            "expected Corrupt, got {err}"
        );
    }

    #[test]
    fn progress_round_trips_and_rejects_foreign_digests() {
        let store = StateStore::new(tmpdir("progress"));
        let p = UpdateProgress {
            update_digest: 0xDEAD_BEEF,
            mode: 0,
            pairs_done: 17,
            joints: 119,
            pooled: PooledNull::from_raw_parts(20, 0.5, 0.25, 0.9),
            candidates: vec![(0, 3, 0.7), (1, 2, 0.4)],
        };
        store.save_progress(&p).expect("save succeeds");
        let back = store
            .load_progress_for(0xDEAD_BEEF)
            .expect("matching digest loads");
        assert_eq!(back, p);
        assert!(matches!(
            store.load_progress_for(1),
            Err(StateError::StaleProgress { .. })
        ));
        store.clear_progress().expect("clear succeeds");
        assert!(matches!(
            store.load_progress_for(0xDEAD_BEEF),
            Err(StateError::Missing { .. })
        ));
        store.clear_progress().expect("clear is idempotent");
    }

    #[test]
    fn network_matches_the_batch_finalize_stage() {
        let (matrix, _) = coupled_pairs(4, 120, Coupling::Linear(0.9), 11);
        let cfg = InferenceConfig {
            permutations: 8,
            threads: Some(1),
            tile_size: Some(4),
            ..InferenceConfig::default()
        };
        let state = build_state(&matrix, &cfg);
        let batch = crate::infer_network(&matrix, &cfg);
        let net = state.network();
        assert_eq!(net.edge_count(), batch.network.edge_count());
        for (a, b) in net.edges().iter().zip(batch.network.edges()) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
        assert!((state.threshold() - batch.stats.threshold).abs() < 1e-9);
        assert_eq!(state.matrix(), matrix);
    }
}
