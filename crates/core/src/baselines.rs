//! Baseline network-construction methods.
//!
//! Three comparison points frame the evaluation:
//!
//! * [`sequential_reference`] — the same statistics as the pipeline in the
//!   most naive possible form (double loop, scalar kernel, no tiling, no
//!   threads). Exists purely as a correctness oracle: the optimized
//!   pipeline must produce the same network.
//! * [`histogram_network`] — the classical equal-width-bin MI estimator
//!   with a fixed threshold: the estimator-quality baseline.
//! * [`pearson_network`] — absolute-Pearson thresholding: the linear
//!   baseline that motivates MI in the first place (it cannot see
//!   non-monotone regulation).

use crate::config::InferenceConfig;
use gnet_bspline::BsplineBasis;
use gnet_expr::stats::pearson;
use gnet_expr::ExpressionMatrix;
use gnet_graph::{Edge, GeneNetwork};
use gnet_mi::histogram::HistogramEstimator;
use gnet_mi::{mi_with_nulls, prepare_gene, MiKernel, MiScratch};
use gnet_permute::{PermutationSet, PooledNull};

/// Deliberately simple reference implementation of the full statistical
/// procedure (rank transform → B-spline MI → shared-permutation test →
/// pooled threshold). O(n²·q·m·k²) scalar work, single thread.
pub fn sequential_reference(matrix: &ExpressionMatrix, config: &InferenceConfig) -> GeneNetwork {
    config.validate();
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let prepared: Vec<_> = (0..matrix.genes())
        .map(|g| prepare_gene(matrix.gene(g), &basis))
        .collect();
    let perms = PermutationSet::generate(matrix.samples(), config.permutations, config.seed);
    let mut scratch = MiScratch::for_basis(&basis);

    let n = matrix.genes();
    let mut pooled = PooledNull::new();
    let mut survivors: Vec<(u32, u32, f64)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let res = mi_with_nulls(
                MiKernel::ScalarSparse,
                &prepared[i],
                &prepared[j],
                None,
                perms.as_vecs(),
                &mut scratch,
            );
            pooled.extend(&res.null);
            if res.exceed_count() == 0 {
                survivors.push((i as u32, j as u32, res.observed));
            }
        }
    }
    let pairs = (n as u64) * (n as u64 - 1) / 2;
    let threshold = match config.mi_threshold {
        Some(t) => t,
        None => pooled.global_threshold(config.alpha, pairs.max(1)),
    };
    GeneNetwork::from_edges(
        n,
        matrix.gene_names().to_vec(),
        survivors
            .into_iter()
            .filter(|&(_, _, v)| v > threshold)
            .map(|(i, j, v)| Edge::new(i, j, v as f32)),
    )
}

/// Equal-width-histogram MI network with a fixed nats threshold, computed
/// on rank-transformed profiles.
pub fn histogram_network(
    matrix: &ExpressionMatrix,
    bins: usize,
    threshold_nats: f64,
) -> GeneNetwork {
    let est = HistogramEstimator::new(bins);
    let normalized = gnet_expr::normalize::rank_transform(matrix);
    let n = matrix.genes();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let v = est.mi(normalized.gene(i), normalized.gene(j));
            if v > threshold_nats {
                edges.push(Edge::new(i as u32, j as u32, v as f32));
            }
        }
    }
    GeneNetwork::from_edges(n, matrix.gene_names().to_vec(), edges)
}

/// CLR (Context Likelihood of Relatedness, Faith et al. 2007) — the
/// classic refinement between the raw relevance network and ARACNE: each
/// pair's MI is z-scored against the *background* MI distributions of
/// both of its genes, `score = √(z_i² + z_j²)` with `z = max(0, (I−μ)/σ)`,
/// which cancels per-gene promiscuity (hubs with globally elevated MI).
///
/// Uses the same rank transform + B-spline estimator as the pipeline; no
/// permutation testing (CLR's normalization replaces it).
pub fn clr_network(
    matrix: &ExpressionMatrix,
    bins: usize,
    order: usize,
    z_threshold: f64,
) -> GeneNetwork {
    assert!(z_threshold >= 0.0, "z threshold cannot be negative");
    let cfg = InferenceConfig {
        bins,
        spline_order: order,
        ..InferenceConfig::default()
    };
    let mi = crate::mi_matrix::compute_mi_matrix(matrix, &cfg);

    let n = matrix.genes();
    let moments: Vec<(f64, f64)> = (0..n).map(|g| mi.row_moments(g)).collect();
    let z = |g: usize, v: f64| -> f64 {
        let (mean, sd) = moments[g];
        if sd > 0.0 {
            ((v - mean) / sd).max(0.0)
        } else {
            0.0
        }
    };
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let v = mi.get(i, j) as f64;
            let score = (z(i, v).powi(2) + z(j, v).powi(2)).sqrt();
            if score > z_threshold {
                edges.push(Edge::new(i as u32, j as u32, score as f32));
            }
        }
    }
    GeneNetwork::from_edges(n, matrix.gene_names().to_vec(), edges)
}

/// Absolute-Pearson-correlation network with threshold `min_abs_r`.
pub fn pearson_network(matrix: &ExpressionMatrix, min_abs_r: f64) -> GeneNetwork {
    assert!(
        (0.0..=1.0).contains(&min_abs_r),
        "correlation threshold must lie in [0, 1]"
    );
    let n = matrix.genes();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let r = pearson(matrix.gene(i), matrix.gene(j));
            if r.abs() > min_abs_r {
                edges.push(Edge::new(i as u32, j as u32, r.abs() as f32));
            }
        }
    }
    GeneNetwork::from_edges(n, matrix.gene_names().to_vec(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::infer_network;
    use gnet_expr::synth::{self, Coupling};
    use gnet_graph::recovery_score;

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            permutations: 12,
            threads: Some(2),
            tile_size: Some(5),
            ..InferenceConfig::default()
        }
    }

    #[test]
    fn optimized_pipeline_matches_sequential_reference() {
        let (matrix, _) = synth::coupled_pairs(4, 250, Coupling::Linear(0.85), 31);
        let reference = sequential_reference(&matrix, &cfg());
        let optimized = infer_network(&matrix, &cfg());
        assert_eq!(
            reference.edges().len(),
            optimized.network.edges().len(),
            "edge sets differ"
        );
        for (a, b) in reference.edges().iter().zip(optimized.network.edges()) {
            assert_eq!(a.key(), b.key());
            assert!((a.weight - b.weight).abs() < 1e-3);
        }
    }

    #[test]
    fn pearson_misses_quadratic_coupling_that_mi_finds() {
        let (matrix, truth) = synth::coupled_pairs(3, 800, Coupling::Quadratic(0.1), 7);
        let linear = pearson_network(&matrix, 0.5);
        let mi = infer_network(&matrix, &cfg());
        let linear_score = recovery_score(&linear, &truth);
        let mi_score = recovery_score(&mi.network, &truth);
        assert_eq!(linear_score.true_positives, 0, "Pearson must be blind here");
        assert_eq!(mi_score.false_negatives, 0, "MI must see it");
    }

    #[test]
    fn pearson_finds_linear_coupling() {
        let (matrix, truth) = synth::coupled_pairs(3, 500, Coupling::Linear(0.9), 8);
        let net = pearson_network(&matrix, 0.5);
        let score = recovery_score(&net, &truth);
        assert_eq!(score.false_negatives, 0);
        assert_eq!(score.false_positives, 0);
    }

    #[test]
    fn histogram_network_with_threshold() {
        let (matrix, truth) = synth::coupled_pairs(3, 600, Coupling::Linear(0.95), 6);
        let net = histogram_network(&matrix, 10, 0.35);
        let score = recovery_score(&net, &truth);
        assert_eq!(score.false_negatives, 0);
        assert!(
            score.precision() > 0.7,
            "histogram precision {}",
            score.precision()
        );
    }

    #[test]
    #[should_panic(expected = "correlation threshold")]
    fn pearson_threshold_validated() {
        let m = synth::independent_uniform(2, 10, 1);
        let _ = pearson_network(&m, 1.5);
    }

    #[test]
    fn clr_recovers_planted_pairs() {
        let (matrix, truth) = synth::coupled_pairs(5, 400, Coupling::Linear(0.9), 44);
        let net = clr_network(&matrix, 10, 3, 3.0);
        let score = recovery_score(&net, &truth);
        assert_eq!(
            score.false_negatives,
            0,
            "CLR must find strong pairs: {:?}",
            net.edges()
        );
        assert!(score.precision() > 0.8, "precision {}", score.precision());
    }

    #[test]
    fn clr_scores_are_symmetric_zscores() {
        let (matrix, _) = synth::coupled_pairs(3, 200, Coupling::Linear(0.8), 4);
        let net = clr_network(&matrix, 10, 3, 0.0);
        // With threshold 0, every pair whose z-score is positive appears;
        // weights are √(zi²+zj²) ≥ 0.
        for e in net.edges() {
            assert!(e.weight >= 0.0);
        }
        assert!(net.edge_count() > 0);
    }

    #[test]
    fn clr_on_independent_data_at_high_threshold_is_sparse() {
        let matrix = synth::independent_gaussian(20, 200, 66);
        let net = clr_network(&matrix, 10, 3, 4.5);
        assert!(
            net.edge_count() <= 3,
            "z > 4.5 on null data should be rare, got {}",
            net.edge_count()
        );
    }

    #[test]
    fn clr_discounts_promiscuous_hubs() {
        // Gene 0 weakly couples to everyone (a "hub" with elevated
        // background); genes 4–5 share one strong specific link. CLR must
        // rank the specific link above the hub's diffuse ones.
        let mut rng_data = synth::independent_gaussian(6, 600, 8).into_flat();
        let samples = 600;
        // Inject couplings: weak 0↔k for k=1..3, strong 4↔5.
        for s in 0..samples {
            let hub = rng_data[s];
            for k in 1..4 {
                rng_data[k * samples + s] += 0.6 * hub;
            }
            let driver = rng_data[4 * samples + s];
            rng_data[5 * samples + s] = driver + 0.2 * rng_data[5 * samples + s];
        }
        let matrix = gnet_expr::ExpressionMatrix::from_flat(
            6,
            samples,
            rng_data,
            gnet_expr::MissingPolicy::Error,
        )
        .unwrap();
        let net = clr_network(&matrix, 10, 3, 0.0);
        let strong = net.weight(4, 5).expect("specific link present");
        for k in 1..4u32 {
            let hub_w = net.weight(0, k).unwrap_or(0.0);
            assert!(
                strong > hub_w,
                "specific link ({strong}) must outrank hub link 0–{k} ({hub_w})"
            );
        }
    }
}
