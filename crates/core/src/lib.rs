//! Whole-genome network inference — the paper's primary contribution as a
//! library.
//!
//! [`infer_network`] runs the complete TINGe-style pipeline:
//!
//! 1. **Preprocess** — rank-transform every gene ([`gnet_expr`]).
//! 2. **Prepare** — B-spline weight matrix + marginal entropy per gene,
//!    computed once and reused for all `n−1` pairs ([`gnet_mi`]).
//! 3. **Pairwise MI + permutation nulls** — the `n(n−1)/2` pair space is
//!    tiled ([`gnet_parallel`]); worker threads claim tiles under the
//!    configured scheduling policy, expand each tile's column genes into
//!    the dense vector layout once, and evaluate every pair together with
//!    its `q` shared-permutation nulls ([`gnet_permute`]). Pairs that beat
//!    all of their own nulls become *candidates*; every null value feeds a
//!    mergeable pooled-null accumulator.
//! 4. **Threshold** — the pooled null yields the Bonferroni-corrected
//!    global threshold `I*`; candidates above it become edges.
//! 5. **Output** — a [`gnet_graph::GeneNetwork`] plus run statistics.
//!
// cast-ok (crate-wide): gene indices are u32 and edge weights f32 by
// design (the paper's ~15k-gene scale); MI is accumulated in f64 and
// narrowed once at the edge boundary. These narrowing casts are the data
// model, not accidents.
#![allow(clippy::cast_possible_truncation)]
//! [`baselines`] holds the comparison methods (naive histogram-MI network,
//! Pearson correlation network, and a deliberately simple sequential
//! reference implementation used as the correctness oracle for the tiled
//! parallel path).

#![warn(missing_docs)]

pub mod baselines;
pub mod checkpoint;
pub mod config;
pub mod durable;
pub mod incremental;
pub mod mi_matrix;
pub mod pipeline;
pub mod plan;
pub mod result;
pub mod state;

pub use checkpoint::{
    infer_network_resumable, infer_network_resumable_traced, run_digest_for, Checkpoint,
};
pub use config::{InferenceConfig, NullStrategy};
pub use durable::{infer_network_durable, CheckpointError, CheckpointStore};
pub use gnet_trace::Recorder;
pub use incremental::{
    apply_update, apply_update_mutated, build_state, detect_mode, update_digest, update_durable,
    UpdateMode, UpdateMutation, UpdateStats,
};
pub use mi_matrix::{compute_mi_matrix, MiMatrix};
pub use pipeline::{infer_network, infer_network_traced};
pub use plan::MemoryPlan;
pub use result::{InferenceResult, RunStats};
pub use state::{GeneState, NetworkState, StateError, StateStore, UpdateProgress};
