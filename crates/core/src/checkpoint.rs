//! Checkpoint/resume for multi-hour whole-genome runs.
//!
//! A full-scale run is tens of minutes on the paper's hardware and many
//! hours on a workstation; production deployments need to survive
//! preemption. Because the pipeline's per-thread state is *mergeable*
//! (pooled-null moments merge exactly, candidates concatenate) and the
//! tile list is deterministic, progress can be captured as a compact
//! [`Checkpoint`]: a prefix length into the tile list plus the merged
//! accumulators over that prefix. Resuming replays nothing.
//!
//! Only the exact (paper-faithful) null strategy is supported — the
//! early-exit pre-pass would have to be re-estimated on resume, changing
//! decisions mid-run.

use crate::config::{InferenceConfig, NullStrategy};
use crate::pipeline::{process_tile, ThreadState as WorkerState};
use crate::result::{InferenceResult, RunStats};
use gnet_bspline::BsplineBasis;
use gnet_expr::ExpressionMatrix;
use gnet_graph::{Edge, GeneNetwork};
use gnet_mi::{prepare_gene, MiScratch, PreparedGene};
use gnet_parallel::{execute_tiles_traced, ExecutionReport, TileSpace};
use gnet_permute::{PermutationSet, PooledNull};
use gnet_trace::Recorder;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Resumable progress over the deterministic tile list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Digest binding the checkpoint to (config, matrix shape, tiling);
    /// resuming with anything else is rejected.
    pub digest: u64,
    /// Tiles `0..tiles_done` are fully accounted for below.
    pub tiles_done: usize,
    /// Pooled null over the completed prefix.
    pub pooled: PooledNull,
    /// Candidate edges found in the completed prefix.
    pub candidates: Vec<(u32, u32, f64)>,
    /// Joint evaluations performed in the completed prefix.
    pub joints: u64,
}

fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn run_digest(config: &InferenceConfig, matrix: &ExpressionMatrix, tiles: usize) -> u64 {
    let mut h = 0xD16E_5700_0000_0001u64;
    h = mix(h, matrix.genes() as u64);
    h = mix(h, matrix.samples() as u64);
    h = mix(h, tiles as u64);
    h = mix(h, config.bins as u64);
    h = mix(h, config.spline_order as u64);
    h = mix(h, config.permutations as u64);
    h = mix(h, config.seed);
    h = mix(h, config.alpha.to_bits());
    h = mix(h, config.mi_threshold.map_or(0, f64::to_bits));
    h
}

/// The digest binding checkpoints to `(config, matrix shape, tiling)`,
/// computed without running the pipeline.
///
/// [`infer_network_resumable`] derives the same value internally; the
/// durable store ([`crate::durable::CheckpointStore`]) uses this to
/// reject stale or foreign checkpoints with a typed error *before* the
/// run starts, instead of panicking mid-resume.
///
/// # Panics
/// Panics on config/matrix violations (fewer than two genes).
#[must_use]
pub fn run_digest_for(matrix: &ExpressionMatrix, config: &InferenceConfig) -> u64 {
    config.validate();
    assert!(matrix.genes() >= 2, "need at least two genes");
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let probe = prepare_gene(matrix.gene(0), &basis);
    let tile_size = config.resolved_tile_size(matrix.genes(), probe.heap_bytes());
    let space = TileSpace::new(matrix.genes(), tile_size);
    run_digest(config, matrix, space.tiles().len())
}

/// Outcome of a resumable run: finished, or interrupted with the progress
/// needed to continue.
pub type ResumableOutcome = Result<InferenceResult, Checkpoint>;

/// Run the pipeline processing tiles in chunks of `chunk_tiles`; after
/// each chunk, `on_checkpoint` receives the cumulative progress and may
/// return `false` to interrupt (the checkpoint comes back as `Err`).
/// Passing a prior checkpoint resumes exactly where it stopped.
///
/// The final network is identical to [`crate::infer_network`]'s modulo
/// accumulator-merge rounding in the estimated threshold (bit-identical
/// with an explicit `mi_threshold`).
///
/// # Panics
/// Panics on config/matrix violations, a digest mismatch, a non-exact
/// null strategy, or `chunk_tiles == 0`.
pub fn infer_network_resumable(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    resume_from: Option<Checkpoint>,
    chunk_tiles: usize,
    on_checkpoint: impl FnMut(&Checkpoint) -> bool,
) -> ResumableOutcome {
    infer_network_resumable_traced(
        matrix,
        config,
        resume_from,
        chunk_tiles,
        on_checkpoint,
        &Recorder::disabled(),
    )
}

/// [`infer_network_resumable`] with an instrumentation hook: stage spans,
/// the scheduler's per-tile/per-thread telemetry, and one
/// `checkpoint.chunk` event per completed chunk (tiles done, total tiles,
/// joints and candidates so far).
pub fn infer_network_resumable_traced(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    resume_from: Option<Checkpoint>,
    chunk_tiles: usize,
    mut on_checkpoint: impl FnMut(&Checkpoint) -> bool,
    rec: &Recorder,
) -> ResumableOutcome {
    config.validate();
    assert!(chunk_tiles >= 1, "chunk size must be positive");
    assert!(matrix.genes() >= 2, "need at least two genes");
    assert_eq!(
        config.null_strategy,
        NullStrategy::ExactFull,
        "checkpointing supports the exact null strategy only"
    );

    let t0 = Instant::now();
    let span_prep = rec.span("stage.prep");
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let prepared: Vec<PreparedGene> = (0..matrix.genes())
        .map(|g| prepare_gene(matrix.gene(g), &basis))
        .collect();
    let perms = PermutationSet::generate(matrix.samples(), config.permutations, config.seed);
    let tile_size = config.resolved_tile_size(matrix.genes(), prepared[0].heap_bytes());
    let space = TileSpace::new(matrix.genes(), tile_size);
    let digest = run_digest(config, matrix, space.tiles().len());
    drop(span_prep);
    let prep_time = t0.elapsed();

    let mut progress = match resume_from {
        Some(cp) => {
            assert_eq!(cp.digest, digest, "checkpoint does not match this run");
            assert!(
                cp.tiles_done <= space.tiles().len(),
                "corrupt checkpoint prefix"
            );
            cp
        }
        None => Checkpoint {
            digest,
            tiles_done: 0,
            pooled: PooledNull::new(),
            candidates: Vec::new(),
            joints: 0,
        },
    };

    let threads = config.resolved_threads();
    let t1 = Instant::now();
    let span_mi = rec.span("stage.mi");
    // The execution report must cover *every* chunk of this invocation.
    // The old code kept only the last chunk's report, so `RunStats::
    // execution` under-counted tiles/pairs/busy for any multi-chunk run.
    let mut execution = ExecutionReport::default();
    while progress.tiles_done < space.tiles().len() {
        let hi = (progress.tiles_done + chunk_tiles).min(space.tiles().len());
        let chunk = &space.tiles()[progress.tiles_done..hi];
        let (states, report) = execute_tiles_traced(
            chunk,
            threads,
            config.scheduler,
            |_tid| WorkerState::new(MiScratch::for_basis(&basis)),
            |state, tile| {
                process_tile(
                    tile,
                    &prepared,
                    &perms,
                    config.kernel,
                    config.mi_threshold,
                    state,
                );
            },
            rec,
        );
        for s in states {
            progress.pooled.merge(&s.pooled);
            progress
                .candidates
                .extend(s.candidates.into_iter().map(|c| (c.i, c.j, c.observed)));
            progress.joints += s.joints;
        }
        progress.tiles_done = hi;
        execution.absorb(&report);
        if rec.is_enabled() {
            rec.event(
                "checkpoint.chunk",
                &[
                    ("tiles_done", (progress.tiles_done as u64).into()),
                    ("total_tiles", (space.tiles().len() as u64).into()),
                    ("joints", progress.joints.into()),
                    ("candidates", (progress.candidates.len() as u64).into()),
                ],
            );
            rec.progress(progress.tiles_done, space.tiles().len());
        }
        if !on_checkpoint(&progress) {
            return Err(progress);
        }
    }
    drop(span_mi);
    let mi_time = t1.elapsed();

    // Finalize exactly as the one-shot pipeline does.
    let t2 = Instant::now();
    let span_finalize = rec.span("stage.finalize");
    let pairs = space.total_pairs();
    let threshold = match config.mi_threshold {
        Some(t) => t,
        None => progress.pooled.global_threshold(config.alpha, pairs.max(1)),
    };
    let candidate_count = progress.candidates.len() as u64;
    let mut sorted = progress.candidates;
    sorted.sort_by_key(|c| (c.0, c.1));
    let network = GeneNetwork::from_edges(
        matrix.genes(),
        matrix.gene_names().to_vec(),
        sorted
            .into_iter()
            .filter(|&(_, _, v)| v > threshold)
            .map(|(i, j, v)| Edge::new(i, j, v as f32)),
    );
    let stats = RunStats {
        prep_time,
        mi_time,
        finalize_time: t2.elapsed(),
        pairs,
        candidates: candidate_count,
        joints_evaluated: progress.joints,
        threshold,
        null_mean: progress.pooled.mean(),
        null_sd: if progress.pooled.count() >= 2 {
            progress.pooled.std_dev()
        } else {
            0.0
        },
        tile_size,
        threads,
        execution,
    };
    drop(span_finalize);
    Ok(InferenceResult { network, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_network;
    use gnet_expr::synth::{coupled_pairs, Coupling};

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            permutations: 10,
            threads: Some(2),
            tile_size: Some(6),
            ..InferenceConfig::default()
        }
    }

    #[test]
    fn uninterrupted_resumable_run_matches_one_shot() {
        let (matrix, _) = coupled_pairs(5, 220, Coupling::Linear(0.85), 61);
        let one_shot = infer_network(&matrix, &cfg());
        let mut checkpoints = 0;
        let resumable = infer_network_resumable(&matrix, &cfg(), None, 1, |_| {
            checkpoints += 1;
            true
        })
        .expect("must finish");
        assert!(checkpoints >= 2, "chunking must actually checkpoint");
        assert_eq!(
            resumable.network.edges().len(),
            one_shot.network.edges().len()
        );
        for (a, b) in resumable
            .network
            .edges()
            .iter()
            .zip(one_shot.network.edges())
        {
            assert_eq!(a.key(), b.key());
        }
        assert_eq!(resumable.stats.pairs, one_shot.stats.pairs);
        assert_eq!(
            resumable.stats.joints_evaluated,
            one_shot.stats.joints_evaluated
        );
    }

    #[test]
    fn interrupt_and_resume_reproduces_the_run() {
        let (matrix, _) = coupled_pairs(6, 200, Coupling::Linear(0.8), 13);
        let reference = infer_network_resumable(&matrix, &cfg(), None, 4, |_| true)
            .expect("reference finishes");

        // Interrupt after the second of the per-tile checkpoints.
        let mut seen = 0;
        let interrupted = infer_network_resumable(&matrix, &cfg(), None, 1, |_| {
            seen += 1;
            seen < 2
        });
        let checkpoint = interrupted.expect_err("must be interrupted");
        assert!(checkpoint.tiles_done > 0);
        assert!(checkpoint.tiles_done < TileSpace::new(12, 6).tiles().len() * 100); // sanity

        // Resume to completion.
        let resumed = infer_network_resumable(&matrix, &cfg(), Some(checkpoint), 4, |_| true)
            .expect("resume finishes");
        assert_eq!(
            resumed
                .network
                .edges()
                .iter()
                .map(|e| e.key())
                .collect::<Vec<_>>(),
            reference
                .network
                .edges()
                .iter()
                .map(|e| e.key())
                .collect::<Vec<_>>()
        );
        assert_eq!(resumed.stats.candidates, reference.stats.candidates);
    }

    #[test]
    #[should_panic(expected = "does not match this run")]
    fn foreign_checkpoint_rejected() {
        let (matrix, _) = coupled_pairs(4, 100, Coupling::Linear(0.8), 1);
        let (other, _) = coupled_pairs(5, 100, Coupling::Linear(0.8), 1);
        let cp =
            infer_network_resumable(&other, &cfg(), None, 2, |_| false).expect_err("interrupted");
        let _ = infer_network_resumable(&matrix, &cfg(), Some(cp), 2, |_| true);
    }

    #[test]
    fn checkpoint_serde_roundtrip() {
        let (matrix, _) = coupled_pairs(4, 120, Coupling::Linear(0.9), 3);
        let cp =
            infer_network_resumable(&matrix, &cfg(), None, 2, |_| false).expect_err("interrupted");
        let json = serde_json::to_string(&cp).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cp);
        // And the deserialized checkpoint actually resumes.
        let done =
            infer_network_resumable(&matrix, &cfg(), Some(back), 2, |_| true).expect("finishes");
        assert_eq!(done.stats.pairs, 28); // C(8,2) — 4 coupled pairs = 8 genes
    }

    #[test]
    fn execution_report_covers_every_chunk() {
        // Regression: the report used to be overwritten per chunk, so a
        // multi-chunk run reported only the *final* chunk's tiles/pairs.
        let (matrix, _) = coupled_pairs(6, 150, Coupling::Linear(0.8), 5);
        let r = infer_network_resumable(&matrix, &cfg(), None, 1, |_| true).expect("finishes");
        let tiles = TileSpace::new(12, 6).tiles().len();
        assert!(tiles > 1, "test must span multiple chunks");
        assert_eq!(
            r.stats.execution.total_pairs(),
            r.stats.pairs,
            "execution report must account for all pairs, not the last chunk"
        );
        assert_eq!(r.stats.execution.total_tiles(), tiles);
        assert!(r.stats.execution.elapsed > std::time::Duration::ZERO);
    }

    #[test]
    fn resumed_run_reports_only_its_own_tiles() {
        // A resumed invocation accounts for the tiles *it* processed; the
        // interrupted prefix was accounted by the first invocation.
        let (matrix, _) = coupled_pairs(6, 150, Coupling::Linear(0.8), 5);
        let mut seen = 0;
        let cp = infer_network_resumable(&matrix, &cfg(), None, 1, |_| {
            seen += 1;
            seen < 2
        })
        .expect_err("interrupted");
        let done_before = cp.tiles_done;
        let total_tiles = TileSpace::new(12, 6).tiles().len();
        let resumed =
            infer_network_resumable(&matrix, &cfg(), Some(cp), 1, |_| true).expect("finishes");
        assert_eq!(
            resumed.stats.execution.total_tiles(),
            total_tiles - done_before
        );
    }

    #[test]
    fn traced_resumable_run_emits_chunk_events() {
        let (matrix, _) = coupled_pairs(5, 120, Coupling::Linear(0.85), 17);
        let rec = Recorder::enabled();
        let r = infer_network_resumable_traced(&matrix, &cfg(), None, 1, |_| true, &rec)
            .expect("finishes");
        let tiles = r.stats.execution.total_tiles();
        assert_eq!(rec.event_count("checkpoint.chunk"), tiles); // chunk_tiles=1
        assert_eq!(
            rec.histogram(gnet_parallel::HIST_TILE_US)
                .expect("tile histogram recorded")
                .count(),
            tiles as u64
        );
        assert!(rec.span_count() >= 3);
    }

    #[test]
    #[should_panic(expected = "exact null strategy")]
    fn early_exit_strategy_rejected() {
        let (matrix, _) = coupled_pairs(3, 60, Coupling::Linear(0.5), 2);
        let bad = InferenceConfig {
            null_strategy: NullStrategy::EarlyExit,
            mi_threshold: Some(0.1),
            ..cfg()
        };
        let _ = infer_network_resumable(&matrix, &bad, None, 2, |_| true);
    }
}
