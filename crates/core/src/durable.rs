//! Durable, integrity-checked checkpoint files and the resume driver.
//!
//! [`crate::checkpoint`] made progress *mergeable*; this module makes it
//! *survivable*. A [`CheckpointStore`] persists every chunk boundary as a
//! single-file checkpoint written atomically (temp file + `fsync` +
//! rename), so a kill at any instant leaves either the previous complete
//! checkpoint or the new complete checkpoint on disk — never a torn one.
//!
//! ## File schema v1
//!
//! All integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"GNETCKP\x01"
//! 8       4     version (= 1)
//! 12      8     payload length in bytes
//! 20      8     FNV-1a 64 digest of the payload bytes
//! 28      …     payload
//! ```
//!
//! Payload (f64 values stored as raw IEEE-754 bits, so resumed pooled
//! moments are **bit-identical** to the in-memory accumulator):
//!
//! ```text
//! u64  run digest (see [`crate::checkpoint::run_digest_for`])
//! u64  tiles_done
//! u64  pooled.count       u64 pooled.mean bits
//! u64  pooled.m2 bits     u64 pooled.max bits
//! u64  joints
//! u32  candidate count, then per candidate: u32 i, u32 j, u64 MI bits
//! ```
//!
//! Every load re-verifies the FNV digest and the run digest: a corrupted
//! or stale file yields a typed [`CheckpointError`], never a panic and
//! never a silently wrong network.
//!
//! Fault points (temp-file write, rename, read-back, payload bytes) are
//! routed through a [`FaultInjector`], so the chaos suite can exercise
//! torn writes and silent corruption deterministically.

use crate::checkpoint::{infer_network_resumable_traced, run_digest_for, Checkpoint};
use crate::config::InferenceConfig;
use crate::result::InferenceResult;
use gnet_expr::ExpressionMatrix;
use gnet_fault::{names, FaultInjector, IoOp};
use gnet_permute::PooledNull;
use gnet_trace::{Recorder, Value};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: [u8; 8] = *b"GNETCKP\x01";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 28;

/// Name of the durable checkpoint file inside the store directory.
pub const CHECKPOINT_FILE: &str = "gnet.ckpt";
const TMP_FILE: &str = "gnet.ckpt.tmp";

/// Why a durable checkpoint could not be saved, loaded, or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed; names the path and operation.
    Io {
        /// File or directory the operation targeted.
        path: PathBuf,
        /// What was being attempted (`"write"`, `"rename"`, …).
        op: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// The file is structurally invalid (bad magic, truncated, …).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What exactly was malformed.
        reason: String,
    },
    /// The payload bytes do not match their integrity digest: the file
    /// was damaged after it was written.
    IntegrityMismatch {
        /// Offending file.
        path: PathBuf,
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the bytes actually on disk.
        found: u64,
    },
    /// The checkpoint is valid but belongs to a different run (other
    /// matrix, config, or tiling).
    StaleRun {
        /// Offending file.
        path: PathBuf,
        /// Run digest of the current configuration.
        expected: u64,
        /// Run digest stored in the checkpoint.
        found: u64,
    },
    /// No checkpoint file exists at the expected path.
    Missing {
        /// Path that was probed.
        path: PathBuf,
    },
    /// The run was interrupted at a chunk boundary (an injected crash or
    /// an external stop) *after* its checkpoint was durably written;
    /// re-running with `resume` continues from `tiles_done`.
    Interrupted {
        /// Tiles completed and checkpointed before the interruption.
        tiles_done: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, op, source } => {
                write!(
                    f,
                    "checkpoint {op} failed for `{}`: {source}",
                    path.display()
                )
            }
            Self::Corrupt { path, reason } => {
                write!(f, "corrupt checkpoint `{}`: {reason}", path.display())
            }
            Self::IntegrityMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint `{}` failed integrity check \
                 (digest {expected:#018x} recorded, {found:#018x} on disk); \
                 the file was corrupted after writing — delete it and restart",
                path.display()
            ),
            Self::StaleRun {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint `{}` belongs to a different run \
                 (run digest {found:#018x}, current run is {expected:#018x}); \
                 matrix, config, or tiling changed — delete it or restart without --resume",
                path.display()
            ),
            Self::Missing { path } => {
                write!(f, "no checkpoint at `{}`", path.display())
            }
            Self::Interrupted { tiles_done } => write!(
                f,
                "run interrupted at a chunk boundary with {tiles_done} tiles \
                 checkpointed; re-run with resume to continue"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_payload(cp: &Checkpoint) -> Vec<u8> {
    let (count, mean, m2, max) = cp.pooled.raw_parts();
    let mut out = Vec::with_capacity(8 * 7 + 4 + cp.candidates.len() * 16);
    out.extend_from_slice(&cp.digest.to_le_bytes());
    out.extend_from_slice(&(cp.tiles_done as u64).to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&mean.to_bits().to_le_bytes());
    out.extend_from_slice(&m2.to_bits().to_le_bytes());
    out.extend_from_slice(&max.to_bits().to_le_bytes());
    out.extend_from_slice(&cp.joints.to_le_bytes());
    out.extend_from_slice(&(cp.candidates.len() as u32).to_le_bytes());
    for &(i, j, v) in &cp.candidates {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&j.to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Bounds-checked little-endian reader; every underflow is a typed
/// reason, never a slice panic.
pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(format!(
                "truncated while reading {what} at offset {} (need {n} bytes, {} left)",
                self.pos,
                self.buf.len() - self.pos
            )),
        }
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn decode_payload(payload: &[u8]) -> Result<Checkpoint, String> {
    let mut r = Reader::new(payload);
    let digest = r.u64("run digest")?;
    let tiles_done = r.u64("tiles_done")? as usize;
    let count = r.u64("pooled count")?;
    let mean = r.f64("pooled mean")?;
    let m2 = r.f64("pooled m2")?;
    let max = r.f64("pooled max")?;
    let joints = r.u64("joints")?;
    let n = r.u32("candidate count")? as usize;
    // A candidate is 16 bytes; reject counts the remaining bytes cannot
    // hold before allocating.
    if r.remaining() != n * 16 {
        return Err(format!(
            "candidate section length mismatch: {n} candidates declared, \
             {} bytes remain (need {})",
            r.remaining(),
            n * 16
        ));
    }
    let mut candidates = Vec::with_capacity(n);
    for idx in 0..n {
        let i = r.u32("candidate gene i")?;
        let j = r.u32("candidate gene j")?;
        let v = r.f64("candidate MI")?;
        if i >= j {
            return Err(format!("candidate {idx} is not upper-triangular ({i},{j})"));
        }
        candidates.push((i, j, v));
    }
    Ok(Checkpoint {
        digest,
        tiles_done,
        pooled: PooledNull::from_raw_parts(count, mean, m2, max),
        candidates,
        joints,
    })
}

/// A directory holding one durable checkpoint, written atomically.
///
/// The default store is fault-free; [`CheckpointStore::with_faults`]
/// routes the write/rename/read fault points and payload bytes through a
/// [`FaultInjector`] for chaos testing.
pub struct CheckpointStore {
    dir: PathBuf,
    injector: FaultInjector,
    rec: Recorder,
}

impl CheckpointStore {
    /// Store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_faults(dir, FaultInjector::none(), &Recorder::disabled())
    }

    /// Store with fault injection and trace recording wired in.
    pub fn with_faults(dir: impl Into<PathBuf>, injector: FaultInjector, rec: &Recorder) -> Self {
        Self {
            dir: dir.into(),
            injector,
            rec: rec.clone(),
        }
    }

    /// The injector this store consults (shared with the resume driver).
    #[must_use]
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Path of the durable checkpoint file.
    #[must_use]
    pub fn path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    fn tmp_path(&self) -> PathBuf {
        self.dir.join(TMP_FILE)
    }

    /// Atomically persist `cp`: encode, write to a temp file, `fsync`,
    /// rename over the durable name, and `fsync` the directory.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] naming the path and operation that failed
    /// (including injected faults).
    pub fn save(&self, cp: &Checkpoint) -> Result<(), CheckpointError> {
        fs::create_dir_all(&self.dir).map_err(|source| CheckpointError::Io {
            path: self.dir.clone(),
            op: "create-dir",
            source,
        })?;
        let mut payload = encode_payload(cp);
        // The integrity digest covers the *intended* bytes; injected
        // flips happen after, modeling media corruption that load()
        // must catch.
        let integrity = fnv1a64(&payload);
        self.injector.corrupt_checkpoint(&mut payload);

        let mut file_bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        file_bytes.extend_from_slice(&MAGIC);
        file_bytes.extend_from_slice(&VERSION.to_le_bytes());
        file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file_bytes.extend_from_slice(&integrity.to_le_bytes());
        file_bytes.extend_from_slice(&payload);

        let tmp = self.tmp_path();
        if let Some(source) = self.injector.on_io(IoOp::Write) {
            return Err(CheckpointError::Io {
                path: tmp,
                op: "write",
                source,
            });
        }
        write_durably(&tmp, &file_bytes).map_err(|source| CheckpointError::Io {
            path: tmp.clone(),
            op: "write",
            source,
        })?;
        if let Some(source) = self.injector.on_io(IoOp::Rename) {
            return Err(CheckpointError::Io {
                path: self.path(),
                op: "rename",
                source,
            });
        }
        fs::rename(&tmp, self.path()).map_err(|source| CheckpointError::Io {
            path: self.path(),
            op: "rename",
            source,
        })?;
        // Durability of the rename itself. Some filesystems refuse
        // directory handles; the rename is still atomic, so best-effort.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.rec.event(
            "checkpoint.saved",
            &[
                ("tiles_done", Value::from(cp.tiles_done)),
                ("bytes", Value::from(file_bytes.len())),
            ],
        );
        Ok(())
    }

    /// Load and fully validate the durable checkpoint.
    ///
    /// # Errors
    /// [`CheckpointError::Missing`] when no file exists; `Io`, `Corrupt`,
    /// or `IntegrityMismatch` when the file cannot be trusted.
    pub fn load(&self) -> Result<Checkpoint, CheckpointError> {
        let path = self.path();
        if let Some(source) = self.injector.on_io(IoOp::Read) {
            return Err(CheckpointError::Io {
                path,
                op: "read",
                source,
            });
        }
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(CheckpointError::Missing { path })
            }
            Err(source) => {
                return Err(CheckpointError::Io {
                    path,
                    op: "read",
                    source,
                })
            }
        };
        let corrupt = |reason: String| CheckpointError::Corrupt {
            path: path.clone(),
            reason,
        };
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt("bad magic; not a gnet checkpoint file".into()));
        }
        let mut header = Reader::new(&bytes[8..HEADER_LEN]);
        let version = header.u32("version").map_err(&corrupt)?;
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported checkpoint version {version} (this build reads v{VERSION})"
            )));
        }
        let payload_len = header.u64("payload length").map_err(&corrupt)? as usize;
        let expected = header.u64("integrity digest").map_err(&corrupt)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(corrupt(format!(
                "payload length mismatch: header declares {payload_len} bytes, \
                 file holds {}",
                payload.len()
            )));
        }
        let found = fnv1a64(payload);
        if found != expected {
            return Err(CheckpointError::IntegrityMismatch {
                path,
                expected,
                found,
            });
        }
        decode_payload(payload).map_err(corrupt)
    }

    /// [`Self::load`], additionally rejecting checkpoints whose run
    /// digest differs from `expected_digest`.
    ///
    /// # Errors
    /// Everything [`Self::load`] returns, plus
    /// [`CheckpointError::StaleRun`] on a digest mismatch.
    pub fn load_for_run(&self, expected_digest: u64) -> Result<Checkpoint, CheckpointError> {
        let cp = self.load()?;
        if cp.digest != expected_digest {
            return Err(CheckpointError::StaleRun {
                path: self.path(),
                expected: expected_digest,
                found: cp.digest,
            });
        }
        Ok(cp)
    }

    /// Remove the checkpoint (and any stray temp file) if present.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on a filesystem failure other than the
    /// files already being absent.
    pub fn clear(&self) -> Result<(), CheckpointError> {
        for path in [self.path(), self.tmp_path()] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(source) => {
                    return Err(CheckpointError::Io {
                        path,
                        op: "remove",
                        source,
                    })
                }
            }
        }
        Ok(())
    }
}

pub(crate) fn write_durably(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Run inference with durable checkpointing every `checkpoint_every`
/// tiles, optionally resuming from the store's checkpoint.
///
/// On a clean finish the checkpoint file is left in place: re-running
/// with `resume` is idempotent (the completed prefix covers every tile,
/// so the run finalizes immediately with the identical network). Stale
/// or corrupt files are rejected up front with a typed error.
///
/// If the store's [`FaultInjector`] schedules a chunk-boundary crash,
/// the run stops *after* that boundary's checkpoint is durably written
/// and reports [`CheckpointError::Interrupted`] — the simulated kill the
/// chaos suite resumes from.
///
/// # Errors
/// Any [`CheckpointError`] from validating, saving, or resuming.
///
/// # Panics
/// Panics on config/matrix violations or `checkpoint_every == 0`, like
/// [`infer_network_resumable_traced`].
pub fn infer_network_durable(
    matrix: &ExpressionMatrix,
    config: &InferenceConfig,
    store: &CheckpointStore,
    checkpoint_every: usize,
    resume: bool,
    rec: &Recorder,
) -> Result<InferenceResult, CheckpointError> {
    let digest = run_digest_for(matrix, config);
    let resume_from = if resume {
        match store.load_for_run(digest) {
            Ok(cp) => {
                rec.counter_add(names::CNT_RESUMES, 1);
                rec.event(
                    names::EVT_RESUMED,
                    &[("tiles_done", Value::from(cp.tiles_done))],
                );
                Some(cp)
            }
            Err(CheckpointError::Missing { .. }) => None,
            Err(e) => return Err(e),
        }
    } else {
        None
    };

    let injector = store.injector.clone();
    let mut boundary = 0usize;
    let mut save_err: Option<CheckpointError> = None;
    let outcome = infer_network_resumable_traced(
        matrix,
        config,
        resume_from,
        checkpoint_every,
        |cp| {
            if let Err(e) = store.save(cp) {
                save_err = Some(e);
                return false;
            }
            let b = boundary;
            boundary += 1;
            // Crash *after* the durable write: the checkpoint for this
            // boundary survives the kill, which is what resume tests.
            !injector.should_crash_at_chunk(b)
        },
        rec,
    );
    if let Some(e) = save_err {
        return Err(e);
    }
    match outcome {
        Ok(result) => Ok(result),
        Err(cp) => Err(CheckpointError::Interrupted {
            tiles_done: cp.tiles_done,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::infer_network_resumable;
    use gnet_expr::synth::{coupled_pairs, Coupling};
    use gnet_fault::{Fault, FaultPlan};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            permutations: 10,
            threads: Some(2),
            tile_size: Some(6),
            // Static partition: per-thread state contents (and therefore
            // pooled-merge order) are reproducible, which the bit-identical
            // assertions below rely on.
            scheduler: gnet_parallel::SchedulerPolicy::StaticCyclic,
            ..InferenceConfig::default()
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        // ordering: test-local unique-id counter; no synchronization needed.
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gnet-durable-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir must be creatable");
        dir
    }

    fn interrupted_checkpoint() -> (gnet_expr::ExpressionMatrix, Checkpoint) {
        let (matrix, _) = coupled_pairs(6, 180, Coupling::Linear(0.85), 21);
        let cp = infer_network_resumable(&matrix, &cfg(), None, 1, |_| false)
            .expect_err("interrupted after first chunk");
        (matrix, cp)
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let (_, cp) = interrupted_checkpoint();
        let store = CheckpointStore::new(tmpdir("roundtrip"));
        store.save(&cp).expect("save succeeds");
        let back = store.load().expect("load succeeds");
        assert_eq!(back, cp);
        // Bit-level equality of the pooled moments, not just PartialEq.
        let (c0, m0, s0, x0) = cp.pooled.raw_parts();
        let (c1, m1, s1, x1) = back.pooled.raw_parts();
        assert_eq!(c0, c1);
        assert_eq!(m0.to_bits(), m1.to_bits());
        assert_eq!(s0.to_bits(), s1.to_bits());
        assert_eq!(x0.to_bits(), x1.to_bits());
        // Atomic write leaves no temp file behind.
        assert!(!store.tmp_path().exists());
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let store = CheckpointStore::new(tmpdir("missing"));
        assert!(matches!(store.load(), Err(CheckpointError::Missing { .. })));
    }

    #[test]
    fn truncated_and_garbage_files_are_rejected_not_panicked() {
        let (_, cp) = interrupted_checkpoint();
        let store = CheckpointStore::new(tmpdir("truncate"));
        store.save(&cp).expect("save succeeds");
        let full = fs::read(store.path()).expect("file readable");
        // Every proper prefix must fail with a typed error.
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN, full.len() - 1] {
            fs::write(store.path(), &full[..cut]).expect("rewrite");
            let err = store.load().expect_err("truncated file must be rejected");
            assert!(
                matches!(
                    err,
                    CheckpointError::Corrupt { .. } | CheckpointError::IntegrityMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
        // Garbage with the right length but wrong magic.
        fs::write(store.path(), vec![0xAB; full.len()]).expect("rewrite");
        let err = store.load().expect_err("garbage rejected");
        assert!(matches!(err, CheckpointError::Corrupt { reason, .. } if reason.contains("magic")));
    }

    #[test]
    fn flipped_payload_byte_fails_the_integrity_check() {
        let (_, cp) = interrupted_checkpoint();
        let store = CheckpointStore::new(tmpdir("flip"));
        store.save(&cp).expect("save succeeds");
        let mut bytes = fs::read(store.path()).expect("file readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        fs::write(store.path(), &bytes).expect("rewrite");
        assert!(matches!(
            store.load(),
            Err(CheckpointError::IntegrityMismatch { .. })
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let (_, cp) = interrupted_checkpoint();
        let store = CheckpointStore::new(tmpdir("version"));
        store.save(&cp).expect("save succeeds");
        let mut bytes = fs::read(store.path()).expect("file readable");
        bytes[8] = 9; // version field
        fs::write(store.path(), &bytes).expect("rewrite");
        let err = store.load().expect_err("future version rejected");
        assert!(
            matches!(err, CheckpointError::Corrupt { reason, .. } if reason.contains("version"))
        );
    }

    #[test]
    fn stale_run_digest_is_rejected() {
        let (_, cp) = interrupted_checkpoint();
        let store = CheckpointStore::new(tmpdir("stale"));
        store.save(&cp).expect("save succeeds");
        let err = store
            .load_for_run(cp.digest ^ 1)
            .expect_err("foreign digest rejected");
        assert!(matches!(err, CheckpointError::StaleRun { .. }));
    }

    #[test]
    fn injected_write_fault_surfaces_as_io_error_naming_the_path() {
        let (_, cp) = interrupted_checkpoint();
        let plan = FaultPlan::new(3).with(Fault::IoError {
            op: IoOp::Write,
            nth: 0,
        });
        let store = CheckpointStore::with_faults(
            tmpdir("iofault"),
            FaultInjector::from_plan(&plan),
            &Recorder::disabled(),
        );
        let err = store.save(&cp).expect_err("injected write fault");
        let text = err.to_string();
        assert!(text.contains("write failed"), "{text}");
        assert!(text.contains(TMP_FILE), "{text}");
        // The next save (nth=1) succeeds.
        store.save(&cp).expect("second save unaffected");
    }

    #[test]
    fn injected_bit_flip_is_caught_on_load() {
        let (_, cp) = interrupted_checkpoint();
        let plan = FaultPlan::new(3).with(Fault::FlipBit {
            write: 0,
            byte: 40,
            bit: 2,
        });
        let store = CheckpointStore::with_faults(
            tmpdir("bitflip"),
            FaultInjector::from_plan(&plan),
            &Recorder::disabled(),
        );
        store.save(&cp).expect("save itself succeeds");
        assert!(matches!(
            store.load(),
            Err(CheckpointError::IntegrityMismatch { .. })
        ));
    }

    #[test]
    fn durable_crash_then_resume_matches_uninterrupted_run_bitwise() {
        let (matrix, _) = coupled_pairs(6, 180, Coupling::Linear(0.85), 33);
        let reference = infer_network_durable(
            &matrix,
            &cfg(),
            &CheckpointStore::new(tmpdir("ref")),
            2,
            false,
            &Recorder::disabled(),
        )
        .expect("uninterrupted run finishes");

        let dir = tmpdir("crashresume");
        let plan = FaultPlan::new(11).with(Fault::CrashAtChunk { boundary: 1 });
        let rec = Recorder::enabled();
        let store =
            CheckpointStore::with_faults(&dir, FaultInjector::from_plan_traced(&plan, &rec), &rec);
        let err = infer_network_durable(&matrix, &cfg(), &store, 2, false, &rec)
            .expect_err("injected crash interrupts");
        assert!(matches!(err, CheckpointError::Interrupted { tiles_done } if tiles_done > 0));
        assert_eq!(rec.event_count(gnet_fault::names::EVT_CHUNK_CRASH), 1);

        // "Restart the process": a fresh fault-free store on the same dir.
        let rec2 = Recorder::enabled();
        let store2 = CheckpointStore::with_faults(&dir, FaultInjector::none(), &rec2);
        let resumed = infer_network_durable(&matrix, &cfg(), &store2, 2, true, &rec2)
            .expect("resume finishes");
        assert_eq!(rec2.counter(gnet_fault::names::CNT_RESUMES), Some(1));

        let ref_keys: Vec<_> = reference.network.edges().iter().map(|e| e.key()).collect();
        let res_keys: Vec<_> = resumed.network.edges().iter().map(|e| e.key()).collect();
        assert_eq!(ref_keys, res_keys);
        assert_eq!(
            reference.stats.threshold.to_bits(),
            resumed.stats.threshold.to_bits(),
            "pooled-null threshold must be bit-identical"
        );
        assert_eq!(
            reference.stats.joints_evaluated,
            resumed.stats.joints_evaluated
        );
    }

    #[test]
    fn resume_after_completion_is_idempotent() {
        let (matrix, _) = coupled_pairs(5, 150, Coupling::Linear(0.85), 9);
        let store = CheckpointStore::new(tmpdir("idempotent"));
        let first = infer_network_durable(&matrix, &cfg(), &store, 2, false, &Recorder::disabled())
            .expect("first run finishes");
        let again = infer_network_durable(&matrix, &cfg(), &store, 2, true, &Recorder::disabled())
            .expect("idempotent resume");
        let a: Vec<_> = first.network.edges().iter().map(|e| e.key()).collect();
        let b: Vec<_> = again.network.edges().iter().map(|e| e.key()).collect();
        assert_eq!(a, b);
        assert_eq!(
            first.stats.threshold.to_bits(),
            again.stats.threshold.to_bits()
        );
    }

    #[test]
    fn clear_removes_the_checkpoint() {
        let (_, cp) = interrupted_checkpoint();
        let store = CheckpointStore::new(tmpdir("clear"));
        store.save(&cp).expect("save succeeds");
        assert!(store.path().exists());
        store.clear().expect("clear succeeds");
        assert!(!store.path().exists());
        assert!(matches!(store.load(), Err(CheckpointError::Missing { .. })));
        store.clear().expect("clear is idempotent");
    }
}
