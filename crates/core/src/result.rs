//! Pipeline output types.

use gnet_graph::GeneNetwork;
use gnet_parallel::ExecutionReport;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Statistics of one inference run, for the evaluation harness.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Wall time of preprocessing + per-gene preparation.
    pub prep_time: Duration,
    /// Wall time of the tiled pairwise MI stage.
    pub mi_time: Duration,
    /// Wall time of thresholding + network assembly.
    pub finalize_time: Duration,
    /// Total pairs evaluated.
    pub pairs: u64,
    /// Pairs that beat all of their own permutation nulls (candidates).
    pub candidates: u64,
    /// Joint-entropy evaluations performed in the MI stage (the exact
    /// strategy does `pairs × (q + 1)`; early exit does far fewer).
    pub joints_evaluated: u64,
    /// The global threshold `I*` applied (nats).
    pub threshold: f64,
    /// Pooled-null mean (nats).
    pub null_mean: f64,
    /// Pooled-null standard deviation (nats).
    pub null_sd: f64,
    /// Tile size used.
    pub tile_size: usize,
    /// Threads used.
    pub threads: usize,
    /// Per-thread scheduling statistics of the MI stage.
    pub execution: ExecutionReport,
}

impl RunStats {
    /// Pairs per second through the MI stage.
    pub fn pair_rate(&self) -> f64 {
        let secs = self.mi_time.as_secs_f64();
        if secs > 0.0 {
            self.pairs as f64 / secs
        } else {
            0.0
        }
    }

    /// Total wall time of the run.
    pub fn total_time(&self) -> Duration {
        self.prep_time + self.mi_time + self.finalize_time
    }
}

/// The pipeline's complete output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferenceResult {
    /// The inferred significant-MI network.
    pub network: GeneNetwork,
    /// Run statistics.
    pub stats: RunStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_rate_handles_zero_time() {
        let s = RunStats::default();
        assert_eq!(s.pair_rate(), 0.0);
    }

    #[test]
    fn totals_add_up() {
        let s = RunStats {
            prep_time: Duration::from_millis(10),
            mi_time: Duration::from_millis(100),
            finalize_time: Duration::from_millis(5),
            pairs: 1000,
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(115));
        assert!((s.pair_rate() - 10_000.0).abs() < 1.0);
    }
}
