//! Memory planning for whole-genome runs.
//!
//! The Xeon Phi the paper targets has 8 GB of on-card GDDR5, and the
//! whole-genome problem is sized uncomfortably close to it: the raw
//! matrix is ~195 MB, the per-gene sparse weight matrices ~684 MB, and
//! every worker thread additionally materializes the dense lane-padded
//! expansions of its current tile's column genes. This module makes those
//! footprints explicit so callers can pick a tile size that fits a memory
//! budget *before* starting a multi-hour run.

use crate::config::InferenceConfig;
use serde::{Deserialize, Serialize};

/// Byte-level footprint model of one inference run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Number of genes `n`.
    pub genes: usize,
    /// Number of samples `m`.
    pub samples: usize,
    /// Spline order `k`.
    pub order: usize,
    /// Lane-padded bins of the dense layout.
    pub bins_padded: usize,
    /// Permutations `q`.
    pub permutations: usize,
}

impl MemoryPlan {
    /// Build a plan from a config and matrix shape.
    pub fn new(config: &InferenceConfig, genes: usize, samples: usize) -> Self {
        config.validate();
        let lanes = 16; // F32x16 padding of the dense layout
        Self {
            genes,
            samples,
            order: config.spline_order,
            bins_padded: config.bins.div_ceil(lanes) * lanes,
            permutations: config.permutations,
        }
    }

    /// Raw expression matrix bytes (`n × m × 4`).
    pub fn matrix_bytes(&self) -> usize {
        self.genes * self.samples * 4
    }

    /// All sparse weight matrices (`n × m × (4k + 2)`), resident for the
    /// whole run.
    pub fn prepared_bytes(&self) -> usize {
        self.genes * self.samples * (4 * self.order + 2)
    }

    /// Shared permutation set (`q × m × 4`).
    pub fn permutations_bytes(&self) -> usize {
        self.permutations * self.samples * 4
    }

    /// One thread's dense expansion of a tile's column genes
    /// (`tile × m × bins_padded × 4`) plus its joint grid.
    pub fn per_thread_tile_bytes(&self, tile: usize) -> usize {
        tile * self.samples * self.bins_padded * 4 + self.bins_padded * self.bins_padded * 4
    }

    /// Peak resident bytes with `threads` workers at tile size `tile`.
    pub fn peak_bytes(&self, tile: usize, threads: usize) -> usize {
        self.matrix_bytes()
            + self.prepared_bytes()
            + self.permutations_bytes()
            + threads * self.per_thread_tile_bytes(tile)
    }

    /// Largest tile size whose peak stays within `budget_bytes`, or
    /// `None` if even tile 1 does not fit (the fixed state alone exceeds
    /// the budget).
    pub fn max_tile_for_budget(&self, budget_bytes: usize, threads: usize) -> Option<usize> {
        let fixed = self.matrix_bytes() + self.prepared_bytes() + self.permutations_bytes();
        let grid = self.bins_padded * self.bins_padded * 4;
        let per_thread_fixed = threads * grid;
        if fixed + per_thread_fixed + threads * self.samples * self.bins_padded * 4 > budget_bytes {
            return None;
        }
        let spare = budget_bytes - fixed - per_thread_fixed;
        let per_gene = self.samples * self.bins_padded * 4;
        Some((spare / (threads * per_gene)).min(self.genes).max(1))
    }

    /// Human-readable footprint summary.
    pub fn summary(&self, tile: usize, threads: usize) -> String {
        let gb = |b: usize| b as f64 / (1024.0 * 1024.0 * 1024.0);
        format!(
            "matrix {:.2} GiB + weights {:.2} GiB + perms {:.3} GiB + {} threads × tile {} ({:.2} GiB) = peak {:.2} GiB",
            gb(self.matrix_bytes()),
            gb(self.prepared_bytes()),
            gb(self.permutations_bytes()),
            threads,
            tile,
            gb(threads * self.per_thread_tile_bytes(tile)),
            gb(self.peak_bytes(tile, threads)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn headline_plan() -> MemoryPlan {
        MemoryPlan::new(&InferenceConfig::default(), 15_575, 3_137)
    }

    #[test]
    fn headline_footprints_match_hand_arithmetic() {
        let p = headline_plan();
        assert_eq!(p.matrix_bytes(), 15_575 * 3_137 * 4); // ≈ 195 MB
        assert_eq!(p.prepared_bytes(), 15_575 * 3_137 * 14); // ≈ 684 MB
        assert_eq!(p.permutations_bytes(), 30 * 3_137 * 4);
        assert_eq!(p.bins_padded, 16);
        // One thread at T=64: 64 × 3,137 × 16 × 4 ≈ 12.8 MB + grid.
        let per = p.per_thread_tile_bytes(64);
        assert!((12_800_000..13_000_000).contains(&per), "{per}");
    }

    #[test]
    fn headline_fits_the_phis_8_gb_at_the_paper_operating_point() {
        let p = headline_plan();
        let budget = 8usize * 1024 * 1024 * 1024;
        // 244 threads with the cache-rule tile (T=5 for 44 KB genes in a
        // 512 KB L2 share) sits far inside the card.
        assert!(p.peak_bytes(5, 244) < budget);
        // And the planner can tell how far tiles could grow.
        let max_tile = p.max_tile_for_budget(budget, 244).unwrap();
        assert!(max_tile >= 64, "8 GB admits large tiles, got {max_tile}");
        assert!(p.peak_bytes(max_tile, 244) <= budget);
        assert!(
            p.peak_bytes(max_tile + 1, 244) > budget || max_tile == p.genes,
            "planner answer must be maximal"
        );
    }

    #[test]
    fn budget_solver_is_inverse_of_peak() {
        let p = MemoryPlan::new(&InferenceConfig::default(), 2_048, 1_000);
        for threads in [1usize, 4, 61] {
            for budget_mb in [64usize, 256, 1024] {
                let budget = budget_mb * 1024 * 1024;
                match p.max_tile_for_budget(budget, threads) {
                    Some(tile) => {
                        assert!(
                            p.peak_bytes(tile, threads) <= budget,
                            "threads={threads} budget={budget_mb}MB tile={tile}"
                        );
                    }
                    None => {
                        assert!(p.peak_bytes(1, threads) > budget);
                    }
                }
            }
        }
    }

    #[test]
    fn too_small_budget_is_reported_as_unfittable() {
        let p = headline_plan();
        assert_eq!(p.max_tile_for_budget(100 * 1024 * 1024, 244), None);
    }

    #[test]
    fn peak_is_monotone_in_tile_and_threads() {
        let p = MemoryPlan::new(&InferenceConfig::default(), 1_000, 500);
        assert!(p.peak_bytes(8, 4) < p.peak_bytes(16, 4));
        assert!(p.peak_bytes(8, 4) < p.peak_bytes(8, 8));
    }

    #[test]
    fn summary_mentions_all_components() {
        let p = headline_plan();
        let s = p.summary(64, 244);
        assert!(s.contains("matrix") && s.contains("weights") && s.contains("peak"));
    }
}
