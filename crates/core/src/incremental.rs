//! Incremental network updates over a persisted [`NetworkState`].
//!
//! A whole-genome compendium grows two ways — new genes (probes added to
//! the platform) and new samples (new experiments) — and a from-scratch
//! rebuild repeats `n(n−1)/2` pair evaluations to learn what one append
//! changed. This module recomputes only what the append invalidates:
//!
//! * **Gene append** keeps every stored per-gene artifact and every
//!   already-evaluated pair, and scans only the *frontier* — pairs with at
//!   least one new endpoint: `g·(N−g) + g·(g−1)/2` pairs for `g` appended
//!   genes out of `N` total, versus `N(N−1)/2` for a rebuild.
//! * **Sample append** merge-updates each gene's stored `(value, index)`
//!   sort order with the newly sorted appended block (two-pointer merge,
//!   no re-sort of the old samples), re-derives ranks and B-spline
//!   weights from the merged order, then rescans the pair space (every
//!   pair's MI depends on every sample, so the pair scan cannot shrink —
//!   the preprocessing can).
//!
//! Both paths are pinned by conformance oracle family 6 to be
//! **bit-identical** to a batch [`build_state`] over the concatenated
//! dataset: the canonical column-major pair order makes even the pooled
//! null's floating-point accumulation order match, so the resulting
//! [`NetworkState`] — candidates, pooled moments, threshold, edges — is
//! `assert_eq!`-equal, not merely close.
//!
//! [`update_durable`] adds crash durability: progress is checkpointed
//! every `chunk_pairs` evaluated pairs, and a kill at a progress boundary
//! ([`gnet_fault::Fault::UpdateCrash`]) resumes bit-identically because
//! per-pair MI is deterministic and the pooled accumulator round-trips
//! through its raw parts exactly.

use crate::config::{InferenceConfig, NullStrategy};
use crate::state::{GeneState, NetworkState, StateError, StateStore, UpdateProgress};
use gnet_bspline::{BsplineBasis, DenseWeights};
use gnet_expr::normalize::{rank_from_order, rank_sort_order};
use gnet_expr::ExpressionMatrix;
use gnet_fault::names;
use gnet_mi::{mi_with_nulls, MiKernel, MiScratch, PreparedGene};
use gnet_permute::{PermutationSet, PooledNull};
use gnet_trace::{Recorder, Value};
use std::fmt;

/// Which dimension an update appends along.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateMode {
    /// New genes with the same sample count as the state.
    Genes,
    /// New samples for exactly the state's gene set.
    Samples,
}

impl UpdateMode {
    /// Stable lowercase name (CLI flag values, progress encoding).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Genes => "genes",
            Self::Samples => "samples",
        }
    }

    pub(crate) fn tag(self) -> u8 {
        match self {
            Self::Genes => 0,
            Self::Samples => 1,
        }
    }
}

impl fmt::Display for UpdateMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an update actually did — the numbers the CLI and the bench
/// harness report.
#[derive(Clone, Copy, Debug)]
pub struct UpdateStats {
    /// Dimension appended along.
    pub mode: UpdateMode,
    /// Genes (or samples) appended.
    pub appended: usize,
    /// Pairs evaluated by this invocation (after any resume skip). For a
    /// fresh gene append this is exactly the frontier size
    /// `g·(N−g) + g·(g−1)/2`.
    pub pairs_scanned: u64,
    /// Pairs the invocation skipped because durable progress already
    /// covered them.
    pub pairs_resumed: u64,
    /// Joint-entropy evaluations performed by this invocation.
    pub joints: u64,
    /// Global threshold of the updated state.
    pub threshold: f64,
}

/// The canonical pair order every scan in this crate's serial paths uses:
/// column-major over `j ∈ [j_start, n)`, `i ∈ [0, j)`. A gene append's
/// frontier (`j_start = old gene count`) is then a strict *suffix* of the
/// full scan (`j_start = 0`), which is what makes incremental pooled-null
/// accumulation bit-identical to batch.
fn pair_frontier(j_start: usize, n: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for j in j_start..n {
        for i in 0..j {
            pairs.push((i as u32, j as u32));
        }
    }
    pairs
}

/// Accumulators of a (possibly resumed) pair scan.
struct ScanAcc {
    pooled: PooledNull,
    candidates: Vec<(u32, u32, f64)>,
    joints: u64,
    /// Pairs of the canonical order fully accounted for above.
    done: u64,
}

/// Evaluate `pairs[acc.done..]` in order, exactly as the batch pipeline
/// evaluates them, invoking `after_pair` once per newly completed pair
/// (the durable path checkpoints and injects crashes there).
#[allow(clippy::too_many_arguments)]
fn scan_pairs(
    prepared: &[PreparedGene],
    perms: &PermutationSet,
    kernel: MiKernel,
    explicit_threshold: Option<f64>,
    basis: &BsplineBasis,
    pairs: &[(u32, u32)],
    acc: &mut ScanAcc,
    mut after_pair: impl FnMut(&ScanAcc) -> Result<(), StateError>,
) -> Result<(), StateError> {
    let mut scratch = MiScratch::for_basis(basis);
    // Column gene j is densified once per j-run, mirroring the batch
    // pipeline's per-tile column expansion.
    let mut dense: Option<(u32, DenseWeights)> = None;
    for (k, &(i, j)) in pairs.iter().enumerate() {
        if (k as u64) < acc.done {
            continue;
        }
        let y_dense = match kernel {
            MiKernel::VectorDense => {
                if dense.as_ref().map(|(col, _)| *col) != Some(j) {
                    dense = Some((j, prepared[j as usize].to_dense()));
                }
                dense.as_ref().map(|(_, d)| d)
            }
            MiKernel::ScalarSparse => None,
        };
        let res = mi_with_nulls(
            kernel,
            &prepared[i as usize],
            &prepared[j as usize],
            y_dense,
            perms.as_vecs(),
            &mut scratch,
        );
        acc.joints += 1 + res.null.len() as u64;
        acc.pooled.extend(&res.null);
        if res.exceed_count() == 0 {
            let keep = match explicit_threshold {
                Some(t) => res.observed > t,
                None => true,
            };
            if keep {
                acc.candidates.push((i, j, res.observed));
            }
        }
        acc.done += 1;
        after_pair(acc)?;
    }
    Ok(())
}

fn gene_state_for(profile: Vec<f32>, basis: &BsplineBasis) -> GeneState {
    let order = rank_sort_order(&profile);
    let ranks = rank_from_order(&profile, &order);
    let PreparedGene { sparse, h_marginal } = PreparedGene::from_normalized(&ranks, basis);
    GeneState {
        profile,
        order,
        sparse,
        h_marginal,
    }
}

fn prepared_of(g: &GeneState) -> PreparedGene {
    PreparedGene {
        sparse: g.sparse.clone(),
        h_marginal: g.h_marginal,
    }
}

/// Build an updatable [`NetworkState`] from scratch — the batch side of
/// the batch-equivalence contract, and what `gnet infer --save-state`
/// runs. Serial by design: the canonical pair order *is* the spec that
/// incremental updates are pinned against; the resulting edge set matches
/// the tiled parallel [`crate::infer_network`] and differs from it only
/// in the last ulps of the pooled threshold (floating-point merge order).
///
/// # Panics
/// Panics on invalid configuration, fewer than two genes, or a
/// non-[`NullStrategy::ExactFull`] null strategy (early exit discards the
/// pooled moments an updatable state must keep).
#[must_use]
pub fn build_state(matrix: &ExpressionMatrix, config: &InferenceConfig) -> NetworkState {
    config.validate();
    assert!(
        matrix.genes() >= 2,
        "need at least two genes to build a network state"
    );
    assert!(
        matches!(config.null_strategy, NullStrategy::ExactFull),
        "updatable state requires the exact-full null strategy"
    );
    let basis = BsplineBasis::new(config.spline_order, config.bins);
    let genes: Vec<GeneState> = (0..matrix.genes())
        .map(|g| gene_state_for(matrix.gene(g).to_vec(), &basis))
        .collect();
    let prepared: Vec<PreparedGene> = genes.iter().map(prepared_of).collect();
    let perms = PermutationSet::generate(matrix.samples(), config.permutations, config.seed);
    let pairs = pair_frontier(0, matrix.genes());
    let mut acc = ScanAcc {
        pooled: PooledNull::new(),
        candidates: Vec::new(),
        joints: 0,
        done: 0,
    };
    scan_pairs(
        &prepared,
        &perms,
        config.kernel,
        config.mi_threshold,
        &basis,
        &pairs,
        &mut acc,
        |_| Ok(()),
    )
    .expect("in-memory scan has no fallible steps");
    NetworkState {
        bins: config.bins,
        spline_order: config.spline_order,
        permutations: config.permutations,
        seed: config.seed,
        alpha: config.alpha,
        mi_threshold: config.mi_threshold,
        kernel: config.kernel,
        names: matrix.gene_names().to_vec(),
        samples: matrix.samples(),
        genes,
        pooled: acc.pooled,
        joints: acc.joints,
        candidates: acc.candidates,
    }
}

/// Infer the update mode from the append matrix's shape, rejecting
/// ambiguous and incompatible shapes with a typed error.
///
/// # Errors
/// [`StateError::Append`] when the shape fits neither dimension, or fits
/// both (the caller must then say which it means).
pub fn detect_mode(
    state: &NetworkState,
    append: &ExpressionMatrix,
) -> Result<UpdateMode, StateError> {
    let gene_shaped = append.samples() == state.samples;
    let sample_shaped =
        append.genes() == state.gene_count() && append.gene_names() == &state.names[..];
    match (gene_shaped, sample_shaped) {
        (true, false) => Ok(UpdateMode::Genes),
        (false, true) => Ok(UpdateMode::Samples),
        (true, true) => Err(StateError::Append {
            reason: format!(
                "append shape {}×{} fits both a gene append and a sample \
                 append of this state; pass the mode explicitly",
                append.genes(),
                append.samples()
            ),
        }),
        (false, false) => Err(StateError::Append {
            reason: format!(
                "append shape {}×{} matches neither a gene append \
                 ({} samples required) nor a sample append ({} genes named \
                 as in the state required)",
                append.genes(),
                append.samples(),
                state.samples,
                state.gene_count()
            ),
        }),
    }
}

/// Deliberate defects for the family-6 conformance self-check: each
/// models a realistic incremental-engine bug that batch equivalence must
/// catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateMutation {
    /// Sample append concatenates the old and new sort orders instead of
    /// merging them — the cached ranks go stale across the append
    /// boundary.
    StaleRankCache,
    /// The scan silently drops the last frontier pair — a fencepost bug
    /// in frontier enumeration.
    SkippedFrontierPair,
    /// The pooled-null moments are not refreshed with the newly scanned
    /// nulls, so the global threshold is computed from stale evidence.
    UnrefreshedNullMoments,
}

impl UpdateMutation {
    /// Every mutation, for exhaustive self-check loops.
    pub const ALL: [Self; 3] = [
        Self::StaleRankCache,
        Self::SkippedFrontierPair,
        Self::UnrefreshedNullMoments,
    ];

    /// Stable identifier used in self-check reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::StaleRankCache => "stale-rank-cache",
            Self::SkippedFrontierPair => "skipped-frontier-pair",
            Self::UnrefreshedNullMoments => "unrefreshed-null-moments",
        }
    }
}

#[derive(Clone, Copy, Default)]
struct UpdateFlaws {
    stale_rank_cache: bool,
    skip_last_pair: bool,
    keep_stale_pooled: bool,
}

impl UpdateFlaws {
    fn from_mutation(m: UpdateMutation) -> Self {
        match m {
            UpdateMutation::StaleRankCache => Self {
                stale_rank_cache: true,
                ..Self::default()
            },
            UpdateMutation::SkippedFrontierPair => Self {
                skip_last_pair: true,
                ..Self::default()
            },
            UpdateMutation::UnrefreshedNullMoments => Self {
                keep_stale_pooled: true,
                ..Self::default()
            },
        }
    }
}

/// Everything a pair scan needs, derived from the state + append before
/// any MI is evaluated.
struct PreparedUpdate {
    names: Vec<String>,
    samples: usize,
    genes: Vec<GeneState>,
    prepared: Vec<PreparedGene>,
    pairs: Vec<(u32, u32)>,
    appended: usize,
    /// Accumulator seed: the already-valid prefix (gene append keeps the
    /// old pooled/candidates/joints; sample append starts fresh).
    base_pooled: PooledNull,
    base_candidates: Vec<(u32, u32, f64)>,
    base_joints: u64,
}

/// Merge a gene's stored sort order with the sorted order of an appended
/// sample block. Old merged indices are `0..m_old` and new ones
/// `m_old..m_total`, so taking the old element on ties reproduces the
/// `(value, index)` comparator of a full re-sort exactly.
fn merge_orders(old: &GeneState, new_values: &[f32], merged_profile: &[f32]) -> Vec<u32> {
    let m_old = old.profile.len();
    let new_order = rank_sort_order(new_values);
    let mut merged = Vec::with_capacity(merged_profile.len());
    let (mut a, mut b) = (0, 0);
    while a < old.order.len() && b < new_order.len() {
        let old_idx = old.order[a];
        let new_idx = new_order[b] + m_old as u32;
        let old_v = merged_profile[old_idx as usize];
        let new_v = merged_profile[new_idx as usize];
        // Expression values are finite by matrix construction, so the
        // comparator's NaN fallback never fires here.
        if old_v
            .partial_cmp(&new_v)
            .unwrap_or(std::cmp::Ordering::Equal)
            != std::cmp::Ordering::Greater
        {
            merged.push(old_idx);
            a += 1;
        } else {
            merged.push(new_idx);
            b += 1;
        }
    }
    merged.extend_from_slice(&old.order[a..]);
    merged.extend(new_order[b..].iter().map(|&i| i + m_old as u32));
    merged
}

fn prepare_update(
    state: &NetworkState,
    append: &ExpressionMatrix,
    mode: UpdateMode,
    flaws: UpdateFlaws,
    basis: &BsplineBasis,
) -> Result<PreparedUpdate, StateError> {
    match mode {
        UpdateMode::Genes => {
            if append.samples() != state.samples {
                return Err(StateError::Append {
                    reason: format!(
                        "gene append has {} samples, state has {}",
                        append.samples(),
                        state.samples
                    ),
                });
            }
            if let Some(dup) = append.gene_names().iter().find(|n| state.names.contains(n)) {
                return Err(StateError::Append {
                    reason: format!("appended gene `{dup}` already exists in the state"),
                });
            }
            let mut names = state.names.clone();
            names.extend(append.gene_names().iter().cloned());
            let mut genes = state.genes.clone();
            genes.extend(
                (0..append.genes()).map(|g| gene_state_for(append.gene(g).to_vec(), basis)),
            );
            let prepared: Vec<PreparedGene> = genes.iter().map(prepared_of).collect();
            let pairs = pair_frontier(state.gene_count(), genes.len());
            Ok(PreparedUpdate {
                names,
                samples: state.samples,
                prepared,
                genes,
                pairs,
                appended: append.genes(),
                base_pooled: state.pooled,
                base_candidates: state.candidates.clone(),
                base_joints: state.joints,
            })
        }
        UpdateMode::Samples => {
            if append.genes() != state.gene_count() {
                return Err(StateError::Append {
                    reason: format!(
                        "sample append has {} genes, state has {}",
                        append.genes(),
                        state.gene_count()
                    ),
                });
            }
            if append.gene_names() != &state.names[..] {
                return Err(StateError::Append {
                    reason: "sample append gene names differ from the state's \
                             (same genes, same order required)"
                        .into(),
                });
            }
            let m_old = state.samples;
            let genes: Vec<GeneState> = state
                .genes
                .iter()
                .enumerate()
                .map(|(g, old)| {
                    let new_values = append.gene(g);
                    let mut profile = old.profile.clone();
                    profile.extend_from_slice(new_values);
                    let order = if flaws.stale_rank_cache {
                        // Mutation: trust the cached order layout and just
                        // append the new block's order after it.
                        let mut o = old.order.clone();
                        o.extend(
                            rank_sort_order(new_values)
                                .iter()
                                .map(|&i| i + m_old as u32),
                        );
                        o
                    } else {
                        merge_orders(old, new_values, &profile)
                    };
                    let ranks = rank_from_order(&profile, &order);
                    let PreparedGene { sparse, h_marginal } =
                        PreparedGene::from_normalized(&ranks, basis);
                    GeneState {
                        profile,
                        order,
                        sparse,
                        h_marginal,
                    }
                })
                .collect();
            let prepared: Vec<PreparedGene> = genes.iter().map(prepared_of).collect();
            let pairs = pair_frontier(0, genes.len());
            Ok(PreparedUpdate {
                names: state.names.clone(),
                samples: m_old + append.samples(),
                prepared,
                genes,
                pairs,
                appended: append.samples(),
                base_pooled: PooledNull::new(),
                base_candidates: Vec::new(),
                base_joints: 0,
            })
        }
    }
}

fn finish_update(
    state: &NetworkState,
    pu: PreparedUpdate,
    acc: ScanAcc,
    mode: UpdateMode,
    flaws: UpdateFlaws,
    scanned: u64,
    resumed: u64,
) -> (NetworkState, UpdateStats) {
    let joints = acc.joints;
    let next = NetworkState {
        bins: state.bins,
        spline_order: state.spline_order,
        permutations: state.permutations,
        seed: state.seed,
        alpha: state.alpha,
        mi_threshold: state.mi_threshold,
        kernel: state.kernel,
        names: pu.names,
        samples: pu.samples,
        genes: pu.genes,
        pooled: if flaws.keep_stale_pooled {
            state.pooled
        } else {
            acc.pooled
        },
        joints,
        candidates: acc.candidates,
    };
    // A mutated engine can drop the only frontier pair and leave no
    // pooled evidence to derive a threshold from; report NaN instead of
    // panicking so the conformance oracle can still diff the states.
    let threshold = if next.mi_threshold.is_some() || next.pooled.count() >= 2 {
        next.threshold()
    } else {
        f64::NAN
    };
    let stats = UpdateStats {
        mode,
        appended: pu.appended,
        pairs_scanned: scanned,
        pairs_resumed: resumed,
        joints,
        threshold,
    };
    (next, stats)
}

fn apply_update_flawed(
    state: &NetworkState,
    append: &ExpressionMatrix,
    mode: UpdateMode,
    flaws: UpdateFlaws,
) -> Result<(NetworkState, UpdateStats), StateError> {
    let basis = BsplineBasis::new(state.spline_order, state.bins);
    let mut pu = prepare_update(state, append, mode, flaws, &basis)?;
    if flaws.skip_last_pair {
        pu.pairs.pop();
    }
    let perms = PermutationSet::generate(pu.samples, state.permutations, state.seed);
    let mut acc = ScanAcc {
        pooled: pu.base_pooled,
        candidates: pu.base_candidates.clone(),
        joints: pu.base_joints,
        done: 0,
    };
    let scanned = pu.pairs.len() as u64;
    scan_pairs(
        &pu.prepared,
        &perms,
        state.kernel,
        state.mi_threshold,
        &basis,
        &pu.pairs,
        &mut acc,
        |_| Ok(()),
    )?;
    Ok(finish_update(state, pu, acc, mode, flaws, scanned, 0))
}

/// Apply an append in memory, producing the updated state and what it
/// cost. The result is bit-identical to [`build_state`] over the
/// concatenated dataset — the property conformance family 6 enforces.
///
/// # Errors
/// [`StateError::Append`] when the append does not fit the state.
pub fn apply_update(
    state: &NetworkState,
    append: &ExpressionMatrix,
    mode: UpdateMode,
) -> Result<(NetworkState, UpdateStats), StateError> {
    apply_update_flawed(state, append, mode, UpdateFlaws::default())
}

/// [`apply_update`] with one deliberate defect injected — the mutated
/// implementation the family-6 self-check must distinguish from the
/// faithful one.
///
/// # Errors
/// Same as [`apply_update`].
pub fn apply_update_mutated(
    state: &NetworkState,
    append: &ExpressionMatrix,
    mode: UpdateMode,
    mutation: UpdateMutation,
) -> Result<(NetworkState, UpdateStats), StateError> {
    apply_update_flawed(state, append, mode, UpdateFlaws::from_mutation(mutation))
}

/// Digest binding an update invocation to (state snapshot, appended
/// data, mode) — the progress file's compatibility key. The chunk size is
/// deliberately excluded: resuming with a different `--checkpoint-every`
/// is legitimate.
#[must_use]
pub fn update_digest(state: &NetworkState, append: &ExpressionMatrix, mode: UpdateMode) -> u64 {
    let mut bytes = Vec::with_capacity(32 + append.genes() * (append.samples() * 4 + 8));
    bytes.extend_from_slice(&state.snapshot_digest().to_le_bytes());
    bytes.push(mode.tag());
    bytes.extend_from_slice(&(append.genes() as u64).to_le_bytes());
    bytes.extend_from_slice(&(append.samples() as u64).to_le_bytes());
    for g in 0..append.genes() {
        let name = &append.gene_names()[g];
        bytes.extend_from_slice(&(name.len() as u64).to_le_bytes());
        bytes.extend_from_slice(name.as_bytes());
        for v in append.gene(g) {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    crate::durable::fnv1a64(&bytes)
}

/// Durable `gnet update`: load the bundle from `store`, apply the append
/// with progress checkpointed every `chunk_pairs` evaluated pairs, save
/// the updated bundle, and clear the progress file.
///
/// With `resume`, a progress file matching this exact update (state +
/// append + mode, via [`update_digest`]) restores the scan prefix
/// bit-exactly; a progress file for a *different* update is rejected as
/// [`StateError::StaleProgress`]. `chunk_pairs == 0` disables
/// intermediate progress.
///
/// # Errors
/// State/progress I-O and decode errors; [`StateError::Append`] on shape
/// mismatch; [`StateError::Interrupted`] when an injected
/// [`gnet_fault::Fault::UpdateCrash`] kills the run at a progress
/// boundary (the boundary's progress file is already durable — re-run
/// with `resume`).
pub fn update_durable(
    store: &StateStore,
    append: &ExpressionMatrix,
    mode: Option<UpdateMode>,
    chunk_pairs: usize,
    resume: bool,
    rec: &Recorder,
) -> Result<(NetworkState, UpdateStats), StateError> {
    let state = store.load()?;
    let mode = match mode {
        Some(m) => m,
        None => detect_mode(&state, append)?,
    };
    let digest = update_digest(&state, append, mode);
    let progress = if resume {
        match store.load_progress_for(digest) {
            Ok(p) => Some(p),
            Err(StateError::Missing { .. }) => None,
            Err(e) => return Err(e),
        }
    } else {
        None
    };

    let basis = BsplineBasis::new(state.spline_order, state.bins);
    let pu = prepare_update(&state, append, mode, UpdateFlaws::default(), &basis)?;
    let perms = PermutationSet::generate(pu.samples, state.permutations, state.seed);

    let mut acc = match &progress {
        Some(p) => {
            rec.event(
                names::EVT_RESUMED,
                &[
                    ("pairs_done", Value::from(p.pairs_done)),
                    ("mode", Value::from(mode.name())),
                ],
            );
            rec.counter_add(names::CNT_RESUMES, 1);
            ScanAcc {
                pooled: p.pooled,
                candidates: p.candidates.clone(),
                joints: p.joints,
                done: p.pairs_done,
            }
        }
        None => ScanAcc {
            pooled: pu.base_pooled,
            candidates: pu.base_candidates.clone(),
            joints: pu.base_joints,
            done: 0,
        },
    };
    let resumed = acc.done;
    let injector = store.injector().clone();
    let chunk = chunk_pairs as u64;

    scan_pairs(
        &pu.prepared,
        &perms,
        state.kernel,
        state.mi_threshold,
        &basis,
        &pu.pairs,
        &mut acc,
        |acc| {
            if chunk == 0 || acc.done % chunk != 0 {
                return Ok(());
            }
            store.save_progress(&UpdateProgress {
                update_digest: digest,
                mode: mode.tag(),
                pairs_done: acc.done,
                joints: acc.joints,
                pooled: acc.pooled,
                candidates: acc.candidates.clone(),
            })?;
            let boundary = (acc.done / chunk) as usize;
            if injector.should_crash_at_update_boundary(boundary) {
                return Err(StateError::Interrupted {
                    pairs_done: acc.done,
                });
            }
            Ok(())
        },
    )?;

    let total = pu.pairs.len() as u64;
    let (next, stats) = finish_update(
        &state,
        pu,
        acc,
        mode,
        UpdateFlaws::default(),
        total - resumed,
        resumed,
    );
    store.save(&next)?;
    store.clear_progress()?;
    rec.event(
        "update.applied",
        &[
            ("mode", Value::from(mode.name())),
            ("pairs_scanned", Value::from(stats.pairs_scanned)),
            ("appended", Value::from(stats.appended)),
        ],
    );
    Ok((next, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_network;
    use gnet_expr::synth::{coupled_pairs, Coupling};
    use gnet_expr::MissingPolicy;
    use gnet_fault::{FaultInjector, FaultPlan};
    use gnet_parallel::SchedulerPolicy;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        // ordering: test-local unique-id counter; no synchronization needed.
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gnet-incr-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir must be creatable");
        dir
    }

    fn cfg() -> InferenceConfig {
        InferenceConfig {
            permutations: 6,
            threads: Some(1),
            ..InferenceConfig::default()
        }
    }

    /// Columns `from..` of `matrix` as their own matrix, names preserved.
    fn sample_slice(matrix: &ExpressionMatrix, from: usize) -> ExpressionMatrix {
        let mut flat = Vec::new();
        for g in 0..matrix.genes() {
            flat.extend_from_slice(&matrix.gene(g)[from..]);
        }
        let mut m = ExpressionMatrix::from_flat(
            matrix.genes(),
            matrix.samples() - from,
            flat,
            MissingPolicy::Error,
        )
        .expect("slice is valid");
        m.set_gene_names(matrix.gene_names().to_vec())
            .expect("names fit");
        m
    }

    #[test]
    fn gene_append_is_bitwise_equal_to_batch_and_scans_only_the_frontier() {
        let (full, _) = coupled_pairs(3, 70, Coupling::Linear(0.9), 13);
        let old = full.select_genes(&[0, 1, 2, 3]);
        let append = full.select_genes(&[4, 5]);

        let state = build_state(&old, &cfg());
        let (updated, stats) =
            apply_update(&state, &append, UpdateMode::Genes).expect("gene append applies");
        assert_eq!(updated, build_state(&full, &cfg()));
        // g·(N−g) + g·(g−1)/2 with g = 2, N = 6.
        assert_eq!(stats.pairs_scanned, 2 * 4 + 1);
        assert_eq!(stats.appended, 2);
        assert_eq!(stats.threshold.to_bits(), updated.threshold().to_bits());
    }

    #[test]
    fn sample_append_is_bitwise_equal_to_batch() {
        let (full, _) = coupled_pairs(2, 90, Coupling::Linear(0.9), 29);
        let old = full.truncate_samples(60);
        let append = sample_slice(&full, 60);

        let state = build_state(&old, &cfg());
        let (updated, stats) =
            apply_update(&state, &append, UpdateMode::Samples).expect("sample append applies");
        assert_eq!(updated, build_state(&full, &cfg()));
        assert_eq!(stats.pairs_scanned, 6); // C(4,2): sample appends rescan
        assert_eq!(stats.appended, 30);
    }

    #[test]
    fn updated_network_matches_tiled_parallel_inference() {
        let (full, _) = coupled_pairs(3, 80, Coupling::Linear(0.9), 7);
        let old = full.select_genes(&[0, 1, 2, 3]);
        let append = full.select_genes(&[4, 5]);
        let state = build_state(&old, &cfg());
        let (updated, _) =
            apply_update(&state, &append, UpdateMode::Genes).expect("gene append applies");
        let net = updated.network();
        for policy in SchedulerPolicy::ALL {
            let batch = infer_network(
                &full,
                &InferenceConfig {
                    scheduler: policy,
                    threads: Some(2),
                    tile_size: Some(3),
                    ..cfg()
                },
            );
            assert_eq!(net.edge_count(), batch.network.edge_count(), "{policy:?}");
            for (a, b) in net.edges().iter().zip(batch.network.edges()) {
                assert_eq!(a.key(), b.key(), "{policy:?}");
                assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{policy:?}");
            }
            assert!((updated.threshold() - batch.stats.threshold).abs() < 1e-9);
        }
    }

    #[test]
    fn mode_detection_and_shape_rejection() {
        let (full, _) = coupled_pairs(2, 50, Coupling::Linear(0.9), 3);
        let old = full.select_genes(&[0, 1, 2]);
        let state = build_state(&old, &cfg());

        let gene_append = full.select_genes(&[3]);
        assert_eq!(
            detect_mode(&state, &gene_append).expect("gene shape"),
            UpdateMode::Genes
        );
        let sample_append = sample_slice(&old, 30);
        assert_eq!(
            detect_mode(&state, &sample_append).expect("sample shape"),
            UpdateMode::Samples
        );

        let misfit = coupled_pairs(2, 17, Coupling::Linear(0.5), 1).0;
        assert!(matches!(
            detect_mode(&state, &misfit),
            Err(StateError::Append { .. })
        ));
        // A duplicate gene name cannot be appended as a new gene.
        assert!(matches!(
            apply_update(&state, &old, UpdateMode::Genes),
            Err(StateError::Append { .. })
        ));
        // Same shape, different names: rejected as a sample append.
        let mut renamed = sample_append.clone();
        renamed
            .set_gene_names(vec!["x".into(), "y".into(), "z".into()])
            .expect("three names");
        assert!(matches!(
            apply_update(&state, &renamed, UpdateMode::Samples),
            Err(StateError::Append { .. })
        ));
    }

    #[test]
    fn every_mutation_breaks_batch_equivalence() {
        let (full, _) = coupled_pairs(3, 70, Coupling::Linear(0.9), 17);
        let old_g = full.select_genes(&[0, 1, 2, 3]);
        let append_g = full.select_genes(&[4, 5]);
        let state_g = build_state(&old_g, &cfg());
        let old_s = full.truncate_samples(40);
        let append_s = sample_slice(&full, 40);
        let state_s = build_state(&old_s, &cfg());
        let batch = build_state(&full, &cfg());

        for m in UpdateMutation::ALL {
            let caught = [
                (state_g.clone(), &append_g, UpdateMode::Genes),
                (state_s.clone(), &append_s, UpdateMode::Samples),
            ]
            .into_iter()
            .any(|(state, append, mode)| {
                let (mutated, _) =
                    apply_update_mutated(&state, append, mode, m).expect("mutated update runs");
                mutated != batch
            });
            assert!(caught, "mutation {} went undetected", m.name());
        }
    }

    #[test]
    fn durable_update_survives_a_boundary_kill_bit_identically() {
        let (full, _) = coupled_pairs(3, 60, Coupling::Linear(0.9), 23);
        let old = full.select_genes(&[0, 1, 2, 3]);
        let append = full.select_genes(&[4, 5]);
        let state = build_state(&old, &cfg());
        let dir = tmpdir("kill");

        // Uninterrupted reference.
        let (reference, _) = apply_update(&state, &append, UpdateMode::Genes).expect("reference");

        let plan = FaultPlan::parse("seed=1;update-crash(boundary=2)").expect("plan parses");
        let rec = Recorder::enabled();
        let store =
            StateStore::with_faults(&dir, FaultInjector::from_plan_traced(&plan, &rec), &rec);
        store.save(&state).expect("seed state saved");
        let err =
            update_durable(&store, &append, None, 2, false, &rec).expect_err("injected kill fires");
        assert!(matches!(err, StateError::Interrupted { pairs_done: 4 }));

        // Resume in a fresh process: disarmed injector, same directory.
        let rec2 = Recorder::enabled();
        let store2 = StateStore::with_faults(&dir, FaultInjector::none(), &rec2);
        let (resumed, stats) =
            update_durable(&store2, &append, None, 2, true, &rec2).expect("resume completes");
        assert_eq!(resumed, reference);
        assert_eq!(stats.pairs_resumed, 4);
        assert_eq!(stats.pairs_scanned, 9 - 4);
        assert_eq!(rec2.counter(names::CNT_RESUMES), Some(1));
        // The landed bundle reloads to the same bits, and progress is gone.
        assert_eq!(store2.load().expect("bundle reloads"), reference);
        assert!(matches!(
            store2.load_progress_for(update_digest(&state, &append, UpdateMode::Genes)),
            Err(StateError::Missing { .. })
        ));
    }

    #[test]
    fn resume_rejects_progress_from_a_different_update() {
        let (full, _) = coupled_pairs(3, 60, Coupling::Linear(0.9), 31);
        let old = full.select_genes(&[0, 1, 2, 3]);
        let append = full.select_genes(&[4, 5]);
        let state = build_state(&old, &cfg());
        let dir = tmpdir("stale");

        let plan = FaultPlan::parse("seed=1;update-crash(boundary=1)").expect("plan parses");
        let store =
            StateStore::with_faults(&dir, FaultInjector::from_plan(&plan), &Recorder::disabled());
        store.save(&state).expect("seed state saved");
        update_durable(&store, &append, None, 3, false, &Recorder::disabled())
            .expect_err("injected kill fires");

        // Resuming with *different* appended data must refuse the file.
        let other = full.select_genes(&[5, 4]);
        let store2 = StateStore::new(&dir);
        assert!(matches!(
            update_durable(&store2, &other, None, 3, true, &Recorder::disabled()),
            Err(StateError::StaleProgress { .. })
        ));
        // Restarting without resume ignores it and lands the update.
        let (fresh, stats) =
            update_durable(&store2, &append, None, 3, false, &Recorder::disabled())
                .expect("fresh run completes");
        assert_eq!(stats.pairs_resumed, 0);
        let (reference, _) = apply_update(&state, &append, UpdateMode::Genes).expect("reference");
        assert_eq!(fresh, reference);
    }

    #[test]
    fn sample_append_merge_handles_ties_and_duplicates() {
        // Constant genes and heavy ties exercise the merge comparator's
        // tie arm; equality with the batch rebuild is the oracle.
        let data_old = vec![
            1.0f32, 1.0, 2.0, 2.0, //
            5.0, 4.0, 3.0, 2.0, //
        ];
        let data_new = vec![
            2.0f32, 1.0, 1.0, //
            2.0, 6.0, 2.0, //
        ];
        let mut full_flat = Vec::new();
        full_flat.extend_from_slice(&data_old[..4]);
        full_flat.extend_from_slice(&data_new[..3]);
        full_flat.extend_from_slice(&data_old[4..]);
        full_flat.extend_from_slice(&data_new[3..]);
        let full =
            ExpressionMatrix::from_flat(2, 7, full_flat, MissingPolicy::Error).expect("full");
        let old = ExpressionMatrix::from_flat(2, 4, data_old, MissingPolicy::Error).expect("old");
        let append =
            ExpressionMatrix::from_flat(2, 3, data_new, MissingPolicy::Error).expect("append");

        let config = InferenceConfig {
            permutations: 4,
            threads: Some(1),
            ..InferenceConfig::default()
        };
        let state = build_state(&old, &config);
        let (updated, _) =
            apply_update(&state, &append, UpdateMode::Samples).expect("sample append applies");
        assert_eq!(updated, build_state(&full, &config));
    }
}
